//! # resilience
//!
//! Resilient algorithms and the four resilience-enabling programming models
//! of Heroux, *"Toward Resilient Algorithms and Applications"* (HPDC 2013):
//!
//! * [`skeptical`] — **SkP**, Skeptical Programming: invariant checks,
//!   Huang–Abraham ABFT kernels, and a bit-flip-resilient GMRES.
//! * [`rbsp`] — **RBSP**, Relaxed Bulk-Synchronous Programming:
//!   latency-tolerant pipelined CG and p(1)-GMRES built on nonblocking
//!   collectives, with their bulk-synchronous counterparts for comparison.
//! * [`lflr`] — **LFLR**, Local-Failure Local-Recovery: a step-loop driver
//!   over the runtime's ULFM-style recovery and persistent store, plus the
//!   global checkpoint/restart baseline.
//! * [`srp`] — **SRP**, Selective Reliability Programming: reliable /
//!   unreliable execution tiers, FT-GMRES and TMR ablations.
//!
//! Supporting modules: [`solvers`] (serial CG/GMRES/FGMRES), [`distributed`]
//! (block-distributed vectors and sparse matrices over the simulated
//! runtime), and [`models`] (the programming-model taxonomy).
//!
//! ## Quick start
//!
//! ```
//! use resilience::prelude::*;
//! use resilient_linalg::poisson2d;
//!
//! // Solve a 2-D Poisson problem with GMRES while injecting a bit flip into
//! // one matrix-vector product, and let the skeptical checks recover.
//! let a = poisson2d(10, 10);
//! let b = vec![1.0; a.nrows()];
//! let plan = InjectionPlan { at_application: 5, target: FaultTarget::RandomElement, bit: Some(61) };
//! let faulty = FaultyOperator::new(&a, Some(plan), 42);
//! let (outcome, report) = skeptical_gmres(
//!     &faulty, &b, None,
//!     &SolveOptions::default().with_tol(1e-8).with_max_iters(500),
//!     &SkepticalConfig::default(),
//! );
//! assert!(outcome.converged());
//! assert!(report.detections >= 1);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod distributed;
pub mod diversity;
pub mod kernel;
pub mod lflr;
pub mod models;
pub mod rbsp;
pub mod skeptical;
pub mod solvers;
pub mod srp;

/// Convenient glob import of the most frequently used types.
pub mod prelude {
    pub use crate::campaign::{
        campaign_case, clean_baseline, run_kernel_preset, run_schedule, CampaignConfig,
        CampaignPreset, CaseOutcome, CaseReport, CleanBaseline, ContractViolation,
    };
    pub use crate::distributed::{DistCsr, DistMultiVector, DistVector};
    pub use crate::diversity::{diversity_vote, DiversityMember, DiversityReport};
    pub use crate::kernel::{
        ft_gmres_abft, lflr_dist_pcg, lflr_dist_pgmres, lflr_pipelined_pcg, lflr_pipelined_pgmres,
        pipelined_skeptical_cg, pipelined_skeptical_gmres, pipelined_skeptical_pcg,
        pipelined_skeptical_pgmres, run_block_cg, AbftSpmvPolicy, BlockCgMode, BlockJacobi,
        BlockOutcome, DistSpace, IdentityPrecond, IterateRollbackPolicy, KrylovLflrConfig,
        KrylovLflrReport, KrylovSpace, NoopPolicy, PolicyOverhead, PolicyStack, PrecondGuardPolicy,
        ResiliencePolicy, RightPrecond, SerialPrecond, SerialSpace, SetupCache, SkepticalPolicy,
        SpacePreconditioner, SpmvFault,
    };
    pub use crate::lflr::{run_cpr, run_lflr, CprApp, CprConfig, CprReport, LflrApp, LflrReport};
    pub use crate::models::ProgrammingModel;
    pub use crate::rbsp::{
        cg::{dist_block_pcg, dist_cg, dist_pcg, pipelined_block_pcg, pipelined_cg, pipelined_pcg},
        gmres::{dist_gmres, dist_pgmres, pipelined_gmres, pipelined_pgmres},
        BlockSolveOutcome, DistSolveOptions, DistSolveOutcome,
    };
    pub use crate::skeptical::{
        skeptical_gmres, FaultTarget, FaultyOperator, InjectionPlan, SkepticalConfig,
        SkepticalReport, SkepticalResponse,
    };
    pub use crate::solvers::{
        cg, fgmres, gmres, pcg, true_relative_residual, IdentityPreconditioner,
        JacobiPreconditioner, Operator, Preconditioner, SolveOptions, SolveOutcome, StopReason,
    };
    pub use crate::srp::{
        compare_tmr_strategies, ft_gmres, reliable_gmres, unreliable_gmres, FtGmresConfig,
        FtGmresReport, SrpCostLedger, UnreliableOperator,
    };
}
