//! Adversarial multi-event fault schedules for campaign testing.
//!
//! Every experiment elsewhere in the suite injects exactly one planned
//! fault. This module provides the *campaign* vocabulary: composable
//! multi-strike plans ([`Strike`]/[`StrikePlan`]) with per-event
//! incarnation pinning, rank-death event lists ([`DeathEvent`]), and a
//! seeded generator ([`FaultSchedule::generate`]) that draws adversarial
//! schedules from a taxonomy of fault families ([`FaultFamily`]) —
//! correlated cross-rank flips, flips inside the preconditioner apply,
//! multiple rank deaths, a death timed to land *during* the LFLR recovery
//! rendezvous, and deaths straddling the snapshot-persist cadence.
//!
//! Schedules are plain data: the driver in the core crate turns them into
//! space-level strike plans and runtime failure schedules, runs the solver,
//! and asserts the converge-or-honestly-fail oracle. Because the vendored
//! `proptest` has no shrinking, the module also ships a greedy event-drop
//! minimizer ([`FaultSchedule::minimize`]) so any contract violation can be
//! checked in as a minimal deterministic regression.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bitflip::flip_bit_f64;

/// One planned bit flip, pinned to a world rank, an incarnation, and an
/// application ordinal of the instrumented operation (SpMV or
/// preconditioner apply).
///
/// The incarnation pin is what makes multi-event schedules composable with
/// recovery: a strike with `incarnation: 0` can never replay on a
/// replacement rank, while a strike pinned to `incarnation: 1` targets
/// exactly the replacement's re-execution — the adversarial case single
/// `SpmvFault`-style plans cannot express.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strike {
    /// World rank whose local data is struck.
    pub rank: usize,
    /// Incarnation the strike is pinned to (0 = original process,
    /// n = n-th replacement).
    pub incarnation: u64,
    /// Which application of the instrumented operation to strike
    /// (0-based ordinal, counted per rank-lifetime by the observer).
    pub at: u64,
    /// Local element index; clamped to the slice length at strike time.
    pub element: usize,
    /// Bit position to flip (0–63).
    pub bit: u32,
}

/// An ordered list of [`Strike`]s with fire-once bookkeeping.
///
/// The observing code (e.g. a distributed space's SpMV) calls
/// [`strike_slice`](StrikePlan::strike_slice) once per application with its
/// rank, incarnation and application ordinal; every matching strike that
/// has not yet fired flips its bit in the local slice. Each entry fires at
/// most once, so a plan is also a record: [`fired`](StrikePlan::fired)
/// reports how many strikes actually landed.
#[derive(Debug, Clone, Default)]
pub struct StrikePlan {
    strikes: Vec<Strike>,
    fired: Vec<bool>,
}

impl StrikePlan {
    /// Build a plan from an ordered strike list.
    pub fn new(strikes: Vec<Strike>) -> Self {
        let fired = vec![false; strikes.len()];
        Self { strikes, fired }
    }

    /// The planned strikes, in order.
    pub fn strikes(&self) -> &[Strike] {
        &self.strikes
    }

    /// True when the plan contains no strikes.
    pub fn is_empty(&self) -> bool {
        self.strikes.is_empty()
    }

    /// Number of strikes that have fired so far.
    pub fn fired(&self) -> usize {
        self.fired.iter().filter(|f| **f).count()
    }

    /// Apply every due, unfired strike to `data`, given the observer's
    /// world rank, incarnation and application ordinal. Returns the number
    /// of bits flipped. Empty slices are never struck (a dead or dataless
    /// rank has nothing to corrupt).
    pub fn strike_slice(
        &mut self,
        rank: usize,
        incarnation: u64,
        at: u64,
        data: &mut [f64],
    ) -> usize {
        if data.is_empty() {
            return 0;
        }
        let mut hits = 0;
        for (strike, fired) in self.strikes.iter().zip(self.fired.iter_mut()) {
            if *fired || strike.rank != rank || strike.incarnation != incarnation || strike.at != at
            {
                continue;
            }
            let i = strike.element.min(data.len() - 1);
            data[i] = flip_bit_f64(data[i], strike.bit);
            *fired = true;
            hits += 1;
        }
        hits
    }
}

/// One planned fail-stop rank death, timed as a fraction of the clean-run
/// makespan (the campaign driver converts fractions to virtual seconds or
/// collective counts per backend).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeathEvent {
    /// World rank that dies.
    pub rank: usize,
    /// Death time as a fraction of the failure-free makespan.
    pub at_frac: f64,
}

/// The campaign's schedule taxonomy: each family is a qualitatively
/// distinct way compound faults can attack a resilient solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultFamily {
    /// The same SpMV application struck on several ranks at once — the
    /// correlated upset a per-rank single-fault model never produces.
    CorrelatedSpmvFlips,
    /// Flips inside the preconditioner apply (historically unguarded by
    /// any policy check).
    PrecondFlips,
    /// SpMV and preconditioner strikes interleaved at independent times.
    MixedFlipStorm,
    /// Two or more distinct ranks die at separated times.
    MultiRankDeath,
    /// A second rank dies immediately after the first — timed so the
    /// second death lands during the first death's recovery rendezvous.
    /// May carry a strike pinned to the replacement's incarnation.
    RendezvousDeath,
    /// A single death timed to straddle the snapshot-persist cadence
    /// (just before, at, or just after a persist boundary).
    PersistBoundaryDeath,
}

impl FaultFamily {
    /// Every family, in a fixed sweep order.
    pub const ALL: [FaultFamily; 6] = [
        FaultFamily::CorrelatedSpmvFlips,
        FaultFamily::PrecondFlips,
        FaultFamily::MixedFlipStorm,
        FaultFamily::MultiRankDeath,
        FaultFamily::RendezvousDeath,
        FaultFamily::PersistBoundaryDeath,
    ];

    /// Stable short name for reports and repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            FaultFamily::CorrelatedSpmvFlips => "correlated-spmv-flips",
            FaultFamily::PrecondFlips => "precond-flips",
            FaultFamily::MixedFlipStorm => "mixed-flip-storm",
            FaultFamily::MultiRankDeath => "multi-rank-death",
            FaultFamily::RendezvousDeath => "rendezvous-death",
            FaultFamily::PersistBoundaryDeath => "persist-boundary-death",
        }
    }

    /// True for families whose events are rank deaths (they need a
    /// recovery-capable preset); false for pure data-corruption families.
    pub fn is_death_family(&self) -> bool {
        matches!(
            self,
            FaultFamily::MultiRankDeath
                | FaultFamily::RendezvousDeath
                | FaultFamily::PersistBoundaryDeath
        )
    }
}

/// Clean-run geometry the generator scales its draws to: schedules are
/// adversarial only if their events land inside the window where the solve
/// is actually doing work.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleParams {
    /// World size of the target run.
    pub ranks: usize,
    /// SpMV applications per rank observed in the failure-free run.
    pub max_applications: u64,
    /// Preconditioner applications per rank in the failure-free run
    /// (0 for unpreconditioned presets — precond strikes are then skipped).
    pub max_precond_applications: u64,
    /// Local vector length per rank (element indices are drawn below it).
    pub local_len: usize,
    /// Snapshot-persist cadence in iterations (for the persist-boundary
    /// family).
    pub persist_every: usize,
    /// Iterations of the failure-free solve (for converting iteration
    /// positions into makespan fractions).
    pub clean_iterations: usize,
}

/// A generated multi-event schedule: strike lists for the two instrumented
/// data paths plus a rank-death event list, tagged with its provenance so
/// every violation is reproducible from the panic message alone.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Family the schedule was drawn from.
    pub family: FaultFamily,
    /// Seed it was drawn with ([`FaultSchedule::generate`] is a pure
    /// function of family, seed and params).
    pub seed: u64,
    /// Strikes against the SpMV output path.
    pub spmv: Vec<Strike>,
    /// Strikes against the preconditioner-apply output path.
    pub precond: Vec<Strike>,
    /// Fail-stop rank deaths, ordered by time.
    pub deaths: Vec<DeathEvent>,
}

fn window(rng: &mut ChaCha8Rng, max: u64) -> u64 {
    // Strike inside the middle of the clean run: early enough to matter,
    // late enough that the recurrence has state worth corrupting.
    let lo = max / 5;
    let hi = (max * 4 / 5).max(lo + 1);
    rng.gen_range(lo..hi)
}

fn draw_strike(
    rng: &mut ChaCha8Rng,
    p: &ScheduleParams,
    max_apps: u64,
    incarnation: u64,
) -> Strike {
    Strike {
        rank: rng.gen_range(0..p.ranks),
        incarnation,
        at: window(rng, max_apps.max(1)),
        element: rng.gen_range(0..p.local_len.max(1)),
        bit: rng.gen_range(0..64),
    }
}

impl FaultSchedule {
    /// Draw a schedule from `family`, deterministically from `seed` and the
    /// clean-run geometry in `params`.
    pub fn generate(family: FaultFamily, seed: u64, params: &ScheduleParams) -> Self {
        // Mix the family into the stream so family sweeps at a shared seed
        // do not replay the same draws.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (family as u64).wrapping_mul(0x9e37_79b9));
        let mut spmv = Vec::new();
        let mut precond = Vec::new();
        let mut deaths = Vec::new();
        match family {
            FaultFamily::CorrelatedSpmvFlips => {
                let at = window(&mut rng, params.max_applications.max(1));
                let hit = rng.gen_range(2..=params.ranks.max(2)).min(params.ranks);
                let start = rng.gen_range(0..params.ranks);
                for k in 0..hit {
                    spmv.push(Strike {
                        rank: (start + k) % params.ranks,
                        incarnation: 0,
                        at,
                        element: rng.gen_range(0..params.local_len.max(1)),
                        bit: rng.gen_range(0..64),
                    });
                }
            }
            FaultFamily::PrecondFlips => {
                let n = rng.gen_range(1..=3);
                for _ in 0..n {
                    precond.push(draw_strike(
                        &mut rng,
                        params,
                        params.max_precond_applications,
                        0,
                    ));
                }
            }
            FaultFamily::MixedFlipStorm => {
                let ns = rng.gen_range(1..=3);
                let np = rng.gen_range(1..=3);
                for _ in 0..ns {
                    spmv.push(draw_strike(&mut rng, params, params.max_applications, 0));
                }
                for _ in 0..np {
                    precond.push(draw_strike(
                        &mut rng,
                        params,
                        params.max_precond_applications,
                        0,
                    ));
                }
            }
            FaultFamily::MultiRankDeath => {
                let n = 2.min(params.ranks.saturating_sub(1)).max(1);
                let start = rng.gen_range(0..params.ranks);
                let mut fracs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.15..0.85)).collect();
                fracs.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
                for (k, at_frac) in fracs.into_iter().enumerate() {
                    deaths.push(DeathEvent {
                        rank: (start + k) % params.ranks,
                        at_frac,
                    });
                }
            }
            FaultFamily::RendezvousDeath => {
                let first = rng.gen_range(0..params.ranks);
                let second = (first + 1 + rng.gen_range(0..params.ranks.saturating_sub(1).max(1)))
                    % params.ranks;
                let f = rng.gen_range(0.2..0.7);
                let delta = rng.gen_range(0.001..0.04);
                deaths.push(DeathEvent {
                    rank: first,
                    at_frac: f,
                });
                deaths.push(DeathEvent {
                    rank: second,
                    at_frac: f + delta,
                });
                // Half the draws also strike the replacement's re-execution:
                // the incarnation-pinned case a single-strike plan cannot hit.
                if rng.gen_range(0..2) == 1 {
                    spmv.push(draw_strike(&mut rng, params, params.max_applications, 1));
                }
            }
            FaultFamily::PersistBoundaryDeath => {
                let every = params.persist_every.max(1);
                let boundaries = (params.clean_iterations / every).max(1);
                let k = rng.gen_range(1..=boundaries);
                let jitter: i64 = rng.gen_range(-1..=1);
                let iter = ((k * every) as i64 + jitter).max(1) as f64;
                let frac = (iter / params.clean_iterations.max(1) as f64).clamp(0.05, 0.95);
                deaths.push(DeathEvent {
                    rank: rng.gen_range(0..params.ranks),
                    at_frac: frac,
                });
            }
        }
        Self {
            family,
            seed,
            spmv,
            precond,
            deaths,
        }
    }

    /// Total event count across all three lists.
    pub fn event_count(&self) -> usize {
        self.spmv.len() + self.precond.len() + self.deaths.len()
    }

    /// True when no fault of any kind is scheduled.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }

    /// A fresh fire-once plan over the SpMV strikes.
    pub fn spmv_plan(&self) -> StrikePlan {
        StrikePlan::new(self.spmv.clone())
    }

    /// A fresh fire-once plan over the preconditioner strikes.
    pub fn precond_plan(&self) -> StrikePlan {
        StrikePlan::new(self.precond.clone())
    }

    /// Every schedule obtainable by dropping exactly one event — the
    /// shrink neighbourhood of the greedy minimizer.
    pub fn shrink_candidates(&self) -> Vec<FaultSchedule> {
        let mut out = Vec::with_capacity(self.event_count());
        for i in 0..self.spmv.len() {
            let mut s = self.clone();
            s.spmv.remove(i);
            out.push(s);
        }
        for i in 0..self.precond.len() {
            let mut s = self.clone();
            s.precond.remove(i);
            out.push(s);
        }
        for i in 0..self.deaths.len() {
            let mut s = self.clone();
            s.deaths.remove(i);
            out.push(s);
        }
        out
    }

    /// Greedily minimize a failing schedule: repeatedly drop any single
    /// event whose removal keeps `still_fails` true, until no single-event
    /// drop preserves the failure. The vendored proptest has no shrinking,
    /// so this is how a campaign violation becomes a checked-in regression
    /// small enough to name the bug it pins.
    pub fn minimize(
        mut self,
        mut still_fails: impl FnMut(&FaultSchedule) -> bool,
    ) -> FaultSchedule {
        'outer: loop {
            for candidate in self.shrink_candidates() {
                if still_fails(&candidate) {
                    self = candidate;
                    continue 'outer;
                }
            }
            return self;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScheduleParams {
        ScheduleParams {
            ranks: 4,
            max_applications: 40,
            max_precond_applications: 40,
            local_len: 8,
            persist_every: 10,
            clean_iterations: 38,
        }
    }

    #[test]
    fn generation_is_deterministic_in_family_and_seed() {
        let p = params();
        for family in FaultFamily::ALL {
            let a = FaultSchedule::generate(family, 7, &p);
            let b = FaultSchedule::generate(family, 7, &p);
            assert_eq!(
                a,
                b,
                "{} must be a pure function of the seed",
                family.name()
            );
            assert!(!a.is_empty(), "{} drew an empty schedule", family.name());
        }
    }

    #[test]
    fn families_at_shared_seed_draw_distinct_streams() {
        let p = params();
        let a = FaultSchedule::generate(FaultFamily::CorrelatedSpmvFlips, 3, &p);
        let b = FaultSchedule::generate(FaultFamily::MixedFlipStorm, 3, &p);
        assert_ne!((a.spmv, a.precond), (b.spmv, b.precond));
    }

    #[test]
    fn correlated_family_strikes_one_application_on_multiple_ranks() {
        let p = params();
        for seed in 0..20 {
            let s = FaultSchedule::generate(FaultFamily::CorrelatedSpmvFlips, seed, &p);
            assert!(s.spmv.len() >= 2);
            let at = s.spmv[0].at;
            assert!(s.spmv.iter().all(|k| k.at == at), "same application");
            let mut ranks: Vec<_> = s.spmv.iter().map(|k| k.rank).collect();
            ranks.sort_unstable();
            ranks.dedup();
            assert_eq!(ranks.len(), s.spmv.len(), "distinct ranks");
        }
    }

    #[test]
    fn rendezvous_family_schedules_back_to_back_deaths_on_distinct_ranks() {
        let p = params();
        for seed in 0..20 {
            let s = FaultSchedule::generate(FaultFamily::RendezvousDeath, seed, &p);
            assert_eq!(s.deaths.len(), 2);
            assert_ne!(s.deaths[0].rank, s.deaths[1].rank);
            let gap = s.deaths[1].at_frac - s.deaths[0].at_frac;
            assert!(gap > 0.0 && gap < 0.05, "second death rides the recovery");
            for k in &s.spmv {
                assert_eq!(k.incarnation, 1, "extra strike targets the replacement");
            }
        }
    }

    #[test]
    fn persist_boundary_family_lands_next_to_a_persist_point() {
        let p = params();
        for seed in 0..20 {
            let s = FaultSchedule::generate(FaultFamily::PersistBoundaryDeath, seed, &p);
            assert_eq!(s.deaths.len(), 1);
            let f = s.deaths[0].at_frac;
            assert!((0.05..=0.95).contains(&f));
            let iter = f * p.clean_iterations as f64;
            let nearest = (iter / p.persist_every as f64).round() * p.persist_every as f64;
            assert!(
                (iter - nearest).abs() <= 1.5 || f == 0.05 || f == 0.95,
                "death at iteration {iter} should straddle a persist boundary"
            );
        }
    }

    #[test]
    fn strike_plan_fires_each_entry_once_and_respects_pins() {
        let strike = Strike {
            rank: 1,
            incarnation: 0,
            at: 3,
            element: 2,
            bit: 52,
        };
        let mut plan = StrikePlan::new(vec![strike]);
        let mut data = [1.0; 4];
        // Wrong rank, wrong incarnation, wrong application: no fire.
        assert_eq!(plan.strike_slice(0, 0, 3, &mut data), 0);
        assert_eq!(plan.strike_slice(1, 1, 3, &mut data), 0);
        assert_eq!(plan.strike_slice(1, 0, 2, &mut data), 0);
        assert_eq!(data, [1.0; 4]);
        // Exact match fires once.
        assert_eq!(plan.strike_slice(1, 0, 3, &mut data), 1);
        assert_ne!(data[2], 1.0);
        assert_eq!(plan.fired(), 1);
        // Replay of the same coordinates does not re-fire.
        let before = data;
        assert_eq!(plan.strike_slice(1, 0, 3, &mut data), 0);
        assert_eq!(data, before);
    }

    #[test]
    fn strike_plan_clamps_element_and_skips_empty_slices() {
        let strike = Strike {
            rank: 0,
            incarnation: 0,
            at: 0,
            element: 100,
            bit: 1,
        };
        let mut plan = StrikePlan::new(vec![strike]);
        let mut empty: [f64; 0] = [];
        assert_eq!(plan.strike_slice(0, 0, 0, &mut empty), 0);
        assert_eq!(
            plan.fired(),
            0,
            "an empty slice must not consume the strike"
        );
        let mut data = [4.0, 5.0];
        assert_eq!(plan.strike_slice(0, 0, 0, &mut data), 1);
        assert_eq!(data[0], 4.0);
        assert_ne!(data[1], 5.0, "clamped to the last element");
    }

    #[test]
    fn minimize_drops_irrelevant_events() {
        let p = params();
        let mut s = FaultSchedule::generate(FaultFamily::MixedFlipStorm, 11, &p);
        // Force a known shape: several strikes, but pretend only precond
        // strikes on rank 2 reproduce the failure.
        s.spmv.push(Strike {
            rank: 0,
            incarnation: 0,
            at: 5,
            element: 0,
            bit: 3,
        });
        s.precond.push(Strike {
            rank: 2,
            incarnation: 0,
            at: 9,
            element: 1,
            bit: 60,
        });
        let minimized = s.minimize(|c| c.precond.iter().any(|k| k.rank == 2 && k.bit == 60));
        assert_eq!(minimized.event_count(), 1, "{minimized:?}");
        assert_eq!(minimized.precond[0].rank, 2);
        assert_eq!(minimized.precond[0].bit, 60);
    }
}
