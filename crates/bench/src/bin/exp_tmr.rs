//! Experiment E7 — TMR cost ablation (SRP, §II-D): cost per *correct* SpMV
//! for single-unreliable-with-retry vs. TMR vs. single-reliable execution,
//! across fault rates ("even TMR can be much faster than a fully unreliable
//! approach").

use resilience::srp::compare_tmr_strategies;
use resilient_bench::{fmt_g, Table};
use resilient_faults::memory::ReliabilityModel;
use resilient_linalg::poisson2d;

fn main() {
    let a = poisson2d(16, 16);
    let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
    let model = ReliabilityModel {
        reliable_cost_factor: 3.0,
        ..ReliabilityModel::default()
    };
    let mut table = Table::new(
        "E7: cost per correct SpMV (unreliable-FLOP equivalents), n=256, reliable cost factor 3x",
        &[
            "fault rate/elem",
            "unreliable+retry",
            "TMR",
            "reliable",
            "single success%",
            "TMR success%",
        ],
    );
    for &rate in &[0.0, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1] {
        let cmp = compare_tmr_strategies(&a, &x, rate, &model, 60, 7);
        table.row(vec![
            format!("{rate:.0e}"),
            fmt_g(cmp.unreliable_retry_cost),
            fmt_g(cmp.tmr_cost),
            fmt_g(cmp.reliable_cost),
            format!("{:.0}%", cmp.unreliable_success_rate * 100.0),
            format!("{:.0}%", cmp.tmr_success_rate * 100.0),
        ]);
    }
    table.emit("e7_tmr");
}
