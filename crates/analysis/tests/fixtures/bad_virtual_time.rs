// analysis-as: crates/core/src/fixture_clock.rs
// Fixture: wall-clock sources leaking into a simulator path. Both the
// import and the use sites must fire `virtual-time`.

use std::time::{Instant, SystemTime};

pub fn leak() -> u128 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_nanos()
}
