//! Offline vendored micro-benchmark harness.
//!
//! Implements the subset of the `criterion` API this workspace's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! mean/min/max timing report instead of criterion's statistical analysis.
//! Benches behave correctly under both `cargo bench` and
//! `cargo test --benches` (where, like real criterion, they run in test
//! mode: one quick iteration per benchmark, just to prove they work).

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding `value` or the work producing it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How a bench executable was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure and report.
    Bench,
    /// `cargo test --benches`: run each benchmark once as a smoke test.
    Test,
}

fn detect_mode() -> Mode {
    // Cargo invokes bench targets with `--bench` under `cargo bench` and
    // with no mode flag under `cargo test --benches`; only measure when
    // actually benchmarking (matching real criterion's behavior).
    if std::env::args().any(|a| a == "--bench") {
        Mode::Bench
    } else {
        Mode::Test
    }
}

/// Top-level benchmark driver (a small stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    /// Substring filter from the command line, as `cargo bench -- <filter>`.
    filter: Option<String>,
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Self {
            mode: detect_mode(),
            filter,
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Mirror of criterion's builder hook; accepts the default CLI shape.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Set the default measurement time for subsequent groups.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.default_measurement_time = t;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(
            name,
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: match self.mode {
                Mode::Bench => measurement_time,
                Mode::Test => Duration::ZERO, // one iteration, no warm-up
            },
            sample_size: match self.mode {
                Mode::Bench => sample_size,
                Mode::Test => 1,
            },
        };
        f(&mut bencher);
        match self.mode {
            Mode::Test => println!("test {id} ... ok"),
            Mode::Bench => println!("{id:<50} {}", bencher.report()),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness does not warm up.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(
            &full,
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.default_measurement_time),
            f,
        );
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra in this harness).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(parameter)`.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput declarations (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one timing sample per run, until
    /// the sample target or the time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i > 0 && started.elapsed() > self.budget {
                break;
            }
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_string();
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        format!(
            "time: [{} {} {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(50),
            sample_size: 5,
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.len() <= 5);
        assert!(b.report().contains("time:"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting_spans_units() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("us"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains('s'));
    }
}
