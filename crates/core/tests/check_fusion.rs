//! Regression and property tests for the wants-dots check fusion.
//!
//! The point of the negotiation is Heroux's (and Agullo et al.'s) rule that
//! detection must stay off the critical path: skeptical SDC checks may not
//! add collectives to a pipelined solver. These tests pin that down three
//! ways:
//!
//! 1. **Collective counts** — pipelined skeptical GMRES posts exactly *one*
//!    reduction per iteration with fusion (down from four: the strategy's
//!    own plus ‖w‖, ‖v‖ and the basis-pair dot), and pipelined skeptical CG
//!    exactly one (down from three).
//! 2. **Decision/iterate parity** — on fault-free solves, fused and legacy
//!    unfused checking produce bit-identical iterates and identical
//!    (zero-detection) decisions across 1–8 ranks.
//! 3. **Latency** — under a latency-dominated cost model the fused solve is
//!    strictly faster in virtual time than the unfused one.
//!
//! Plus the fault-targeting satellite: a planned [`SpmvFault`] is pinned to
//! its launch-time world rank, so shrink-recovery renumbering cannot move
//! the strike to a different physical process.

use resilience::kernel::{run_cg, run_gmres, CgsOrtho, FusedCgStep, GmresFlavor, MgsOrtho};
use resilience::prelude::*;
use resilient_linalg::poisson2d;
use resilient_runtime::{
    FailureConfig, FailurePolicy, LatencyModel, ReduceOp, Runtime, RuntimeConfig,
};

/// Options that never converge (so iteration counts are exactly
/// `max_iters`) and never trigger the priced residual probe.
fn pinned_opts(max_iters: usize) -> DistSolveOptions {
    DistSolveOptions::default()
        .with_tol(1e-30)
        .with_max_iters(max_iters)
        .with_restart(30)
}

fn no_probe(cfg: SkepticalConfig) -> SkepticalConfig {
    SkepticalConfig {
        residual_check_interval: 0,
        ..cfg
    }
}

/// Allreduces and iterations of one pipelined skeptical GMRES run on
/// 4 ranks (rank 0's view; collective counts are symmetric).
fn gmres_collectives(cfg: SkepticalConfig, max_iters: usize) -> (u64, usize) {
    let rt = Runtime::new(RuntimeConfig::fast());
    let rows = rt
        .run(4, move |comm| {
            let a = poisson2d(8, 8);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
            let before = comm.snapshot_stats().collectives;
            let (out, _report) =
                pipelined_skeptical_gmres(comm, &da, &b, &pinned_opts(max_iters), &cfg, None)?;
            let after = comm.snapshot_stats().collectives;
            Ok((after - before, out.iterations))
        })
        .unwrap_all();
    rows[0]
}

/// Allreduces and iterations of one pipelined skeptical CG run on 4 ranks.
fn cg_collectives(cfg: SkepticalConfig, max_iters: usize) -> (u64, usize) {
    let rt = Runtime::new(RuntimeConfig::fast());
    let rows = rt
        .run(4, move |comm| {
            let a = poisson2d(8, 8);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
            let before = comm.snapshot_stats().collectives;
            let (out, _report) =
                pipelined_skeptical_cg(comm, &da, &b, &pinned_opts(max_iters), &cfg, None)?;
            let after = comm.snapshot_stats().collectives;
            Ok((after - before, out.iterations))
        })
        .unwrap_all();
    rows[0]
}

/// The headline regression: with fusion, each additional pipelined
/// skeptical GMRES iteration costs exactly **one** allreduce (the
/// strategy's own, now carrying the check dots); unfused, each costs four.
#[test]
fn pipelined_skeptical_gmres_posts_one_reduction_per_iteration() {
    let fused = no_probe(SkepticalConfig::default());
    let (c_short, i_short) = gmres_collectives(fused, 5);
    let (c_long, i_long) = gmres_collectives(fused, 12);
    assert_eq!(
        (i_short, i_long),
        (5, 12),
        "runs must hit the iteration cap"
    );
    assert_eq!(
        c_long - c_short,
        (i_long - i_short) as u64,
        "fused: one allreduce per additional iteration"
    );

    let unfused = no_probe(SkepticalConfig::default().unfused());
    let (c_short, i_short) = gmres_collectives(unfused, 5);
    let (c_long, i_long) = gmres_collectives(unfused, 12);
    assert_eq!((i_short, i_long), (5, 12));
    assert_eq!(
        c_long - c_short,
        4 * (i_long - i_short) as u64,
        "unfused legacy schedule: strategy + ‖w‖ + ‖v‖ + basis-pair dot"
    );
}

/// Same pin for the new composition: pipelined skeptical CG's single fused
/// reduction carries the checks (unfused it posts two extra norms).
#[test]
fn pipelined_skeptical_cg_posts_one_reduction_per_iteration() {
    let fused = no_probe(SkepticalConfig::default());
    let (c_short, i_short) = cg_collectives(fused, 5);
    let (c_long, i_long) = cg_collectives(fused, 12);
    assert_eq!(
        (i_short, i_long),
        (5, 12),
        "runs must hit the iteration cap"
    );
    assert_eq!(
        c_long - c_short,
        (i_long - i_short) as u64,
        "fused: one allreduce per additional iteration"
    );

    let unfused = no_probe(SkepticalConfig::default().unfused());
    let (c_short, i_short) = cg_collectives(unfused, 5);
    let (c_long, i_long) = cg_collectives(unfused, 12);
    assert_eq!((i_short, i_long), (5, 12));
    assert_eq!(
        c_long - c_short,
        3 * (i_long - i_short) as u64,
        "unfused legacy schedule: strategy + ‖w‖ + ‖v‖"
    );
}

/// Fused and legacy unfused checking must reach bit-identical iterates and
/// identical detection decisions on fault-free solves, at every rank count:
/// the check tail of a fused reduction may not perturb the solver's own
/// scalars, and the derived check quantities may not false-positive.
#[test]
fn fused_and_unfused_agree_bitwise_on_clean_solves() {
    for ranks in [1usize, 2, 3, 5, 8] {
        let rt = Runtime::new(RuntimeConfig::fast());
        let rows = rt
            .run(ranks, move |comm| {
                let a = poisson2d(9, 9);
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 2) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(400)
                    .with_restart(30);
                let (g_f, rg_f) = pipelined_skeptical_gmres(
                    comm,
                    &da,
                    &b,
                    &opts,
                    &SkepticalConfig::default(),
                    None,
                )?;
                let (g_u, rg_u) = pipelined_skeptical_gmres(
                    comm,
                    &da,
                    &b,
                    &opts,
                    &SkepticalConfig::default().unfused(),
                    None,
                )?;
                let (c_f, rc_f) = pipelined_skeptical_cg(
                    comm,
                    &da,
                    &b,
                    &opts,
                    &SkepticalConfig::default(),
                    None,
                )?;
                let (c_u, rc_u) = pipelined_skeptical_cg(
                    comm,
                    &da,
                    &b,
                    &opts,
                    &SkepticalConfig::default().unfused(),
                    None,
                )?;
                Ok((
                    g_f.x.gather_global(comm)?,
                    g_u.x.gather_global(comm)?,
                    (g_f.iterations, g_u.iterations),
                    (rg_f.skeptical.detections, rg_u.skeptical.detections),
                    c_f.x.gather_global(comm)?,
                    c_u.x.gather_global(comm)?,
                    (c_f.iterations, c_u.iterations),
                    (rc_f.skeptical.detections, rc_u.skeptical.detections),
                ))
            })
            .unwrap_all();
        for (gx_f, gx_u, g_iters, g_det, cx_f, cx_u, c_iters, c_det) in rows {
            assert_eq!(g_det, (0, 0), "{ranks} ranks: clean GMRES must not detect");
            assert_eq!(c_det, (0, 0), "{ranks} ranks: clean CG must not detect");
            assert_eq!(g_iters.0, g_iters.1, "{ranks} ranks: GMRES iterations");
            assert_eq!(c_iters.0, c_iters.1, "{ranks} ranks: CG iterations");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&gx_f), bits(&gx_u), "{ranks} ranks: GMRES iterate");
            assert_eq!(bits(&cx_f), bits(&cx_u), "{ranks} ranks: CG iterate");
        }
    }
}

/// Under a latency-dominated cost model the fused schedule must be strictly
/// faster: the unfused checks re-serialize the pipelined recurrence with
/// blocking allreduces, which is the trade-off the negotiation removes.
#[test]
fn fusion_hides_check_latency() {
    let mut cfg = RuntimeConfig::fast();
    cfg.latency = LatencyModel {
        alpha: 2.0e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    cfg.seconds_per_flop = 1.0e-9;
    let rt = Runtime::new(cfg);
    let rows = rt
        .run(8, move |comm| {
            let a = poisson2d(16, 16);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| (i as f64 * 0.1).cos());
            let opts = DistSolveOptions::default()
                .with_tol(1e-7)
                .with_max_iters(400)
                .with_restart(30);
            let t0 = comm.now();
            let (out_f, _) =
                pipelined_skeptical_gmres(comm, &da, &b, &opts, &SkepticalConfig::default(), None)?;
            let t1 = comm.now();
            let (out_u, _) = pipelined_skeptical_gmres(
                comm,
                &da,
                &b,
                &opts,
                &SkepticalConfig::default().unfused(),
                None,
            )?;
            let t2 = comm.now();
            assert!(out_f.converged && out_u.converged);
            let tc0 = comm.now();
            let (cg_f, _) =
                pipelined_skeptical_cg(comm, &da, &b, &opts, &SkepticalConfig::default(), None)?;
            let tc1 = comm.now();
            let (cg_u, _) = pipelined_skeptical_cg(
                comm,
                &da,
                &b,
                &opts,
                &SkepticalConfig::default().unfused(),
                None,
            )?;
            let tc2 = comm.now();
            assert!(cg_f.converged && cg_u.converged);
            Ok((t1 - t0, t2 - t1, tc1 - tc0, tc2 - tc1))
        })
        .unwrap_all();
    for (gmres_fused, gmres_unfused, cg_fused, cg_unfused) in rows {
        assert!(
            gmres_fused < gmres_unfused,
            "fused skeptical GMRES must hide check latency: fused={gmres_fused}, unfused={gmres_unfused}"
        );
        assert!(
            cg_fused < cg_unfused,
            "fused skeptical CG must hide check latency: fused={cg_fused}, unfused={cg_unfused}"
        );
    }
}

// ---------------------------------------------------------------------------
// ABFT Σw fusion (policy-supplied check pairs)
// ---------------------------------------------------------------------------

/// Run serial CGS-GMRES (a fused-reduction strategy) over `op` with an ABFT
/// policy encoding `clean`; returns (outcome, detections, fused decisions,
/// direct checks = checks − fused).
fn abft_cgs_gmres(
    op: &dyn Operator,
    clean: &resilient_linalg::CsrMatrix,
    fused: bool,
) -> (SolveOutcome, usize, usize, usize) {
    let b = vec![1.0; clean.nrows()];
    let mut abft = AbftSpmvPolicy::for_matrix(clean, 1e-9);
    if !fused {
        abft = abft.unfused();
    }
    let mut space = SerialSpace::new(op);
    let mut stack = PolicyStack::new(vec![&mut abft]);
    let (out, _report) = run_gmres(
        &mut space,
        &b,
        None,
        &SolveOptions::default().with_tol(1e-8).with_max_iters(300),
        &mut CgsOrtho::new(),
        &mut stack,
        None,
        &GmresFlavor::serial(),
    )
    .unwrap();
    let checks = abft.checks_run();
    (
        out.into_solve_outcome(),
        abft.detections(),
        abft.fused_decisions(),
        checks - abft.fused_decisions(),
    )
}

/// On a fused-reduction strategy the ABFT Σw check rides the strategy's own
/// reduction (both checksum sides are policy-supplied pairs); the fused
/// decision must catch an injected flip exactly like the direct path, and
/// clean runs must agree decision-for-decision.
#[test]
fn abft_check_rides_the_fused_reduction_on_cgs_gmres() {
    let a = poisson2d(8, 8);
    // Clean run: every check decided from fused scalars, zero detections.
    let (out, detections, fused_decisions, direct) = abft_cgs_gmres(&a, &a, true);
    assert!(out.converged());
    assert_eq!(detections, 0, "clean run must not false-positive");
    assert!(fused_decisions > 0, "checks must ride the fused reduction");
    assert_eq!(direct, 0, "no direct reductions on a fusing strategy");

    // Direct (unfused) comparison run: same convergence, zero detections,
    // all checks on the legacy path.
    let (out_u, det_u, fused_u, direct_u) = abft_cgs_gmres(&a, &a, false);
    assert!(out_u.converged());
    assert_eq!(det_u, 0);
    assert_eq!(fused_u, 0, "unfused() must decline the negotiation");
    assert!(direct_u > 0);
    assert_eq!(out.iterations, out_u.iterations);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&out.x), bits(&out_u.x), "fused/unfused iterate parity");

    // Faulty run: a high-exponent flip in one product must be detected
    // through the fused scalars and survived.
    let plan = InjectionPlan {
        at_application: 3,
        target: FaultTarget::Element(10),
        bit: Some(61),
    };
    let faulty = FaultyOperator::new(&a, Some(plan), 7);
    let (out_f, det_f, fused_f, _) = abft_cgs_gmres(&faulty, &a, true);
    assert!(
        faulty.injection().is_some(),
        "fault must have been injected"
    );
    assert!(det_f >= 1, "fused ABFT must catch the flip");
    assert!(fused_f > 0);
    assert!(out_f.converged(), "solve must survive: {:?}", out_f.reason);
}

/// The same fusion over the CG family: serial `FusedCgStep` carries the
/// ABFT pairs in its `p·Ap` reduction, detection triggers the kernel's
/// recurrence rebuild, and the solve survives.
#[test]
fn abft_check_rides_the_fused_cg_reduction() {
    let a = poisson2d(8, 8);
    let b = vec![1.0; a.nrows()];
    let plan = InjectionPlan {
        at_application: 4,
        target: FaultTarget::Element(5),
        bit: Some(61),
    };
    let faulty = FaultyOperator::new(&a, Some(plan), 3);
    let mut abft = AbftSpmvPolicy::for_matrix(&a, 1e-9);
    let mut space = SerialSpace::new(&faulty);
    let mut stack = PolicyStack::new(vec![&mut abft]);
    let (out, report) = run_cg(
        &mut space,
        &b,
        None,
        &SolveOptions::default().with_tol(1e-9).with_max_iters(400),
        &mut FusedCgStep::new(),
        &mut stack,
    )
    .unwrap();
    assert!(faulty.injection().is_some());
    assert!(abft.detections() >= 1, "fused ABFT must catch the flip");
    assert!(abft.fused_decisions() > 0);
    assert!(report.policy_restarts >= 1, "detection must rebuild");
    assert_eq!(out.reason, StopReason::Converged);
}

/// Immediate-dot strategies never negotiate: with MGS the policy must stay
/// on the direct path even though fusion is enabled.
#[test]
fn abft_keeps_direct_path_on_immediate_dot_strategies() {
    let a = poisson2d(7, 7);
    let b = vec![1.0; a.nrows()];
    let mut abft = AbftSpmvPolicy::for_matrix(&a, 1e-9);
    let mut space = SerialSpace::new(&a);
    let mut stack = PolicyStack::new(vec![&mut abft]);
    let (out, _report) = run_gmres(
        &mut space,
        &b,
        None,
        &SolveOptions::default().with_tol(1e-8).with_max_iters(300),
        &mut MgsOrtho::new(),
        &mut stack,
        None,
        &GmresFlavor::serial(),
    )
    .unwrap();
    assert_eq!(out.reason, StopReason::Converged);
    assert_eq!(abft.detections(), 0);
    assert_eq!(
        abft.fused_decisions(),
        0,
        "MGS has no fused reduction to ride"
    );
    assert!(abft.checks_run() > 0, "direct checks must run");
}

/// Satellite regression: a planned SpMV fault targets the launch-time
/// *world* rank. After a shrink recovery renumbers the communicator, the
/// strike must stay on the planned physical process — not drift to
/// whichever survivor inherited the communicator rank number.
#[test]
fn spmv_fault_stays_pinned_after_shrink() {
    let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
        FailurePolicy::Shrink,
        vec![(1, 0.25)],
    ));
    let rt = Runtime::new(cfg);
    let r = rt.run(4, |comm| {
        // Ride collectives until the failure of world rank 1 surfaces, then
        // shrink: survivors are world ranks {0, 2, 3} renumbered to {0, 1, 2}.
        let mut shrunk = false;
        for _ in 0..6 {
            comm.advance(0.1);
            match comm.allreduce_scalar(ReduceOp::Sum, 1.0) {
                Ok(_) => {}
                Err(e) if e.is_failure() => {
                    comm.shrink()?;
                    shrunk = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        assert!(shrunk, "survivors must observe the failure");
        assert_eq!(comm.size(), 3);

        // A fault planned pre-failure for (world) rank 2. Under communicator
        // -rank matching it would now strike world rank 3 (renumbered to 2).
        let a = poisson2d(6, 6);
        let da = DistCsr::from_global(comm, &a)?;
        let v = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + i as f64 * 0.01);
        let injections = {
            let mut space = DistSpace::new(comm, &da).with_fault(SpmvFault {
                rank: 2,
                at_application: 0,
                local_element: 0,
                bit: 62,
            });
            let _ = space.apply(&v)?;
            space.injections()
        };
        Ok((comm.world_rank(), comm.rank(), injections))
    });
    assert!(r.results[1].is_none(), "world rank 1 died");
    let survivors: Vec<_> = r.results.iter().flatten().collect();
    assert_eq!(survivors.len(), 3);
    let total: usize = survivors.iter().map(|(_, _, inj)| inj).sum();
    assert_eq!(total, 1, "the strike must land exactly once");
    for (world, comm_rank, injections) in survivors {
        if *injections > 0 {
            assert_eq!(*world, 2, "the strike must stay on world rank 2");
            assert_eq!(*comm_rank, 1, "world rank 2 was renumbered to 1");
        }
        if *comm_rank == 2 {
            assert_eq!(
                *injections, 0,
                "the renumbered rank 2 (world rank 3) must not inherit the strike"
            );
        }
    }
}
