//! Blocking collective operations.
//!
//! These are the "classic" bulk-synchronous collectives whose poor scaling
//! under performance variability motivates the paper's RBSP model (§II-B).
//! Every blocking collective synchronises the participants in virtual time:
//! all ranks leave at the same completion time, which is how noise on one
//! rank delays everyone.

use crate::comm::Comm;
use crate::engine::{CollectiveResult, SlotKey, SlotKind};
use crate::error::Result;

/// Element-wise reduction operators for reduce/allreduce/scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise product.
    Prod,
}

impl ReduceOp {
    /// Combine `b` into `a` element-wise.
    pub fn fold_into(self, a: &mut [f64], b: &[f64]) {
        debug_assert_eq!(a.len(), b.len());
        match self {
            ReduceOp::Sum => a.iter_mut().zip(b).for_each(|(x, y)| *x += *y),
            ReduceOp::Min => a.iter_mut().zip(b).for_each(|(x, y)| *x = x.min(*y)),
            ReduceOp::Max => a.iter_mut().zip(b).for_each(|(x, y)| *x = x.max(*y)),
            ReduceOp::Prod => a.iter_mut().zip(b).for_each(|(x, y)| *x *= *y),
        }
    }

    /// Reduce a list of equally sized contributions into a single vector.
    pub fn reduce_all(self, contributions: &[Vec<f64>]) -> Vec<f64> {
        let mut iter = contributions.iter().filter(|c| !c.is_empty());
        let first = match iter.next() {
            Some(f) => f.clone(),
            None => return Vec::new(),
        };
        iter.fold(first, |mut acc, c| {
            self.fold_into(&mut acc, c);
            acc
        })
    }
}

impl Comm {
    /// Post a collective contribution and wait for completion: the shared
    /// primitive behind every blocking collective.
    pub(crate) fn collective_exchange(
        &mut self,
        contribution: Vec<f64>,
        reduce_elems: usize,
    ) -> Result<CollectiveResult> {
        self.failure_point()?;
        let key = SlotKey {
            epoch: self.epoch,
            comm_id: self.comm_id,
            kind: SlotKind::Collective,
            seq: self.seq,
        };
        self.seq += 1;
        let expected = self.size();
        let bytes = contribution.len() * std::mem::size_of::<f64>();
        let cost = self
            .world
            .config
            .latency
            .collective_cost(expected, bytes, reduce_elems);
        let index = self.rank();
        self.world
            .engine
            .post(key, index, expected, contribution, self.clock.now(), cost)?;
        let result = self
            .world
            .engine
            .wait(key, &self.world.health, self.acked_generation)?;
        self.clock.wait_until(result.completion_time);
        self.collectives += 1;
        Ok(result)
    }

    /// Synchronise all ranks of the communicator (no data exchanged).
    pub fn barrier(&mut self) -> Result<()> {
        self.collective_exchange(Vec::new(), 0).map(|_| ())
    }

    /// All-reduce: combine `data` element-wise across all ranks with `op`;
    /// every rank receives the combined vector.
    pub fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>> {
        let r = self.collective_exchange(data.to_vec(), data.len())?;
        Ok(op.reduce_all(&r.contributions))
    }

    /// All-reduce of a single scalar.
    pub fn allreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<f64> {
        Ok(self.allreduce(op, &[value])?[0])
    }

    /// Reduce to `root`: `root` receives the combined vector, other ranks
    /// receive `None`.
    pub fn reduce(&mut self, root: usize, op: ReduceOp, data: &[f64]) -> Result<Option<Vec<f64>>> {
        let r = self.collective_exchange(data.to_vec(), data.len())?;
        if self.rank() == root {
            Ok(Some(op.reduce_all(&r.contributions)))
        } else {
            Ok(None)
        }
    }

    /// Broadcast `data` from `root` to all ranks. Non-root ranks pass their
    /// (ignored) local buffer, typically empty.
    pub fn broadcast(&mut self, root: usize, data: &[f64]) -> Result<Vec<f64>> {
        let contribution = if self.rank() == root {
            data.to_vec()
        } else {
            Vec::new()
        };
        let r = self.collective_exchange(contribution, 0)?;
        Ok(r.contributions.get(root).cloned().unwrap_or_default())
    }

    /// Gather every rank's `data` to all ranks, ordered by rank.
    pub fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>> {
        let r = self.collective_exchange(data.to_vec(), 0)?;
        Ok(r.contributions)
    }

    /// Gather every rank's `data` to `root` only.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Result<Option<Vec<Vec<f64>>>> {
        let r = self.collective_exchange(data.to_vec(), 0)?;
        if self.rank() == root {
            Ok(Some(r.contributions))
        } else {
            Ok(None)
        }
    }

    /// Inclusive prefix scan: rank `i` receives the combination of the
    /// contributions of ranks `0..=i`.
    pub fn scan(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>> {
        let r = self.collective_exchange(data.to_vec(), data.len())?;
        let me = self.rank();
        Ok(op.reduce_all(&r.contributions[..=me]))
    }

    /// Distributed dot product helper: contributes the local partial dot
    /// product and returns the global sum. This is the collective at the
    /// heart of every Krylov iteration and the one the RBSP experiments
    /// target.
    pub fn global_dot(&mut self, local_partial: f64) -> Result<f64> {
        self.allreduce_scalar(ReduceOp::Sum, local_partial)
    }

    /// ULFM-style agreement: all alive ranks agree on the minimum of their
    /// proposed values.
    pub fn agree(&mut self, value: f64) -> Result<f64> {
        self.allreduce_scalar(ReduceOp::Min, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_sum_min_max_prod() {
        let mut a = vec![1.0, 5.0, 2.0];
        ReduceOp::Sum.fold_into(&mut a, &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![2.0, 6.0, 3.0]);
        let mut a = vec![1.0, 5.0];
        ReduceOp::Min.fold_into(&mut a, &[0.5, 9.0]);
        assert_eq!(a, vec![0.5, 5.0]);
        let mut a = vec![1.0, 5.0];
        ReduceOp::Max.fold_into(&mut a, &[0.5, 9.0]);
        assert_eq!(a, vec![1.0, 9.0]);
        let mut a = vec![2.0, 3.0];
        ReduceOp::Prod.fold_into(&mut a, &[4.0, 0.5]);
        assert_eq!(a, vec![8.0, 1.5]);
    }

    #[test]
    fn reduce_all_skips_empty_contributions() {
        let out = ReduceOp::Sum.reduce_all(&[vec![], vec![1.0, 2.0], vec![3.0, 4.0], vec![]]);
        assert_eq!(out, vec![4.0, 6.0]);
        assert!(ReduceOp::Sum.reduce_all(&[vec![], vec![]]).is_empty());
    }
}
