//! Distributed vectors and sparse matrices over any [`CommBackend`]
//! (virtual-time simulator or real-threads).
//!
//! Data is distributed by contiguous row blocks
//! ([`BlockDistribution`]). Vector dot
//! products and norms are global collectives (the operations the RBSP
//! experiments target); the sparse matrix-vector product communicates only
//! with the ranks that own referenced columns (neighborhood communication).

use std::collections::BTreeMap;

use resilient_linalg::ops::LocalOps;
use resilient_linalg::{CooMatrix, CsrMatrix, SellMatrix};
use resilient_runtime::{BlockDistribution, CommBackend, Result};

/// Tag space used by the SpMV ghost exchange.
const GHOST_TAG: i32 = 1 << 18;

/// Sort scope σ used when [`DistCsr::from_global`] auto-selects the
/// SELL-C-σ layout (matches the `exp_kernel_speed` sweet spot).
pub const DEFAULT_SELL_SIGMA: usize = 256;

/// One FNV-1a step (64-bit) over an 8-byte word.
fn fnv1a(h: &mut u64, v: u64) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// A block-row distributed vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    /// Locally owned entries.
    pub local: Vec<f64>,
    dist: BlockDistribution,
    rank: usize,
}

impl DistVector {
    /// Create this rank's part of a global vector of length `n`, filled by
    /// `f(global_index)`.
    pub fn from_fn<C: CommBackend>(comm: &C, n: usize, f: impl Fn(usize) -> f64) -> Self {
        let dist = BlockDistribution::new(n, comm.size());
        let rank = comm.rank();
        let local = dist.range(rank).map(f).collect();
        Self { local, dist, rank }
    }

    /// This rank's part of a globally replicated slice.
    pub fn from_global<C: CommBackend>(comm: &C, global: &[f64]) -> Self {
        Self::from_fn(comm, global.len(), |i| global[i])
    }

    /// A distributed zero vector of global length `n`.
    pub fn zeros<C: CommBackend>(comm: &C, n: usize) -> Self {
        Self::from_fn(comm, n, |_| 0.0)
    }

    /// Global length.
    pub fn global_len(&self) -> usize {
        self.dist.n
    }

    /// Locally owned length.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// The block distribution.
    pub fn distribution(&self) -> BlockDistribution {
        self.dist
    }

    /// Local partial dot product (no communication).
    pub fn local_dot(&self, other: &DistVector) -> f64 {
        resilient_linalg::vector::dot(&self.local, &other.local)
    }

    /// Global dot product (one allreduce). Charges the `2n` FLOPs of the
    /// local partial product; this is the *only* place vector reductions
    /// charge arithmetic.
    pub fn dot<C: CommBackend>(&self, comm: &mut C, other: &DistVector) -> Result<f64> {
        comm.charge_flops(2 * self.local.len());
        comm.global_dot(self.local_dot(other))
    }

    /// Global 2-norm (one allreduce). A norm is the same `2n` FLOPs as the
    /// dot it delegates to, so it must **not** charge again on top of
    /// [`DistVector::dot`] — pinned by the `norm_costs_exactly_one_dot`
    /// test.
    pub fn norm<C: CommBackend>(&self, comm: &mut C) -> Result<f64> {
        Ok(self.dot(comm, self)?.max(0.0).sqrt())
    }

    /// `self ← self + alpha · other` (local only).
    pub fn axpy(&mut self, alpha: f64, other: &DistVector) {
        resilient_linalg::vector::axpy(alpha, &other.local, &mut self.local);
    }

    /// `self ← alpha · self` (local only).
    pub fn scale(&mut self, alpha: f64) {
        resilient_linalg::vector::scale(alpha, &mut self.local);
    }

    /// Gather the full global vector on every rank (one allgather); intended
    /// for verification and small problems.
    pub fn gather_global<C: CommBackend>(&self, comm: &mut C) -> Result<Vec<f64>> {
        let parts = comm.allgather(&self.local)?;
        Ok(parts.into_iter().flatten().collect())
    }
}

/// A block of `k` block-row distributed vectors sharing one distribution:
/// the multi-RHS surface of the batched solve path.
///
/// Local storage is packed column-major — column `c` occupies
/// `local[c * n_local..(c + 1) * n_local]` — exactly the layout the blocked
/// [`LocalOps`] kernels (`spmm_*`, `dot_blocks`, `*_blocks`) are specified
/// over, so the multi-vector can be handed to them without copies.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMultiVector {
    /// Locally owned entries, packed column-major (`k` columns of length
    /// `local_rows`).
    pub local: Vec<f64>,
    k: usize,
    dist: BlockDistribution,
    rank: usize,
}

impl DistMultiVector {
    /// Create this rank's part of `k` global vectors of length `n`, filled
    /// by `f(column, global_index)`.
    pub fn from_fn<C: CommBackend>(
        comm: &C,
        n: usize,
        k: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Self {
        let dist = BlockDistribution::new(n, comm.size());
        let rank = comm.rank();
        let mut local = Vec::with_capacity(k * dist.range(rank).len());
        for c in 0..k {
            local.extend(dist.range(rank).map(|i| f(c, i)));
        }
        Self {
            local,
            k,
            dist,
            rank,
        }
    }

    /// A distributed zero multi-vector: `k` columns of global length `n`.
    pub fn zeros<C: CommBackend>(comm: &C, n: usize, k: usize) -> Self {
        Self::from_fn(comm, n, k, |_, _| 0.0)
    }

    /// Pack `k` single vectors (which must share one distribution) into a
    /// multi-vector.
    pub fn from_columns(cols: &[DistVector]) -> Self {
        assert!(!cols.is_empty(), "from_columns: empty column set");
        let dist = cols[0].dist;
        let rank = cols[0].rank;
        let n_local = cols[0].local.len();
        let mut local = Vec::with_capacity(cols.len() * n_local);
        for c in cols {
            assert_eq!(c.local.len(), n_local, "from_columns: ragged columns");
            local.extend_from_slice(&c.local);
        }
        Self {
            local,
            k: cols.len(),
            dist,
            rank,
        }
    }

    /// Number of columns (right-hand sides) in the block.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Global length of each column.
    pub fn global_len(&self) -> usize {
        self.dist.n
    }

    /// Locally owned length of each column.
    pub fn local_rows(&self) -> usize {
        self.local.len().checked_div(self.k).unwrap_or(0)
    }

    /// The shared block distribution.
    pub fn distribution(&self) -> BlockDistribution {
        self.dist
    }

    /// Column `c`'s locally owned entries.
    pub fn col(&self, c: usize) -> &[f64] {
        let n = self.local_rows();
        &self.local[c * n..(c + 1) * n]
    }

    /// Mutable view of column `c`'s locally owned entries.
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        let n = self.local_rows();
        &mut self.local[c * n..(c + 1) * n]
    }

    /// Extract column `c` as a standalone [`DistVector`].
    pub fn column(&self, c: usize) -> DistVector {
        DistVector {
            local: self.col(c).to_vec(),
            dist: self.dist,
            rank: self.rank,
        }
    }

    /// Overwrite column `c` from a single vector of the same distribution.
    pub fn set_column(&mut self, c: usize, v: &DistVector) {
        self.col_mut(c).copy_from_slice(&v.local);
    }
}

/// A block-row distributed CSR matrix with precomputed ghost-exchange lists.
#[derive(Debug, Clone)]
pub struct DistCsr {
    /// Local rows, with columns renumbered: `0..n_local` are the locally
    /// owned columns (same order as the owned global range), `n_local..`
    /// are ghost columns in the order of `ghost_globals`.
    local: CsrMatrix,
    dist: BlockDistribution,
    n_local: usize,
    /// Global indices of ghost columns, sorted ascending.
    ghost_globals: Vec<usize>,
    /// Ranks this rank exchanges with during SpMV (symmetric list).
    neighbors: Vec<usize>,
    /// For each neighbor (same order as `neighbors`): local indices of owned
    /// entries that must be sent to it.
    send_lists: Vec<Vec<usize>>,
    /// For each neighbor: positions in the ghost array that its data fills.
    recv_lists: Vec<Vec<usize>>,
    /// FLOPs per local SpMV.
    flops: usize,
    /// Optional SELL-C-σ copy of `local`; when present, SpMV runs through
    /// it (bit-identical results, SIMD-friendly layout). The CSR original
    /// is kept: block extraction, ABFT row access and norm bounds read it.
    sell: Option<SellMatrix>,
}

impl DistCsr {
    /// Build the local part of `global` for this rank and negotiate the
    /// ghost-exchange pattern with the other ranks (collective call: every
    /// rank must call it with the same matrix).
    pub fn from_global<C: CommBackend>(comm: &mut C, global: &CsrMatrix) -> Result<Self> {
        let n = global.nrows();
        assert_eq!(global.ncols(), n, "distributed matrices must be square");
        let dist = BlockDistribution::new(n, comm.size());
        let rank = comm.rank();
        let my_range = dist.range(rank);
        let n_local = my_range.len();

        // Collect ghost (externally owned) column indices referenced by my rows.
        let mut ghost_set: BTreeMap<usize, usize> = BTreeMap::new();
        for i in my_range.clone() {
            let (cols, _) = global.row(i);
            for &j in cols {
                if !my_range.contains(&j) {
                    ghost_set.entry(j).or_insert(0);
                }
            }
        }
        let ghost_globals: Vec<usize> = ghost_set.keys().copied().collect();
        for (pos, g) in ghost_globals.iter().enumerate() {
            ghost_set.insert(*g, pos);
        }

        // Build the local matrix with renumbered columns.
        let mut coo = CooMatrix::new(n_local, n_local + ghost_globals.len());
        for (local_i, i) in my_range.clone().enumerate() {
            let (cols, vals) = global.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let local_j = if my_range.contains(&j) {
                    j - my_range.start
                } else {
                    n_local + ghost_set[&j]
                };
                coo.push(local_i, local_j, v);
            }
        }
        let local = coo.to_csr();
        let flops = local.spmv_flops();
        // Layout auto-selection (purely local, per rank): SELL-C-σ wins
        // when rows are near-uniform — its per-chunk padding is then ~free
        // and the SIMD sweep gets contiguous value loads — and loses on
        // wildly ragged rows, where padding wastes bandwidth. Measure the
        // local row-length dispersion and pick SELL when the squared
        // coefficient of variation is small; tiny blocks stay CSR (the
        // chunk machinery has fixed overhead). Results are bit-identical
        // either way, so ranks need not agree on the choice.
        // `with_sell_layout(σ)` / `with_csr_layout()` remain the manual
        // overrides.
        let sell = if Self::prefers_sell(&local) {
            Some(SellMatrix::from_csr(&local, DEFAULT_SELL_SIGMA))
        } else {
            None
        };

        // Tell every rank which global indices we need (allgather of index
        // lists encoded as f64; exact for indices < 2^53).
        let needed_enc: Vec<f64> = ghost_globals.iter().map(|&g| g as f64).collect();
        let all_needs = comm.allgather(&needed_enc)?;

        // Work out, per peer, what I must send and what I will receive.
        let mut neighbors = Vec::new();
        let mut send_lists = Vec::new();
        let mut recv_lists = Vec::new();
        for (peer, peer_needs) in all_needs.iter().enumerate() {
            if peer == rank {
                continue;
            }
            // What peer needs from me:
            let send: Vec<usize> = peer_needs
                .iter()
                .map(|&g| g as usize)
                .filter(|g| my_range.contains(g))
                .map(|g| g - my_range.start)
                .collect();
            // What I need from peer:
            let peer_range = dist.range(peer);
            let recv: Vec<usize> = ghost_globals
                .iter()
                .enumerate()
                .filter(|(_, &g)| peer_range.contains(&g))
                .map(|(pos, _)| pos)
                .collect();
            if !send.is_empty() || !recv.is_empty() {
                neighbors.push(peer);
                send_lists.push(send);
                recv_lists.push(recv);
            }
        }

        Ok(Self {
            local,
            dist,
            n_local,
            ghost_globals,
            neighbors,
            send_lists,
            recv_lists,
            flops,
            sell,
        })
    }

    /// The row-length-variance heuristic behind layout auto-selection.
    fn prefers_sell(local: &CsrMatrix) -> bool {
        let nr = local.nrows();
        if nr < 64 {
            return false;
        }
        let mean = local.nnz() as f64 / nr as f64;
        if mean <= 0.0 {
            return false;
        }
        let var = (0..nr)
            .map(|i| {
                let d = local.row(i).0.len() as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / nr as f64;
        var / (mean * mean) <= 0.25
    }

    /// Store the local rows in SELL-C-σ as well and run every SpMV through
    /// that layout. Purely local (each rank repacks its own rows); results
    /// are bit-identical to the CSR path, so ranks need not agree on it.
    pub fn with_sell_layout(mut self, sigma: usize) -> Self {
        self.sell = Some(SellMatrix::from_csr(&self.local, sigma));
        self
    }

    /// Force the CSR path, discarding any (auto- or manually-selected)
    /// SELL copy. The manual override mirror of [`DistCsr::with_sell_layout`].
    pub fn with_csr_layout(mut self) -> Self {
        self.sell = None;
        self
    }

    /// A per-rank checksum over this rank's local structure **and** values
    /// (FNV-1a over dimensions, column indices and value bit patterns).
    /// Two `DistCsr`s built from the same global matrix on the same
    /// communicator size hash equal on every rank; any structural or
    /// numerical change — or a different row partition — changes it. The
    /// [`SetupCache`](crate::kernel::SetupCache) keys preconditioner setup
    /// off this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h, self.dist.n as u64);
        fnv1a(&mut h, self.n_local as u64);
        for i in 0..self.local.nrows() {
            let (cols, vals) = self.local.row(i);
            fnv1a(&mut h, cols.len() as u64);
            for (&j, &v) in cols.iter().zip(vals) {
                fnv1a(&mut h, j as u64);
                fnv1a(&mut h, v.to_bits());
            }
        }
        h
    }

    /// Name of the active local SpMV layout (`"csr"` or `"sell"`).
    pub fn layout(&self) -> &'static str {
        if self.sell.is_some() {
            "sell"
        } else {
            "csr"
        }
    }

    /// Number of locally owned rows.
    pub fn local_rows(&self) -> usize {
        self.n_local
    }

    /// Global dimension.
    pub fn global_dim(&self) -> usize {
        self.dist.n
    }

    /// Number of ghost entries exchanged per SpMV.
    pub fn ghost_count(&self) -> usize {
        self.ghost_globals.len()
    }

    /// Ranks this rank communicates with during SpMV.
    pub fn neighbors(&self) -> &[usize] {
        &self.neighbors
    }

    /// FLOPs per SpMV application (local part).
    pub fn flops_per_apply(&self) -> usize {
        self.flops
    }

    /// This rank's `n_local × n_local` diagonal block: the locally owned
    /// rows restricted to the locally owned columns (ghost couplings
    /// dropped). This is the sub-operator a block-Jacobi preconditioner
    /// factors — extracting it is purely local, no communication.
    pub fn local_diagonal_block(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n_local, self.n_local);
        for i in 0..self.local.nrows() {
            let (cols, vals) = self.local.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j < self.n_local {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// This rank's contribution to the global ∞-norm: the maximum absolute
    /// row sum over locally owned rows (rows are complete — owned plus ghost
    /// columns — so an allreduce-Max of this value is the exact global
    /// ∞-norm).
    pub fn local_norm_inf(&self) -> f64 {
        (0..self.local.nrows())
            .map(|i| self.local.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Exchange ghost values of `x` with the neighbours and assemble the
    /// full local input vector (owned entries followed by ghosts) into the
    /// caller's buffer — the hot path reuses one buffer across iterations
    /// instead of allocating per SpMV.
    fn assemble_input_into<C: CommBackend>(
        &self,
        comm: &mut C,
        x: &DistVector,
        full: &mut Vec<f64>,
    ) -> Result<()> {
        full.clear();
        full.reserve(self.n_local + self.ghost_globals.len());
        full.extend_from_slice(&x.local);
        full.resize(self.n_local + self.ghost_globals.len(), 0.0);
        // Post all sends, then receive (tagged by sender to match order).
        let my_rank = comm.rank();
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let payload: Vec<f64> = self.send_lists[idx].iter().map(|&i| x.local[i]).collect();
            comm.send_f64(peer, GHOST_TAG + my_rank as i32, &payload)?;
        }
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let (_, data) = comm.recv_f64(peer, GHOST_TAG + peer as i32)?;
            debug_assert_eq!(data.len(), self.recv_lists[idx].len());
            for (&pos, &v) in self.recv_lists[idx].iter().zip(&data) {
                full[self.n_local + pos] = v;
            }
        }
        Ok(())
    }

    /// Distributed SpMV: `y = A·x`, with ghost exchange and virtual-time
    /// accounting for the local arithmetic.
    pub fn apply<C: CommBackend>(&self, comm: &mut C, x: &DistVector) -> Result<DistVector> {
        self.apply_with(comm, x, resilient_linalg::scalar_ops(), &mut Vec::new())
    }

    /// [`DistCsr::apply`] through an explicit [`LocalOps`] backend and a
    /// reusable ghost-assembly buffer (the allocation-free form
    /// [`DistSpace`](crate::kernel::DistSpace) drives every iteration).
    /// Runs the SELL-C-σ layout when one was built
    /// ([`DistCsr::with_sell_layout`]); bit-identical either way.
    pub fn apply_with<C: CommBackend>(
        &self,
        comm: &mut C,
        x: &DistVector,
        ops: &dyn LocalOps,
        scratch: &mut Vec<f64>,
    ) -> Result<DistVector> {
        assert_eq!(
            x.global_len(),
            self.global_dim(),
            "spmv: dimension mismatch"
        );
        self.assemble_input_into(comm, x, scratch)?;
        comm.charge_flops(self.flops);
        let mut y_local = vec![0.0; self.local.nrows()];
        match &self.sell {
            Some(sell) => ops.spmv_sell(sell, scratch, &mut y_local),
            None => ops.spmv_csr(&self.local, scratch, &mut y_local),
        }
        Ok(DistVector {
            local: y_local,
            dist: self.dist,
            rank: comm.rank(),
        })
    }

    /// Batched distributed SpMM: `Y = A·X` over all `k` columns of a
    /// [`DistMultiVector`] with **one** ghost exchange per neighbour (each
    /// message carries all `k` columns' boundary values) and one local
    /// matrix sweep feeding all `k` outputs. Each output column is
    /// bit-identical to [`DistCsr::apply_with`] on that column alone.
    ///
    /// `active` is the number of columns still charged for arithmetic:
    /// converged columns in a masked block solve stop paying FLOPs but keep
    /// their slot in the sweep (and in every collective), so the charge is
    /// `flops_per_apply × active`, not `× k`.
    pub fn apply_block_with<C: CommBackend>(
        &self,
        comm: &mut C,
        x: &DistMultiVector,
        ops: &dyn LocalOps,
        scratch: &mut Vec<f64>,
        active: usize,
    ) -> Result<DistMultiVector> {
        assert_eq!(
            x.global_len(),
            self.global_dim(),
            "spmm: dimension mismatch"
        );
        let k = x.k();
        let stride = self.n_local + self.ghost_globals.len();
        scratch.clear();
        scratch.resize(k * stride, 0.0);
        for c in 0..k {
            scratch[c * stride..c * stride + self.n_local].copy_from_slice(x.col(c));
        }
        // One message per neighbour for the whole block: the payload packs
        // the send-list values column-major, k × |send_list| long.
        let my_rank = comm.rank();
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let list = &self.send_lists[idx];
            let mut payload = Vec::with_capacity(k * list.len());
            for c in 0..k {
                let col = x.col(c);
                payload.extend(list.iter().map(|&i| col[i]));
            }
            comm.send_f64(peer, GHOST_TAG + my_rank as i32, &payload)?;
        }
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let (_, data) = comm.recv_f64(peer, GHOST_TAG + peer as i32)?;
            let list = &self.recv_lists[idx];
            debug_assert_eq!(data.len(), k * list.len());
            for c in 0..k {
                let chunk = &data[c * list.len()..(c + 1) * list.len()];
                for (&pos, &v) in list.iter().zip(chunk) {
                    scratch[c * stride + self.n_local + pos] = v;
                }
            }
        }
        comm.charge_flops(self.flops * active);
        let mut y_local = vec![0.0; k * self.n_local];
        match &self.sell {
            Some(sell) => ops.spmm_sell(sell, k, scratch, &mut y_local),
            None => ops.spmm_csr(&self.local, k, scratch, &mut y_local),
        }
        Ok(DistMultiVector {
            local: y_local,
            k,
            dist: self.dist,
            rank: comm.rank(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::{poisson1d, poisson2d};
    use resilient_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn dist_vector_dot_and_norm_match_serial() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let n = 37;
        let result = rt.run(4, move |comm| {
            let x = DistVector::from_fn(comm, n, |i| (i + 1) as f64);
            let y = DistVector::from_fn(comm, n, |_| 2.0);
            let d = x.dot(comm, &y)?;
            let nx = x.norm(comm)?;
            Ok((d, nx))
        });
        let serial_dot: f64 = (1..=n).map(|i| 2.0 * i as f64).sum();
        let serial_norm: f64 = ((1..=n).map(|i| (i * i) as f64).sum::<f64>()).sqrt();
        for (d, nx) in result.unwrap_all() {
            assert!((d - serial_dot).abs() < 1e-9);
            assert!((nx - serial_norm).abs() < 1e-9);
        }
    }

    #[test]
    fn dist_vector_axpy_and_gather() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let n = 11;
        let result = rt.run(3, move |comm| {
            let mut x = DistVector::from_fn(comm, n, |i| i as f64);
            let y = DistVector::from_fn(comm, n, |_| 1.0);
            x.axpy(10.0, &y);
            x.scale(0.5);
            x.gather_global(comm)
        });
        for g in result.unwrap_all() {
            let expected: Vec<f64> = (0..n).map(|i| 0.5 * (i as f64 + 10.0)).collect();
            assert_eq!(g, expected);
        }
    }

    #[test]
    fn dist_spmv_matches_serial_poisson1d() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(4, move |comm| {
            let a = poisson1d(23);
            let da = DistCsr::from_global(comm, &a)?;
            let x = DistVector::from_fn(comm, 23, |i| (i as f64 * 0.37).sin());
            let y = da.apply(comm, &x)?;
            Ok((
                y.gather_global(comm)?,
                da.ghost_count(),
                da.neighbors().len(),
            ))
        });
        let a = poisson1d(23);
        let x: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let expected = a.spmv(&x);
        for (got, ghosts, neighbors) in result.unwrap_all() {
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-12);
            }
            // 1-D Laplacian: interior ranks have 2 ghosts / 2 neighbours.
            assert!(ghosts <= 2);
            assert!(neighbors <= 2);
        }
    }

    #[test]
    fn dist_spmv_matches_serial_poisson2d_uneven_ranks() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(5, move |comm| {
            let a = poisson2d(9, 7);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let x = DistVector::from_fn(comm, n, |i| 1.0 + (i % 4) as f64);
            let y = da.apply(comm, &x)?;
            y.gather_global(comm)
        });
        let a = poisson2d(9, 7);
        let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 4) as f64).collect();
        let expected = a.spmv(&x);
        for got in result.unwrap_all() {
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norm_costs_exactly_one_dot() {
        // Audit regression: `norm` must charge the same virtual time as one
        // `dot` (its 2n local FLOPs), never double-charge.
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let x = DistVector::from_fn(comm, 16, |i| i as f64);
            let t0 = comm.now();
            let _ = x.dot(comm, &x)?;
            let t1 = comm.now();
            let _ = x.norm(comm)?;
            let t2 = comm.now();
            Ok(((t1 - t0) - (t2 - t1)).abs())
        });
        for delta in result.unwrap_all() {
            assert!(delta < 1e-12, "norm must cost exactly one dot: {delta}");
        }
    }

    #[test]
    fn local_norm_inf_matches_global() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = poisson2d(6, 5);
            let da = DistCsr::from_global(comm, &a)?;
            comm.allreduce_scalar(resilient_runtime::ReduceOp::Max, da.local_norm_inf())
        });
        let a = poisson2d(6, 5);
        let serial: f64 = (0..a.nrows())
            .map(|i| a.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max);
        for g in result.unwrap_all() {
            assert_eq!(g, serial);
        }
    }

    #[test]
    fn local_diagonal_block_matches_global_submatrix() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = poisson2d(5, 4);
            let da = DistCsr::from_global(comm, &a)?;
            let block = da.local_diagonal_block();
            let start = resilient_runtime::BlockDistribution::new(a.nrows(), comm.size())
                .range(comm.rank())
                .start;
            Ok((start, block))
        });
        let a = poisson2d(5, 4);
        for (start, block) in result.unwrap_all() {
            assert_eq!(block.nrows(), block.ncols());
            for li in 0..block.nrows() {
                for lj in 0..block.ncols() {
                    let expected = {
                        let (cols, vals) = a.row(start + li);
                        cols.iter()
                            .zip(vals)
                            .find(|(&c, _)| c == start + lj)
                            .map_or(0.0, |(_, &v)| v)
                    };
                    let (cols, vals) = block.row(li);
                    let got = cols
                        .iter()
                        .zip(vals)
                        .find(|(&c, _)| c == lj)
                        .map_or(0.0, |(_, &v)| v);
                    assert_eq!(got, expected, "block[{li}][{lj}]");
                }
            }
        }
    }

    #[test]
    fn apply_block_columns_match_single_rhs_apply_bitwise() {
        let rt = Runtime::new(RuntimeConfig::fast());
        for ranks in [1usize, 3, 5] {
            let result = rt.run(ranks, move |comm| {
                let a = poisson2d(7, 6);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let k = 4;
                let xb =
                    DistMultiVector::from_fn(comm, n, k, |c, i| ((i + 3 * c) as f64 * 0.29).sin());
                let ops = resilient_linalg::scalar_ops();
                let yb = da.apply_block_with(comm, &xb, ops, &mut Vec::new(), k)?;
                let mut singles = Vec::new();
                for c in 0..k {
                    let y = da.apply_with(comm, &xb.column(c), ops, &mut Vec::new())?;
                    singles.push(y.local);
                }
                Ok((yb, singles))
            });
            for (yb, singles) in result.unwrap_all() {
                for (c, want) in singles.iter().enumerate() {
                    let bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(yb.col(c)), bits(want), "ranks={ranks} c={c}");
                }
            }
        }
    }

    #[test]
    fn multivector_roundtrips_columns() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let cols: Vec<DistVector> = (0..3)
                .map(|c| DistVector::from_fn(comm, 14, |i| (c * 100 + i) as f64))
                .collect();
            let mut mv = DistMultiVector::from_columns(&cols);
            assert_eq!(mv.k(), 3);
            for (c, want) in cols.iter().enumerate() {
                assert_eq!(&mv.column(c), want);
            }
            let replacement = DistVector::from_fn(comm, 14, |i| -(i as f64));
            mv.set_column(1, &replacement);
            Ok(mv.column(1) == replacement)
        });
        assert!(result.unwrap_all().into_iter().all(|ok| ok));
    }

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = poisson2d(6, 6);
            let da1 = DistCsr::from_global(comm, &a)?;
            let da2 = DistCsr::from_global(comm, &a)?;
            // Same structure, diagonal nudged: the hash is per-rank (each
            // rank hashes its own rows), so perturb a value in every
            // rank's block.
            let mut coo = CooMatrix::new(a.nrows(), a.ncols());
            for i in 0..a.nrows() {
                let (cols, vals) = a.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    coo.push(i, j, if i == j { v + 1e-9 } else { v });
                }
            }
            let da3 = DistCsr::from_global(comm, &coo.to_csr())?;
            Ok((da1.fingerprint(), da2.fingerprint(), da3.fingerprint()))
        });
        for (f1, f2, f3) in result.unwrap_all() {
            assert_eq!(f1, f2, "same matrix must hash equal");
            assert_ne!(f1, f3, "a value change must change the hash");
        }
    }

    #[test]
    fn layout_auto_selection_is_bit_identical_to_forced_layouts() {
        // Poisson rows are near-uniform, so big-enough local blocks
        // auto-select SELL; the override must still force either layout and
        // all three must agree bitwise.
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let a = poisson2d(16, 16);
            let n = a.nrows();
            let auto = DistCsr::from_global(comm, &a)?;
            let forced_sell = DistCsr::from_global(comm, &a)?.with_sell_layout(DEFAULT_SELL_SIGMA);
            let forced_csr = DistCsr::from_global(comm, &a)?.with_csr_layout();
            assert_eq!(auto.layout(), "sell", "near-uniform rows select SELL");
            assert_eq!(forced_csr.layout(), "csr");
            let x = DistVector::from_fn(comm, n, |i| (i as f64 * 0.17).cos());
            let ya = auto.apply(comm, &x)?;
            let ys = forced_sell.apply(comm, &x)?;
            let yc = forced_csr.apply(comm, &x)?;
            Ok((ya.local, ys.local, yc.local))
        });
        for (ya, ys, yc) in result.unwrap_all() {
            let bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ya), bits(&ys));
            assert_eq!(bits(&ya), bits(&yc));
        }
    }

    #[test]
    fn tiny_blocks_stay_csr() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let a = poisson1d(23);
            Ok(DistCsr::from_global(comm, &a)?.layout())
        });
        for layout in result.unwrap_all() {
            assert_eq!(layout, "csr", "sub-64-row blocks keep the CSR path");
        }
    }

    #[test]
    fn single_rank_has_no_neighbors() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(1, move |comm| {
            let a = poisson2d(5, 5);
            let da = DistCsr::from_global(comm, &a)?;
            Ok((
                da.ghost_count(),
                da.neighbors().len(),
                da.local_rows(),
                da.global_dim(),
            ))
        });
        assert_eq!(result.unwrap_all(), vec![(0, 0, 25, 25)]);
    }
}
