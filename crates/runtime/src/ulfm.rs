//! ULFM-style recovery operations: the runtime support the LFLR model needs.
//!
//! The paper (§II-C, §IV) points at the ULFM proposal as "one approach to
//! supporting LFLR": after a process failure, surviving processes get an
//! error class instead of hanging, can *revoke* the communicator so everyone
//! learns of the failure, *agree* on how to proceed, and either *shrink* the
//! communicator or (with a process-management layer) spawn a replacement.
//!
//! This module provides those operations on top of the health board and the
//! collective engine:
//!
//! * [`Comm::recovery_rendezvous`] — used with
//!   [`FailurePolicy::ReplaceRank`](crate::config::FailurePolicy): all world
//!   ranks (survivors plus the freshly spawned replacement) meet, agree on a
//!   restart point, advance to a fresh communication epoch and resume.
//! * [`Comm::shrink`] — used with
//!   [`FailurePolicy::Shrink`](crate::config::FailurePolicy): the survivors
//!   rebuild a smaller communicator excluding the dead ranks.

use serde::{Deserialize, Serialize};

use crate::comm::Comm;
use crate::engine::{SlotKey, SlotKind};
use crate::error::Result;

/// Information returned by a completed recovery rendezvous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// Failure generation that was recovered from.
    pub generation: u64,
    /// New communication epoch.
    pub epoch: u64,
    /// Ranks that have failed at least once so far in the job.
    pub failed_ranks: Vec<usize>,
    /// The minimum of the values proposed by the participants (typically the
    /// last globally completed step, so the application knows where to
    /// resume).
    pub agreed: f64,
    /// Virtual time at which recovery completed.
    pub completed_at: f64,
}

/// Information returned by a completed shrink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkInfo {
    /// This rank's rank in the shrunk communicator.
    pub new_rank: usize,
    /// Size of the shrunk communicator.
    pub new_size: usize,
    /// World ranks that are excluded (dead).
    pub failed_ranks: Vec<usize>,
    /// New communication epoch.
    pub epoch: u64,
}

impl Comm {
    /// Participate in the post-failure recovery rendezvous (ReplaceRank
    /// policy).
    ///
    /// Every world rank — survivors that observed a
    /// [`Revoked`](crate::error::RuntimeError::Revoked) /
    /// [`ProcFailed`](crate::error::RuntimeError::ProcFailed) error, and the
    /// replacement rank whose [`incarnation`](Comm::incarnation) is greater
    /// than zero — must call this. It:
    ///
    /// 1. acknowledges the latest failure generation,
    /// 2. agrees (min-reduction) on `proposal` across all ranks,
    /// 3. advances to a fresh communication epoch, discarding stale messages
    ///    and collectives,
    /// 4. resets the collective sequence counter.
    ///
    /// The typical `proposal` is the index of the last step this rank has
    /// durable state for, so the minimum is the step everyone can restart
    /// from.
    pub fn recovery_rendezvous(&mut self, proposal: f64) -> Result<RecoveryInfo> {
        let generation = self.world.health.generation();
        self.acked_generation = generation;
        let expected = self.world.size;
        let key = SlotKey {
            epoch: 0,
            comm_id: 0,
            kind: SlotKind::Recovery,
            seq: generation,
        };
        let cost = self.world.config.latency.collective_cost(expected, 16, 2)
            + self.world.config.replacement_cost;
        self.world.engine.post(
            key,
            self.world_rank,
            expected,
            vec![proposal],
            self.clock.now(),
            cost,
        )?;
        let result = self
            .world
            .engine
            .wait(key, &self.world.health, generation)?;
        let waited = result.completion_time - self.clock.now();
        if waited > 0.0 {
            self.clock.advance_recovery(waited);
        }
        let agreed = result
            .contributions
            .iter()
            .filter_map(|c| c.first().copied())
            .fold(f64::INFINITY, f64::min);
        // Advance to the new epoch and clean up stale communication state.
        self.epoch = self.world.health.complete_recovery(generation);
        self.world.engine.purge_older_than(self.epoch);
        self.world.mailboxes[self.world_rank].purge_older_than(self.epoch);
        self.seq = 0;
        self.comm_id = 0;
        self.group = None;
        self.recoveries += 1;
        Ok(RecoveryInfo {
            generation,
            epoch: self.epoch,
            failed_ranks: self.world.health.failed_ranks(),
            agreed: if agreed.is_finite() { agreed } else { proposal },
            completed_at: self.clock.now(),
        })
    }

    /// Rebuild the communicator without the failed ranks (Shrink policy).
    ///
    /// Only surviving ranks call this; the result renumbers them densely
    /// `0..new_size`. The caller's [`rank`](Comm::rank) and
    /// [`size`](Comm::size) reflect the shrunk communicator afterwards.
    pub fn shrink(&mut self) -> Result<ShrinkInfo> {
        let generation = self.world.health.generation();
        self.acked_generation = generation;
        let alive = self.world.health.alive_ranks();
        let expected = alive.len();
        let my_index = alive
            .iter()
            .position(|&r| r == self.world_rank)
            .expect("a dead rank cannot call shrink");
        let key = SlotKey {
            epoch: 0,
            comm_id: self.comm_id,
            kind: SlotKind::Shrink,
            seq: generation,
        };
        let cost = self
            .world
            .config
            .latency
            .collective_cost(expected.max(1), 16, 1);
        self.world
            .engine
            .post(key, my_index, expected, Vec::new(), self.clock.now(), cost)?;
        let result = self
            .world
            .engine
            .wait(key, &self.world.health, generation)?;
        let waited = result.completion_time - self.clock.now();
        if waited > 0.0 {
            self.clock.advance_recovery(waited);
        }
        self.epoch = self.world.health.complete_recovery(generation);
        self.world.engine.purge_older_than(self.epoch);
        self.world.mailboxes[self.world_rank].purge_older_than(self.epoch);
        self.seq = 0;
        // Derive a communicator id that every survivor computes identically.
        self.comm_id = 1_000 + generation;
        self.group = Some(alive.clone());
        self.recoveries += 1;
        Ok(ShrinkInfo {
            new_rank: my_index,
            new_size: expected,
            failed_ranks: self.world.health.failed_ranks(),
            epoch: self.epoch,
        })
    }

    /// Explicitly revoke the communicator: every rank's next operation fails
    /// with [`Revoked`](crate::error::RuntimeError::Revoked) until it
    /// participates in recovery. Mirrors `MPI_Comm_revoke`, which an
    /// application calls when *it* (rather than the runtime) detects an
    /// unrecoverable inconsistency.
    pub fn revoke(&mut self) {
        // Reuse the failure machinery with a synthetic "failure" of no rank:
        // bump the generation so peers observe Revoked, but keep everyone
        // alive. We model this by recording a failure of an out-of-range
        // rank, which marks nobody dead.
        self.world
            .health
            .record_failure(usize::MAX, self.incarnation, self.clock.now());
        self.world.interrupt_all();
    }

    /// Number of failures observed so far in this job.
    pub fn failure_count(&self) -> usize {
        self.world.health.failure_count()
    }

    /// Ranks (world numbering) that have failed so far.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.world.health.failed_ranks()
    }

    /// Is `rank` (current-communicator numbering) alive?
    pub fn is_alive(&self, rank: usize) -> bool {
        match self.to_world(rank) {
            Ok(world_rank) => self.world.health.is_alive(world_rank),
            Err(_) => false,
        }
    }
}
