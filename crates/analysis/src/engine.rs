//! The rule engine: file model, waiver handling, tree walking and reports.
//!
//! A [`SourceFile`] wraps one file's token stream with the pre-computed
//! views every rule needs — code-token indices, per-line classes, the
//! `#[cfg(test)]` regions, waiver comments, and the fixture `analysis-as:`
//! directive. [`analyze_tree`] walks the repository (skipping `target/`,
//! `vendor/` and the analyzer's own `tests/fixtures/`) and runs every rule
//! over every file, then strips findings covered by a well-formed waiver
//! comment — `lint:allow`, rule name in parentheses, mandatory reason — on
//! the finding line or on the comment/attribute run immediately above it.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::all_rules;

/// One finding (or engine-level problem such as a malformed waiver).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (kebab-case, as printed by `--list-rules`).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human explanation: what fired and which invariant it breaks.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed waiver comment: `lint:allow`, rule in parentheses, reason.
#[derive(Debug, Clone)]
struct Waiver {
    line: u32,
    rule: String,
    reason_ok: bool,
}

/// Per-line lexical class, used by the SAFETY-comment and waiver look-up
/// walks.
#[derive(Debug, Default, Clone, Copy)]
struct LineClass {
    has_code: bool,
    has_comment: bool,
    /// First token on the line is `#` — an attribute line.
    attr_start: bool,
}

/// One lexed source file plus the derived views the rules consume.
pub struct SourceFile {
    /// Effective repo-relative path (the `analysis-as:` directive of a
    /// fixture overrides the on-disk path for rule scoping).
    pub path: String,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens.
    pub code: Vec<usize>,
    lines: BTreeMap<u32, LineClass>,
    waivers: Vec<Waiver>,
    /// Token-index ranges (inclusive start, inclusive end) of
    /// `#[cfg(test)]`-gated items.
    test_ranges: Vec<(usize, usize)>,
    /// Engine-level diagnostics discovered while parsing (malformed
    /// waivers); reported alongside rule findings.
    engine_diags: Vec<Diagnostic>,
}

/// The marker a waiver comment must carry.
const WAIVER_MARK: &str = "lint:allow(";
/// The fixture path-override directive (only honored under
/// `tests/fixtures/`).
const DIRECTIVE: &str = "analysis-as:";

impl SourceFile {
    /// Lex and index `src`. `disk_path` is the repo-relative on-disk path;
    /// for fixture files an `// analysis-as: <path>` directive in the
    /// leading comments replaces it for rule-scoping purposes.
    pub fn parse(disk_path: &str, src: &str) -> Self {
        let toks = lex(src);
        let mut path = disk_path.replace('\\', "/");
        if path.contains("tests/fixtures/") {
            for t in toks.iter().take_while(|t| t.is_comment()) {
                if let Some(rest) = t
                    .text
                    .find(DIRECTIVE)
                    .map(|p| &t.text[p + DIRECTIVE.len()..])
                {
                    let val = rest.trim().trim_end_matches("*/").trim();
                    if !val.is_empty() {
                        path = val.to_string();
                    }
                    break;
                }
            }
        }
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut lines: BTreeMap<u32, LineClass> = BTreeMap::new();
        for t in &toks {
            let e = lines.entry(t.line).or_default();
            if t.is_comment() {
                e.has_comment = true;
            } else {
                if !e.has_code && !e.has_comment && t.is(TokKind::Punct, "#") {
                    e.attr_start = true;
                }
                e.has_code = true;
            }
        }
        let mut engine_diags = Vec::new();
        let waivers = parse_waivers(&path, &toks, &mut engine_diags);
        let test_ranges = find_test_ranges(&toks, &code);
        Self {
            path,
            toks,
            code,
            lines,
            waivers,
            test_ranges,
            engine_diags,
        }
    }

    /// Is token index `ti` inside a `#[cfg(test)]`-gated item?
    pub fn in_test(&self, ti: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= ti && ti <= b)
    }

    /// Walk the comment/attribute run that ends just above `line` (and
    /// `line` itself) and report whether any comment satisfies `pred`.
    /// Attribute lines (`#[…]`) and doc comments are transparent, so a
    /// `// SAFETY:` comment above `#[target_feature]` still counts for the
    /// `unsafe fn` underneath.
    pub fn comment_run_above(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        // Same-line (trailing) comment first.
        if self.line_comment_matches(line, &pred) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            match self.lines.get(&l) {
                Some(c) if c.has_comment && !c.has_code => {
                    if self.line_comment_matches(l, &pred) {
                        return true;
                    }
                }
                Some(c) if c.attr_start => {}
                _ => return false,
            }
            l -= 1;
        }
        false
    }

    fn line_comment_matches(&self, line: u32, pred: &impl Fn(&str) -> bool) -> bool {
        self.toks
            .iter()
            .filter(|t| t.is_comment() && t.line == line)
            .any(|t| pred(&t.text))
    }

    /// Is the finding at `line` covered by a well-formed waiver for `rule`?
    fn waived(&self, rule: &str, line: u32) -> bool {
        let at = |l: u32| {
            self.waivers
                .iter()
                .any(|w| w.line == l && w.rule == rule && w.reason_ok)
        };
        if at(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            match self.lines.get(&l) {
                Some(c) if c.has_comment && !c.has_code => {
                    if at(l) {
                        return true;
                    }
                }
                Some(c) if c.attr_start => {}
                _ => return false,
            }
            l -= 1;
        }
        false
    }
}

/// Parse waiver comments; malformed ones (unknown rule, missing reason)
/// become `waiver-syntax` diagnostics so a typo can't silently disable a
/// contract.
fn parse_waivers(path: &str, toks: &[Tok], diags: &mut Vec<Diagnostic>) -> Vec<Waiver> {
    let known: HashSet<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    let mut out = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let Some(pos) = t.text.find(WAIVER_MARK) else {
            continue;
        };
        let rest = &t.text[pos + WAIVER_MARK.len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: "unclosed `lint:allow(` waiver".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let reason_ok = !reason.is_empty();
        if !known.contains(rule.as_str()) {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: format!("waiver names unknown rule `{rule}` (see --list-rules)"),
            });
            continue;
        }
        if !reason_ok {
            diags.push(Diagnostic {
                rule: "waiver-syntax",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "waiver for `{rule}` has no reason — write `lint:allow({rule}): <why>`"
                ),
            });
        }
        out.push(Waiver {
            line: t.line,
            rule,
            reason_ok,
        });
    }
    out
}

/// Find `#[cfg(test)] <item> { … }` token ranges. The attribute may be
/// followed by further attributes, doc comments and visibility before the
/// item keyword; the region is the item's outermost brace pair. `mod t;`
/// (a `;` before any `{`) yields no region.
fn find_test_ranges(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut ci = 0;
    while ci < code.len() {
        if is_cfg_test_attr(toks, code, ci) {
            // Scan forward to the first `{` before any `;`.
            let mut cj = ci;
            let mut open = None;
            while cj < code.len() {
                let t = &toks[code[cj]];
                if t.is(TokKind::Punct, ";") {
                    break;
                }
                if t.is(TokKind::Punct, "{") {
                    open = Some(cj);
                    break;
                }
                cj += 1;
            }
            if let Some(start) = open {
                let mut depth = 0i32;
                let mut ck = start;
                while ck < code.len() {
                    let t = &toks[code[ck]];
                    if t.is(TokKind::Punct, "{") {
                        depth += 1;
                    } else if t.is(TokKind::Punct, "}") {
                        depth -= 1;
                        if depth == 0 {
                            ranges.push((code[ci], code[ck]));
                            break;
                        }
                    }
                    ck += 1;
                }
                ci = ck;
            }
        }
        ci += 1;
    }
    ranges
}

/// Does the code token at position `ci` start a `#[cfg(test)]`-ish
/// attribute (`#` `[` … with both `cfg` and `test` inside the brackets)?
fn is_cfg_test_attr(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    if !toks[code[ci]].is(TokKind::Punct, "#") {
        return false;
    }
    let Some(&bi) = code.get(ci + 1) else {
        return false;
    };
    if !toks[bi].is(TokKind::Punct, "[") {
        return false;
    }
    let (mut saw_cfg, mut saw_test) = (false, false);
    let mut depth = 0i32;
    for &k in &code[ci + 1..] {
        let t = &toks[k];
        if t.is(TokKind::Punct, "[") {
            depth += 1;
        } else if t.is(TokKind::Punct, "]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            saw_cfg |= t.text == "cfg";
            saw_test |= t.text == "test";
        }
    }
    saw_cfg && saw_test
}

/// Result of an analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings that survived waivers, sorted by path and line.
    pub findings: Vec<Diagnostic>,
    /// Number of findings silenced by well-formed waivers.
    pub waived: usize,
    /// Files analyzed.
    pub files: usize,
}

impl Analysis {
    /// Render the report the CLI prints: one `path:line: [rule] message`
    /// per finding plus a one-line summary.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "resilient-analysis: {} finding{} ({} waived) across {} file{}\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.waived,
            self.files,
            if self.files == 1 { "" } else { "s" },
        ));
        out
    }
}

/// Analyze one file's source under its (effective) repo-relative path.
/// Returns surviving findings and the number waived.
pub fn analyze_source(disk_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let file = SourceFile::parse(disk_path, src);
    let mut raw: Vec<Diagnostic> = file.engine_diags.clone();
    for rule in all_rules() {
        rule.check(&file, &mut raw);
    }
    let mut kept = Vec::new();
    let mut waived = 0;
    for d in raw {
        // `waiver-syntax` findings are not themselves waivable.
        if d.rule != "waiver-syntax" && file.waived(d.rule, d.line) {
            waived += 1;
        } else {
            kept.push(d);
        }
    }
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (kept, waived)
}

/// Should `path` (relative, `/`-separated) be analyzed at all?
fn walkable(rel: &str) -> bool {
    let skip_dirs = ["target/", "vendor/", ".git/"];
    if skip_dirs
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
    {
        return false;
    }
    // The analyzer's self-test fixtures are bad on purpose.
    if rel.contains("tests/fixtures/") {
        return false;
    }
    rel.ends_with(".rs")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if p.is_dir() {
            let base = rel.trim_end_matches('/');
            if ["target", "vendor", ".git"]
                .iter()
                .any(|d| base.ends_with(d))
                || rel.contains("tests/fixtures")
            {
                continue;
            }
            collect_rs_files(root, &p, out);
        } else if walkable(&rel) {
            out.push(p);
        }
    }
}

/// Analyze every tracked `.rs` file under `root`.
pub fn analyze_tree(root: &Path) -> Analysis {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    let mut analysis = Analysis::default();
    for p in files {
        let Ok(src) = std::fs::read_to_string(&p) else {
            continue;
        };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let (mut findings, waived) = analyze_source(&rel, &src);
        analysis.findings.append(&mut findings);
        analysis.waived += waived;
        analysis.files += 1;
    }
    analysis
        .findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    analysis
}

/// Analyze an explicit list of files (fixture `analysis-as:` directives are
/// honored). Paths are used as given.
pub fn analyze_files(paths: &[String]) -> Result<Analysis, String> {
    let mut analysis = Analysis::default();
    for p in paths {
        let src = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        let (mut findings, waived) = analyze_source(&p.replace('\\', "/"), &src);
        analysis.findings.append(&mut findings);
        analysis.waived += waived;
        analysis.files += 1;
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection_spans_the_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let helper_ti = f
            .toks
            .iter()
            .position(|t| t.text == "helper")
            .expect("helper tok");
        let live_ti = f.toks.iter().position(|t| t.text == "live").unwrap();
        let after_ti = f.toks.iter().position(|t| t.text == "after").unwrap();
        assert!(f.in_test(helper_ti));
        assert!(!f.in_test(live_ti));
        assert!(!f.in_test(after_ti));
    }

    #[test]
    fn directive_only_honored_under_fixtures() {
        let src = "// analysis-as: crates/core/src/kernel/fake.rs\nfn f() {}\n";
        let fixture = SourceFile::parse("crates/analysis/tests/fixtures/bad_x.rs", src);
        assert_eq!(fixture.path, "crates/core/src/kernel/fake.rs");
        let normal = SourceFile::parse("crates/core/src/lib.rs", src);
        assert_eq!(normal.path, "crates/core/src/lib.rs");
    }

    #[test]
    fn malformed_waiver_is_reported() {
        let src = "// lint:allow(virtual-time)\nfn f() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.engine_diags.len(), 1);
        assert!(f.engine_diags[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_waiver_is_reported() {
        let src = "// lint:allow(no-such-rule): because\nfn f() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.engine_diags.len(), 1);
        assert!(f.engine_diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn comment_run_walks_through_attributes() {
        let src = "// SAFETY: guarded by detection.\n#[target_feature(enable = \"avx\")]\nunsafe fn k() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.comment_run_above(3, |c| c.contains("SAFETY:")));
        assert!(!f.comment_run_above(3, |c| c.contains("NOPE")));
    }
}
