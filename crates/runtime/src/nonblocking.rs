//! Nonblocking (asynchronous) collectives — the MPI-3 capability that makes
//! the paper's Relaxed Bulk-Synchronous Programming model possible.
//!
//! A nonblocking collective is *posted* immediately (contributing the
//! caller's data and entry time to the rendezvous slot) and completed later
//! with [`wait`](PendingCollective::wait). The completion time is the
//! maximum of the participants' *post* times plus the collective cost — so
//! any local work the caller performs between post and wait overlaps the
//! collective's latency. If the caller arrives at `wait` later than the
//! completion time, the collective costs it nothing: the latency has been
//! hidden. This is exactly the mechanism pipelined Krylov methods (§III-B)
//! exploit.

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::engine::{SlotKey, SlotKind};
use crate::error::Result;

/// What kind of collective a pending request represents, and what its result
/// should look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    AllReduce(ReduceOp),
    Barrier,
    Broadcast { root: usize },
    AllGather,
}

/// A posted, not-yet-completed nonblocking collective.
///
/// Must be completed with [`wait`](Self::wait) (or discarded explicitly with
/// [`cancel`](Self::cancel), which still participates in the rendezvous so
/// that peers are not left hanging — matching MPI semantics where a posted
/// collective must complete on all ranks).
#[must_use = "a posted nonblocking collective must be completed with wait()"]
#[derive(Debug)]
pub struct PendingCollective {
    key: SlotKey,
    kind: PendingKind,
    /// Virtual time at which the operation was posted.
    posted_at: f64,
}

/// Result of a completed nonblocking collective.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectiveOutcome {
    /// Result of an all-reduce or broadcast: one vector.
    Vector(Vec<f64>),
    /// Result of an allgather: one vector per rank.
    PerRank(Vec<Vec<f64>>),
    /// Barrier: no data.
    Done,
}

impl CollectiveOutcome {
    /// Extract the single-vector result (allreduce / broadcast).
    pub fn into_vector(self) -> Vec<f64> {
        match self {
            CollectiveOutcome::Vector(v) => v,
            CollectiveOutcome::PerRank(mut v) => v.pop().unwrap_or_default(),
            CollectiveOutcome::Done => Vec::new(),
        }
    }

    /// Extract the per-rank result (allgather).
    pub fn into_per_rank(self) -> Vec<Vec<f64>> {
        match self {
            CollectiveOutcome::PerRank(v) => v,
            CollectiveOutcome::Vector(v) => vec![v],
            CollectiveOutcome::Done => Vec::new(),
        }
    }
}

impl Comm {
    fn post_nonblocking(
        &mut self,
        contribution: Vec<f64>,
        reduce_elems: usize,
        kind: PendingKind,
    ) -> Result<PendingCollective> {
        self.failure_point()?;
        let key = SlotKey {
            epoch: self.epoch,
            comm_id: self.comm_id,
            kind: SlotKind::Collective,
            seq: self.seq,
        };
        self.seq += 1;
        let expected = self.size();
        let bytes = contribution.len() * std::mem::size_of::<f64>();
        let cost = self
            .world
            .config
            .latency
            .collective_cost(expected, bytes, reduce_elems);
        let index = self.rank();
        self.world
            .engine
            .post(key, index, expected, contribution, self.clock.now(), cost)?;
        Ok(PendingCollective {
            key,
            kind,
            posted_at: self.clock.now(),
        })
    }

    /// Post a nonblocking all-reduce.
    pub fn iallreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<PendingCollective> {
        self.post_nonblocking(data.to_vec(), data.len(), PendingKind::AllReduce(op))
    }

    /// Post a nonblocking all-reduce of a single scalar.
    pub fn iallreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<PendingCollective> {
        self.iallreduce(op, &[value])
    }

    /// Post a nonblocking barrier.
    pub fn ibarrier(&mut self) -> Result<PendingCollective> {
        self.post_nonblocking(Vec::new(), 0, PendingKind::Barrier)
    }

    /// Post a nonblocking broadcast from `root`.
    pub fn ibroadcast(&mut self, root: usize, data: &[f64]) -> Result<PendingCollective> {
        let contribution = if self.rank() == root {
            data.to_vec()
        } else {
            Vec::new()
        };
        self.post_nonblocking(contribution, 0, PendingKind::Broadcast { root })
    }

    /// Post a nonblocking allgather.
    pub fn iallgather(&mut self, data: &[f64]) -> Result<PendingCollective> {
        self.post_nonblocking(data.to_vec(), 0, PendingKind::AllGather)
    }
}

impl PendingCollective {
    /// Has the collective completed (all ranks posted)? Never blocks and
    /// never advances the clock; equivalent to `MPI_Test` without freeing
    /// the request.
    pub fn test(&self, comm: &Comm) -> bool {
        comm.world.engine.is_complete(&self.key)
    }

    /// Virtual time at which this rank posted the operation.
    pub fn posted_at(&self) -> f64 {
        self.posted_at
    }

    /// Complete the collective: blocks until every rank has posted, advances
    /// the caller's virtual clock to the completion time (if it is not
    /// already past it — the latency-hiding case) and returns the result.
    pub fn wait(self, comm: &mut Comm) -> Result<CollectiveOutcome> {
        let result = comm
            .world
            .engine
            .wait(self.key, &comm.world.health, comm.acked_generation)?;
        comm.clock.wait_until(result.completion_time);
        comm.collectives += 1;
        let outcome = match self.kind {
            PendingKind::AllReduce(op) => {
                CollectiveOutcome::Vector(op.reduce_all(&result.contributions))
            }
            PendingKind::Barrier => CollectiveOutcome::Done,
            PendingKind::Broadcast { root } => CollectiveOutcome::Vector(
                result.contributions.get(root).cloned().unwrap_or_default(),
            ),
            PendingKind::AllGather => CollectiveOutcome::PerRank(result.contributions),
        };
        Ok(outcome)
    }

    /// Complete an allreduce/broadcast request and return its vector result.
    pub fn wait_vector(self, comm: &mut Comm) -> Result<Vec<f64>> {
        Ok(self.wait(comm)?.into_vector())
    }

    /// Complete an allreduce-scalar request and return its scalar result.
    pub fn wait_scalar(self, comm: &mut Comm) -> Result<f64> {
        let v = self.wait_vector(comm)?;
        Ok(v.first().copied().unwrap_or(0.0))
    }

    /// Participate in the rendezvous but discard the result.
    pub fn cancel(self, comm: &mut Comm) -> Result<()> {
        self.wait(comm).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_conversions() {
        assert_eq!(
            CollectiveOutcome::Vector(vec![1.0]).into_vector(),
            vec![1.0]
        );
        assert_eq!(CollectiveOutcome::Done.into_vector(), Vec::<f64>::new());
        assert_eq!(
            CollectiveOutcome::PerRank(vec![vec![1.0], vec![2.0]]).into_per_rank(),
            vec![vec![1.0], vec![2.0]]
        );
        assert_eq!(
            CollectiveOutcome::Vector(vec![3.0]).into_per_rank(),
            vec![vec![3.0]]
        );
        assert_eq!(
            CollectiveOutcome::PerRank(vec![vec![9.0]]).into_vector(),
            vec![9.0]
        );
        assert!(CollectiveOutcome::Done.into_per_rank().is_empty());
    }
}
