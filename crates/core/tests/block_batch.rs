//! Integration pins for the block multi-RHS CG kernel
//! ([`run_block_cg`](resilience::kernel::run_block_cg) via the
//! [`dist_block_pcg`] / [`pipelined_block_pcg`] presets).
//!
//! Four pins:
//!
//! 1. **k = 1 degeneracy** — a one-column block solve is *bitwise*
//!    identical to the corresponding single-RHS preset ([`dist_pcg`] /
//!    [`pipelined_pcg`]): same iterates, same iteration count, same
//!    residual history, and the same exact collective count.
//! 2. **Columns are single-RHS recurrences** — each column of a k-RHS
//!    block solve is bitwise identical to solving that RHS alone, at every
//!    rank count 1–8. Batching amortises traffic; it never reassociates
//!    across columns ("lane width is part of the spec").
//! 3. **Collective count is independent of k** — the batched payload makes
//!    the allreduce schedule a function of the iteration count only: two
//!    blocking allreduces per fused iteration, one nonblocking per
//!    pipelined iteration, for k ∈ {1, 2, 4, 8} alike.
//! 4. **Setup cache** — a [`SetupCache`]-provided block-Jacobi solves
//!    bit-identically to a freshly factored one, and the warm solve is
//!    strictly cheaper in virtual time (the LU setup flops are skipped).

use resilience::prelude::*;
use resilient_linalg::poisson2d;
use resilient_runtime::{Runtime, RuntimeConfig};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Distinct right-hand sides per column; column 3 (when present) is all
/// zeros so it converges before the first iteration and exercises the
/// pre-loop freeze path.
fn rhs(c: usize, i: usize) -> f64 {
    if c == 3 {
        0.0
    } else {
        ((i * (c + 1)) as f64 * 0.13).sin() + 1.0 + c as f64
    }
}

// ---------------------------------------------------------------------------
// 1. k = 1 is bitwise identical to the single-RHS presets
// ---------------------------------------------------------------------------

/// (single x, block x, single iters, block col-0 iters, single history,
/// block col-0 history, single collectives, block collectives)
type K1Parity = (
    Vec<f64>,
    Vec<f64>,
    usize,
    usize,
    Vec<f64>,
    Vec<f64>,
    u64,
    u64,
);

fn k1_parity(ranks: usize, pipelined: bool) -> Vec<K1Parity> {
    let rt = Runtime::new(RuntimeConfig::fast());
    rt.run(ranks, move |comm| {
        let a = poisson2d(10, 10);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        let b1 = DistVector::from_fn(comm, n, |i| rhs(0, i));
        let bk = DistMultiVector::from_columns(std::slice::from_ref(&b1));
        let opts = DistSolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(300);

        let mut m = BlockJacobi::new(&da);
        let before = comm.snapshot_stats().collectives;
        let single = if pipelined {
            pipelined_pcg(comm, &da, &b1, &mut m, &opts)?
        } else {
            dist_pcg(comm, &da, &b1, &mut m, &opts)?
        };
        let single_coll = comm.snapshot_stats().collectives - before;

        let mut m = BlockJacobi::new(&da);
        let before = comm.snapshot_stats().collectives;
        let block = if pipelined {
            pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
        } else {
            dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
        };
        let block_coll = comm.snapshot_stats().collectives - before;

        assert!(single.converged, "single-RHS solve must converge");
        assert!(block.all_converged(), "block solve must converge");
        assert_eq!(
            single.relative_residual.to_bits(),
            block.relative_residuals[0].to_bits(),
            "final relres must match bitwise"
        );
        Ok((
            single.x.gather_global(comm)?,
            block.x.column(0).gather_global(comm)?,
            single.iterations,
            block.column_iterations[0],
            single.history,
            block.histories[0].clone(),
            single_coll,
            block_coll,
        ))
    })
    .unwrap_all()
}

#[test]
fn fused_block_at_k1_is_bitwise_identical_to_dist_pcg() {
    for ranks in [1, 3, 4] {
        for (sx, bx, si, bi, sh, bh, sc, bc) in k1_parity(ranks, false) {
            assert_eq!(bits(&sx), bits(&bx), "x bits diverged at {ranks} ranks");
            assert_eq!(si, bi, "iteration counts diverged at {ranks} ranks");
            assert_eq!(bits(&sh), bits(&bh), "histories diverged at {ranks} ranks");
            assert_eq!(sc, bc, "collective counts diverged at {ranks} ranks");
        }
    }
}

#[test]
fn pipelined_block_at_k1_is_bitwise_identical_to_pipelined_pcg() {
    for ranks in [1, 3, 4] {
        for (sx, bx, si, bi, sh, bh, sc, bc) in k1_parity(ranks, true) {
            assert_eq!(bits(&sx), bits(&bx), "x bits diverged at {ranks} ranks");
            assert_eq!(si, bi, "iteration counts diverged at {ranks} ranks");
            assert_eq!(bits(&sh), bits(&bh), "histories diverged at {ranks} ranks");
            assert_eq!(sc, bc, "collective counts diverged at {ranks} ranks");
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Every column matches its own sequential single-RHS solve, 1–8 ranks
// ---------------------------------------------------------------------------

fn columns_match_sequential(ranks: usize, pipelined: bool) {
    const K: usize = 4;
    let rt = Runtime::new(RuntimeConfig::fast());
    let results = rt.run(ranks, move |comm| {
        let a = poisson2d(9, 9);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        let bk = DistMultiVector::from_fn(comm, n, K, rhs);
        let opts = DistSolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(300);

        let mut m = BlockJacobi::new(&da);
        let block = if pipelined {
            pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
        } else {
            dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
        };
        assert!(block.all_converged(), "block solve must converge");
        assert_eq!(
            block.iterations,
            *block.column_iterations.iter().max().unwrap(),
            "batch runs until the slowest column freezes"
        );

        let mut cols = Vec::new();
        for (c, out) in block.into_columns().into_iter().enumerate() {
            let bc = DistVector::from_fn(comm, n, |i| rhs(c, i));
            let mut m = BlockJacobi::new(&da);
            let solo = if pipelined {
                pipelined_pcg(comm, &da, &bc, &mut m, &opts)?
            } else {
                dist_pcg(comm, &da, &bc, &mut m, &opts)?
            };
            assert!(solo.converged, "sequential solve {c} must converge");
            cols.push((
                c,
                out.x.gather_global(comm)?,
                solo.x.gather_global(comm)?,
                out.iterations,
                solo.iterations,
                out.history,
                solo.history,
            ));
        }
        Ok(cols)
    });
    for cols in results.unwrap_all() {
        for (c, bx, sx, bi, si, bh, sh) in cols {
            assert_eq!(
                bits(&bx),
                bits(&sx),
                "column {c} x bits diverged at {ranks} ranks"
            );
            assert_eq!(
                bi, si,
                "column {c} iteration count diverged at {ranks} ranks"
            );
            assert_eq!(
                bits(&bh),
                bits(&sh),
                "column {c} history diverged at {ranks} ranks"
            );
        }
    }
}

#[test]
fn fused_block_columns_match_sequential_solves_across_ranks() {
    for ranks in 1..=8 {
        columns_match_sequential(ranks, false);
    }
}

#[test]
fn pipelined_block_columns_match_sequential_solves_across_ranks() {
    for ranks in 1..=8 {
        columns_match_sequential(ranks, true);
    }
}

// ---------------------------------------------------------------------------
// 3. Collective count per iteration is independent of k
// ---------------------------------------------------------------------------

/// Run a pinned (non-converging) block solve and return the exact number of
/// collectives it issued together with its iteration count.
fn block_collectives(pipelined: bool, k: usize, max_iters: usize) -> (u64, usize) {
    let rt = Runtime::new(RuntimeConfig::fast());
    let results = rt.run(4, move |comm| {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        // No zero column here: pinned runs must keep every lane active.
        let bk = DistMultiVector::from_fn(comm, n, k, |c, i| rhs(c.min(2), i));
        let opts = DistSolveOptions::default()
            .with_tol(1e-30)
            .with_max_iters(max_iters);
        let mut m = BlockJacobi::new(&da);
        let before = comm.snapshot_stats().collectives;
        let out = if pipelined {
            pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
        } else {
            dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
        };
        let after = comm.snapshot_stats().collectives;
        Ok((after - before, out.iterations))
    });
    let mut out = results.unwrap_all();
    let first = out.remove(0);
    for other in out {
        assert_eq!(first, other, "ranks disagree on collective counts");
    }
    first
}

#[test]
fn fused_allreduce_count_is_independent_of_k() {
    let mut totals = Vec::new();
    for k in [1, 2, 4, 8] {
        let (c_short, i_short) = block_collectives(false, k, 5);
        let (c_long, i_long) = block_collectives(false, k, 12);
        assert_eq!((i_short, i_long), (5, 12), "pinned runs must not converge");
        // Two blocking allreduces per iteration, whatever the batch width.
        assert_eq!(
            c_long - c_short,
            2 * 7,
            "fused per-iteration count at k={k}"
        );
        totals.push((c_short, c_long));
    }
    // The whole schedule — init norm and first fused reduction included —
    // is identical across batch widths, not just the per-iteration slope.
    assert!(
        totals.iter().all(|&t| t == totals[0]),
        "total collective schedule must be independent of k: {totals:?}"
    );
}

#[test]
fn pipelined_allreduce_count_is_independent_of_k() {
    let mut totals = Vec::new();
    for k in [1, 2, 4, 8] {
        let (c_short, i_short) = block_collectives(true, k, 5);
        let (c_long, i_long) = block_collectives(true, k, 12);
        assert_eq!((i_short, i_long), (5, 12), "pinned runs must not converge");
        // One nonblocking allreduce per iteration, whatever the batch width.
        assert_eq!(
            c_long - c_short,
            7,
            "pipelined per-iteration count at k={k}"
        );
        totals.push((c_short, c_long));
    }
    assert!(
        totals.iter().all(|&t| t == totals[0]),
        "total collective schedule must be independent of k: {totals:?}"
    );
}

// ---------------------------------------------------------------------------
// 4. Setup cache: warm solves are bit-identical and strictly cheaper
// ---------------------------------------------------------------------------

#[test]
fn cached_setup_solves_bit_identically_and_skips_the_factorization_cost() {
    let mut cfg = RuntimeConfig::fast();
    cfg.seconds_per_flop = 1.0e-9;
    let rt = Runtime::new(cfg);
    let results = rt.run(2, move |comm| {
        let a = poisson2d(12, 12);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        let bk = DistMultiVector::from_fn(comm, n, 2, rhs);
        let opts = DistSolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(300);

        let mut cache = SetupCache::new();
        let t0 = comm.now();
        let mut m = cache.block_jacobi(&da);
        let cold = dist_block_pcg(comm, &da, &bk, &mut m, &opts)?;
        let t1 = comm.now();
        let mut m = cache.block_jacobi(&da);
        let warm = dist_block_pcg(comm, &da, &bk, &mut m, &opts)?;
        let t2 = comm.now();

        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1, "one operator, one cache entry");
        assert!(cold.all_converged() && warm.all_converged());
        Ok((
            cold.x.column(0).gather_global(comm)?,
            warm.x.column(0).gather_global(comm)?,
            cold.x.column(1).gather_global(comm)?,
            warm.x.column(1).gather_global(comm)?,
            t1 - t0,
            t2 - t1,
        ))
    });
    for (c0, w0, c1, w1, cold_time, warm_time) in results.unwrap_all() {
        assert_eq!(bits(&c0), bits(&w0), "warm solve must be bit-identical");
        assert_eq!(bits(&c1), bits(&w1), "warm solve must be bit-identical");
        // The solves are identical except that the warm one never charges
        // the LU factorization flops, so it is strictly faster.
        assert!(
            warm_time < cold_time,
            "cache hit must skip setup cost: cold={cold_time}, warm={warm_time}"
        );
    }
}
