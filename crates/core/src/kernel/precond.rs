//! The preconditioner axis of the unified kernel.
//!
//! Heroux's resilience argument is framed around *preconditioned* Krylov
//! methods — the bulk-unreliable work in FT-GMRES is the preconditioner
//! apply, and the preconditioner is the primary knob trading local work
//! against global synchronization. This module promotes preconditioning
//! from a serial-only special case to a fourth kernel axis alongside
//! space × strategy × policy:
//!
//! * [`SpacePreconditioner`] — a preconditioner applied *through* a
//!   [`KrylovSpace`], so its arithmetic is charged to the same cost
//!   accounting (virtual time in distributed spaces, the FLOP counter in
//!   serial ones) as every other kernel operation.
//! * [`IdentityPrecond`] — the no-op instance; presets built with it are
//!   bit-identical to their unpreconditioned counterparts (pinned by
//!   `crates/core/tests/preconditioning.rs`).
//! * [`SerialPrecond`] — adapts any legacy [`Preconditioner`] to the
//!   serial space, through the allocation-free `apply_into` path.
//! * [`BlockJacobi`] — the distributed workhorse: each rank factors its
//!   own diagonal block of the [`DistCsr`] once (dense LU with partial
//!   pivoting) and back-substitutes per apply. Both setup and apply are
//!   purely local — block-Jacobi adds **zero** collectives per iteration,
//!   which is exactly why it is the preconditioner of choice for the
//!   latency-sensitive RBSP solvers.
//! * [`RightPrecond`] — exposes any `SpacePreconditioner` through the
//!   GMRES kernel's flexible right-preconditioning slot
//!   ([`FlexibleRight`]), which is how `CgsOrtho`/`PipelinedOrtho` presets
//!   are right-preconditioned.
//!
//! # Example
//!
//! Any `SpacePreconditioner` drops into any CG strategy — here the legacy
//! Jacobi preconditioner, adapted to the serial space, drives the unified
//! kernel directly (this is exactly what the `solvers::pcg` preset does):
//!
//! ```
//! use resilience::kernel::{run_cg, PcgStep, PolicyStack, SerialPrecond, SerialSpace};
//! use resilience::solvers::{JacobiPreconditioner, SolveOptions, StopReason};
//! use resilient_linalg::poisson2d;
//!
//! let a = poisson2d(8, 8);
//! let b = vec![1.0; a.nrows()];
//! let jacobi = JacobiPreconditioner::from_matrix(&a);
//! let mut m = SerialPrecond(&jacobi);
//! let mut space = SerialSpace::new(&a);
//! let (out, _report) = run_cg(
//!     &mut space,
//!     &b,
//!     None,
//!     &SolveOptions::default().with_tol(1e-8).with_max_iters(200),
//!     &mut PcgStep::new(&mut m),
//!     &mut PolicyStack::empty(),
//! )
//! .unwrap();
//! assert_eq!(out.reason, StopReason::Converged);
//! assert!(out.relative_residual <= 1e-8);
//! ```
//!
//! Distributed solves swap in [`BlockJacobi`] the same way — see the
//! `rbsp::dist_pcg` preset and `crates/core/tests/preconditioning.rs`.

use resilient_linalg::LuFactors;
use resilient_runtime::Result;

use super::gmres::FlexibleRight;
use super::space::{DistSpace, KrylovSpace, SerialSpace};
use crate::distributed::{DistCsr, DistVector};
use crate::solvers::common::{Operator, Preconditioner};

/// A preconditioner `z ≈ M⁻¹·r` applied through an execution space.
///
/// The contract mirrors the space's own operations: `apply_into` performs
/// the arithmetic **and charges its FLOPs through the space** (so cost
/// accounting and check-flop attribution keep working no matter which
/// strategy calls it), writes into a caller-owned vector that lives across
/// iterations (no per-apply allocation on the hot path), and must be
/// deterministic and rank-symmetric in distributed spaces — every rank
/// applies its local part of the same global linear operator. Nonlinear or
/// unreliable "preconditioners" (FT-GMRES inner solves) stay on the
/// [`FlexibleRight`] interface with its skeptical validity checks; this
/// trait is for fixed linear operators, which is what lets the pipelined
/// strategies recover preconditioned bases by linearity.
pub trait SpacePreconditioner<S: KrylovSpace> {
    /// Short identifier for reports and experiment tables.
    fn name(&self) -> &'static str {
        "preconditioner"
    }

    /// `z ← M⁻¹·r`, charging the apply's FLOPs through the space. `z` is
    /// shaped like `r` (the strategies pass a buffer created with
    /// `space.zeros_like` and reuse it every iteration).
    fn apply_into(&mut self, space: &mut S, r: &S::Vector, z: &mut S::Vector) -> Result<()>;

    /// FLOPs of one apply (0 for the identity; what `apply_into` charges).
    fn flops_per_apply(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

/// The identity preconditioner over any space: `z ← r`, zero FLOPs. The
/// preconditioned presets degrade to their unpreconditioned counterparts
/// bit-for-bit under it.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl<S: KrylovSpace> SpacePreconditioner<S> for IdentityPrecond {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn apply_into(&mut self, _space: &mut S, r: &S::Vector, z: &mut S::Vector) -> Result<()> {
        z.clone_from(r);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Serial adapter
// ---------------------------------------------------------------------------

/// Adapts a legacy slice-level [`Preconditioner`] to the serial space (the
/// bridge `solvers::pcg` uses). Applies through the allocation-free
/// [`Preconditioner::apply_into`]; charges nothing, preserving the legacy
/// serial cost model in which preconditioner applies were not counted.
pub struct SerialPrecond<'m, M: Preconditioner + ?Sized>(pub &'m M);

impl<'a, 'm, O, M> SpacePreconditioner<SerialSpace<'a, O>> for SerialPrecond<'m, M>
where
    O: Operator + ?Sized,
    M: Preconditioner + ?Sized,
{
    fn name(&self) -> &'static str {
        "serial"
    }

    fn apply_into(
        &mut self,
        _space: &mut SerialSpace<'a, O>,
        r: &Vec<f64>,
        z: &mut Vec<f64>,
    ) -> Result<()> {
        self.0.apply_into(r, z);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Distributed block-Jacobi
// ---------------------------------------------------------------------------

/// Block-Jacobi over a [`DistCsr`]: `M = diag(A₀₀, A₁₁, …)` where `Aᵢᵢ` is
/// rank *i*'s diagonal block. Each rank LU-factors its own block once at
/// construction ([`DistCsr::local_diagonal_block`], purely local) and
/// back-substitutes per apply — **no collectives and no neighbor exchange**,
/// so preconditioning adds zero synchronization per iteration while the
/// strong couplings inside each block (and, on one rank, the whole matrix)
/// are solved exactly.
///
/// Each apply charges `2·n_local²` FLOPs through the space, and the
/// one-time factorization cost (`2·n_local³⁄3` FLOPs) is charged through
/// the space at the *first* apply — so a solve's virtual time honestly
/// includes setup, while re-solves with the same instance (multiple
/// right-hand sides, time stepping) amortize it: the trade the paper's
/// §II-B describes, local work bought for global synchronization.
#[derive(Debug, Clone)]
pub struct BlockJacobi {
    lu: LuFactors,
    /// Factorization FLOPs still to be charged (consumed at first apply).
    setup_flops: usize,
}

impl BlockJacobi {
    /// Factor this rank's diagonal block of `a`. Local call — but every
    /// rank of a solve must construct its own instance from the same
    /// distributed matrix, or the preconditioner is not a well-defined
    /// global operator.
    pub fn new(a: &DistCsr) -> Self {
        let n = a.local_rows();
        Self {
            lu: LuFactors::factor(&a.local_diagonal_block().to_dense()),
            // Dense partial-pivot LU: 2n³/3 FLOPs.
            setup_flops: 2 * n * n * n / 3,
        }
    }

    /// Rebuild from already-computed factors (a [`SetupCache`] hit): no
    /// factorization runs and **no setup FLOPs are charged** — the cached
    /// factors were paid for by the solve that produced them.
    ///
    /// [`SetupCache`]: crate::kernel::SetupCache
    pub fn from_factors(lu: LuFactors) -> Self {
        Self { lu, setup_flops: 0 }
    }

    /// The local LU factors (what a [`SetupCache`](crate::kernel::SetupCache)
    /// memoizes).
    pub fn factors(&self) -> &LuFactors {
        &self.lu
    }

    /// Rows of the factored local block.
    pub fn local_rows(&self) -> usize {
        self.lu.dim()
    }

    /// One-time factorization FLOPs (charged at the first apply, 0 after).
    pub fn pending_setup_flops(&self) -> usize {
        self.setup_flops
    }
}

impl<'a, 'b, C: resilient_runtime::CommBackend> SpacePreconditioner<DistSpace<'a, 'b, C>>
    for BlockJacobi
{
    fn name(&self) -> &'static str {
        "block-jacobi"
    }

    fn apply_into(
        &mut self,
        space: &mut DistSpace<'a, 'b, C>,
        r: &DistVector,
        z: &mut DistVector,
    ) -> Result<()> {
        // Hard check even in release: `solve_into` accepts longer vectors,
        // so a preconditioner factored for a different distribution (wrong
        // matrix, rebuilt communicator) would otherwise silently solve a
        // prefix and zero the tail.
        assert_eq!(
            r.local_len(),
            self.lu.dim(),
            "block-Jacobi applied to a vector of a different distribution"
        );
        assert_eq!(
            z.local_len(),
            self.lu.dim(),
            "block-Jacobi output buffer built for a different distribution"
        );
        // Through the space's device-op backend (bit-identical to
        // `solve_into`; pinned by the linalg parity proptests), so the
        // whole preconditioned hot path runs on one backend choice.
        self.lu.solve_with(space.ops(), &r.local, &mut z.local);
        space.charge_flops(self.lu.flops_per_solve() + std::mem::take(&mut self.setup_flops));
        // Campaign strike point: the freshly computed output is the
        // upset surface for precond-apply fault families (a no-op counter
        // when no plan is installed).
        space.strike_precond_output(z);
        Ok(())
    }

    fn flops_per_apply(&self) -> usize {
        self.lu.flops_per_solve()
    }
}

// ---------------------------------------------------------------------------
// Flexible-right adapter (GMRES)
// ---------------------------------------------------------------------------

/// Exposes a [`SpacePreconditioner`] through the GMRES kernel's flexible
/// right-preconditioning slot: `run_gmres` then computes the Krylov space
/// of `A·M⁻¹` and corrects the solution through the preconditioned basis.
/// Unlike a true flexible inner solve the operator is fixed and linear,
/// which is what entitles `PipelinedOrtho` to extend the preconditioned
/// basis by linearity instead of re-applying `M⁻¹`.
pub struct RightPrecond<'m, S: KrylovSpace>(pub &'m mut dyn SpacePreconditioner<S>);

impl<'m, S: KrylovSpace> FlexibleRight<S> for RightPrecond<'m, S> {
    fn apply(&mut self, space: &mut S, v: &S::Vector) -> Result<S::Vector> {
        let mut z = space.zeros_like(v);
        self.0.apply_into(space, v, &mut z)?;
        Ok(z)
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::{anisotropic2d, poisson2d};
    use resilient_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn identity_precond_copies_bitwise() {
        let a = poisson2d(4, 4);
        let mut space = SerialSpace::new(&a);
        let r: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z = vec![0.0; 16];
        SpacePreconditioner::<SerialSpace<'_, _>>::apply_into(
            &mut IdentityPrecond,
            &mut space,
            &r,
            &mut z,
        )
        .unwrap();
        assert_eq!(
            r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            z.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(space.accumulated_flops(), 0, "identity charges nothing");
    }

    #[test]
    fn block_jacobi_solves_the_local_block_exactly() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = anisotropic2d(6, 5, 0.1, 100.0, 2);
            let da = DistCsr::from_global(comm, &a)?;
            let mut bj = BlockJacobi::new(&da);
            assert_eq!(bj.local_rows(), da.local_rows());
            let block = da.local_diagonal_block();
            // z = M⁻¹ r must satisfy A_local · z = r exactly (up to roundoff).
            let r = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 4) as f64);
            let mut z = DistVector::zeros(comm, a.nrows());
            let t0 = comm.now();
            let mut space = DistSpace::new(comm, &da);
            bj.apply_into(&mut space, &r, &mut z)?;
            let elapsed = space.comm().now() - t0;
            let az = block.spmv(&z.local);
            let err = az
                .iter()
                .zip(&r.local)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let flops = SpacePreconditioner::<DistSpace<'_, '_>>::flops_per_apply(&bj);
            Ok((err, elapsed, flops))
        });
        for (err, elapsed, flops) in result.unwrap_all() {
            assert!(err < 1e-9, "local block solve error {err}");
            assert!(elapsed > 0.0, "the apply must charge virtual time");
            assert!(flops > 0);
        }
    }
}
