//! Givens rotations and the progressive Hessenberg least-squares solve used
//! by GMRES.

use crate::dense::DenseMatrix;

/// A 2×2 Givens rotation `[c s; -s c]` that zeroes the second component of
/// the vector it was computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl Givens {
    /// Compute the rotation that maps `(a, b)` to `(r, 0)` with `r ≥ 0`-ish
    /// (the standard numerically stable formulation).
    pub fn compute(a: f64, b: f64) -> Self {
        if b == 0.0 {
            Self { c: 1.0, s: 0.0 }
        } else if a == 0.0 {
            Self { c: 0.0, s: 1.0 }
        } else {
            let r = a.hypot(b);
            Self { c: a / r, s: b / r }
        }
    }

    /// Apply the rotation to the pair `(x, y)`, returning the rotated pair.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }

    /// Apply the rotation in place to two entries of a column.
    pub fn apply_to(&self, column: &mut [f64], i: usize, k: usize) {
        let (x, y) = (column[i], column[k]);
        let (nx, ny) = self.apply(x, y);
        column[i] = nx;
        column[k] = ny;
    }
}

/// Progressive least-squares solver for the Hessenberg systems produced by
/// the Arnoldi process: maintains the QR factorisation of H via Givens
/// rotations and the rotated right-hand side, so the residual norm of the
/// GMRES iterate is available at every step without solving a system.
#[derive(Debug, Clone)]
pub struct HessenbergLsq {
    /// Upper-triangular factor (column k holds R's column k in rows 0..=k).
    r: DenseMatrix,
    /// Accumulated rotations.
    rotations: Vec<Givens>,
    /// Rotated right-hand side (starts as β·e₁).
    g: Vec<f64>,
    /// Number of processed columns.
    k: usize,
    max_dim: usize,
}

impl HessenbergLsq {
    /// Start a factorisation for at most `max_dim` Arnoldi steps with initial
    /// residual norm `beta`.
    pub fn new(max_dim: usize, beta: f64) -> Self {
        let mut g = vec![0.0; max_dim + 1];
        g[0] = beta;
        Self {
            r: DenseMatrix::zeros(max_dim + 1, max_dim),
            rotations: Vec::with_capacity(max_dim),
            g,
            k: 0,
            max_dim,
        }
    }

    /// Absorb column `k` of the Hessenberg matrix (entries `h[0..=k+1]`,
    /// i.e. length `k + 2`). Returns the new least-squares residual norm,
    /// which equals the GMRES residual norm of iterate `k + 1`.
    pub fn push_column(&mut self, h: &[f64]) -> f64 {
        let k = self.k;
        assert!(k < self.max_dim, "Hessenberg factorisation is full");
        assert_eq!(h.len(), k + 2, "column {k} must have {} entries", k + 2);
        let mut col = vec![0.0; self.max_dim + 1];
        col[..k + 2].copy_from_slice(h);
        // Apply previous rotations to the new column.
        for (i, rot) in self.rotations.iter().enumerate() {
            rot.apply_to(&mut col, i, i + 1);
        }
        // Compute and apply the new rotation eliminating the sub-diagonal.
        let rot = Givens::compute(col[k], col[k + 1]);
        rot.apply_to(&mut col, k, k + 1);
        let (gk, gk1) = rot.apply(self.g[k], self.g[k + 1]);
        self.g[k] = gk;
        self.g[k + 1] = gk1;
        self.rotations.push(rot);
        for (i, &c) in col.iter().enumerate().take(k + 1) {
            self.r.set(i, k, c);
        }
        self.k += 1;
        self.residual_norm()
    }

    /// Current least-squares residual norm `|g[k]|`.
    pub fn residual_norm(&self) -> f64 {
        self.g[self.k].abs()
    }

    /// Number of absorbed columns.
    pub fn len(&self) -> usize {
        self.k
    }

    /// True if no columns have been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Solve for the coefficient vector `y` of length [`len`](Self::len)
    /// minimising ‖β·e₁ − H·y‖.
    pub fn solve(&self) -> Vec<f64> {
        self.r.solve_upper_triangular(&self.g, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::nrm2;

    #[test]
    fn rotation_zeroes_second_component() {
        for (a, b) in [(3.0, 4.0), (1.0, 0.0), (0.0, 2.0), (-5.0, 12.0)] {
            let g = Givens::compute(a, b);
            let (r, zero) = g.apply(a, b);
            assert!(zero.abs() < 1e-12, "second component must vanish");
            assert!(
                (r.abs() - (a.hypot(b))).abs() < 1e-12,
                "first component must be ±hypot"
            );
            // Rotation preserves the 2-norm.
            let (x, y) = g.apply(0.7, -0.3);
            assert!((x.hypot(y) - 0.7f64.hypot(-0.3)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_to_slice() {
        let g = Givens::compute(1.0, 1.0);
        let mut col = vec![1.0, 1.0, 5.0];
        g.apply_to(&mut col, 0, 1);
        assert!((col[0] - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(col[1].abs() < 1e-12);
        assert_eq!(col[2], 5.0);
    }

    #[test]
    fn hessenberg_lsq_solves_small_system() {
        // Minimise ‖β e₁ − H y‖ for a 3×2 Hessenberg H.
        let h_cols = [vec![2.0, 1.0], vec![1.0, 3.0, 0.5]];
        let beta = 4.0;
        let mut lsq = HessenbergLsq::new(2, beta);
        assert!(lsq.is_empty());
        let r1 = lsq.push_column(&h_cols[0]);
        let r2 = lsq.push_column(&h_cols[1]);
        assert!(r2 <= r1 + 1e-12, "residual must be non-increasing");
        assert_eq!(lsq.len(), 2);
        let y = lsq.solve();
        // Verify against the normal equations residual computed directly.
        let h = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0], vec![0.0, 0.5]]);
        let hy = h.gemv(&y);
        let residual = [beta - hy[0], -hy[1], -hy[2]];
        assert!((nrm2(&residual) - lsq.residual_norm()).abs() < 1e-10);
        // The gradient Hᵀ r must vanish at the least-squares solution.
        let grad = h.gemv_t(&residual);
        assert!(
            nrm2(&grad) < 1e-10,
            "normal equations not satisfied: {grad:?}"
        );
    }

    #[test]
    fn residual_norm_reaches_zero_for_square_consistent_system() {
        // H is 3x2 but the data is consistent only in the 2D subspace; use a
        // consistent construction: pick y, build rhs = H y with zero last row.
        let mut lsq = HessenbergLsq::new(2, 5.0);
        // First column (2 entries), second column (3 entries, last = 0).
        lsq.push_column(&[5.0, 0.0]);
        let r = lsq.push_column(&[1.0, 2.0, 0.0]);
        assert!(r < 1e-12, "consistent system must reach zero residual");
        let y = lsq.solve();
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!(y[1].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut lsq = HessenbergLsq::new(1, 1.0);
        lsq.push_column(&[1.0, 0.0]);
        lsq.push_column(&[1.0, 1.0, 0.0]);
    }
}
