//! Experiment P1 — preconditioning as a kernel axis: unpreconditioned vs.
//! distributed block-Jacobi Krylov solvers on an ill-conditioned
//! anisotropic, jumpy-coefficient diffusion problem, across rank counts.
//!
//! The paper's resilience argument is framed around *preconditioned* Krylov
//! methods: the preconditioner is the knob trading local work against
//! global synchronization, and fault/latency experiments run at
//! unrealistic iteration counts without one. This experiment shows the
//! trade directly: block-Jacobi (per-rank LU of the local diagonal block —
//! zero extra collectives, `allred/iter` column unchanged) collapses
//! iterations-to-tolerance by one to three orders of magnitude on a
//! problem where unpreconditioned CG needs hundreds of iterations and
//! unpreconditioned GMRES thousands, at every rank count. The virtual
//! wall-clock column includes the honest local-work bill — `2·n_local²`
//! FLOPs per apply plus the one-time `2·n_local³⁄3` factorization charged
//! at first apply — so it also shows where the trade *loses*: on a single
//! rank, factoring the whole matrix for one solve is a direct solve in
//! disguise and CG-family time gets worse, while from 2 ranks up the
//! shrinking blocks and collapsed iteration counts pay for themselves
//! many times over under a realistic latency model.
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::prelude::*;
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_linalg::anisotropic2d;
use resilient_runtime::{Comm, LatencyModel, Result, Runtime, RuntimeConfig};

/// One solver family's comparison row: iterations, virtual seconds and
/// allreduces-per-iteration, unpreconditioned vs block-Jacobi.
struct Row {
    solver: &'static str,
    iters: usize,
    iters_bj: usize,
    time: f64,
    time_bj: f64,
    allred_per_iter: f64,
    allred_per_iter_bj: f64,
}

fn measure(
    comm: &mut Comm,
    iters_of: impl FnOnce(&mut Comm) -> Result<DistSolveOutcome>,
) -> Result<(usize, f64, f64)> {
    let c0 = comm.snapshot_stats().collectives;
    let t0 = comm.now();
    let out = iters_of(comm)?;
    let t1 = comm.now();
    let c1 = comm.snapshot_stats().collectives;
    assert!(
        out.converged,
        "solver must reach tolerance (relres {:.2e} after {} iterations)",
        out.relative_residual, out.iterations
    );
    let allred = (c1 - c0) as f64 / out.iterations.max(1) as f64;
    Ok((out.iterations, t1 - t0, allred))
}

#[allow(clippy::type_complexity)]
fn sweep(ranks: usize, nx: usize, eps: f64, jump: f64, band: usize, smoke: bool) -> Vec<Row> {
    let mut cfg = RuntimeConfig::fast().with_seed(23);
    cfg.latency = LatencyModel {
        alpha: 1.0e-4,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.seconds_per_flop = 1e-9;
    let rt = Runtime::new(cfg);
    let result = rt.run(ranks, move |comm| {
        let a = anisotropic2d(nx, nx, eps, jump, band);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 5) as f64);
        let opts = DistSolveOptions::default()
            .with_tol(1e-7)
            .with_max_iters(if smoke { 3000 } else { 20000 })
            .with_restart(60);

        let cg = measure(comm, |c| dist_cg(c, &da, &b, &opts))?;
        let mut bj = BlockJacobi::new(&da);
        let cg_bj = measure(comm, |c| dist_pcg(c, &da, &b, &mut bj, &opts))?;

        let pcg = measure(comm, |c| pipelined_cg(c, &da, &b, &opts))?;
        let mut bj = BlockJacobi::new(&da);
        let pcg_bj = measure(comm, |c| pipelined_pcg(c, &da, &b, &mut bj, &opts))?;

        let gm = measure(comm, |c| dist_gmres(c, &da, &b, &opts))?;
        let mut bj = BlockJacobi::new(&da);
        let gm_bj = measure(comm, |c| dist_pgmres(c, &da, &b, &mut bj, &opts))?;

        let pgm = measure(comm, |c| pipelined_gmres(c, &da, &b, &opts))?;
        let mut bj = BlockJacobi::new(&da);
        let pgm_bj = measure(comm, |c| pipelined_pgmres(c, &da, &b, &mut bj, &opts))?;

        Ok(vec![
            ("fused CG", cg, cg_bj),
            ("pipelined CG", pcg, pcg_bj),
            ("CGS GMRES", gm, gm_bj),
            ("p(1) GMRES", pgm, pgm_bj),
        ])
    });
    let per_rank = result.unwrap_all();
    // Iterations and collective counts are rank-symmetric; take rank 0's
    // view and the maximum time across ranks.
    per_rank[0]
        .iter()
        .enumerate()
        .map(|(i, (solver, plain, bj))| Row {
            solver,
            iters: plain.0,
            iters_bj: bj.0,
            time: per_rank.iter().map(|r| r[i].1 .1).fold(0.0, f64::max),
            time_bj: per_rank.iter().map(|r| r[i].2 .1).fold(0.0, f64::max),
            allred_per_iter: plain.2,
            allred_per_iter_bj: bj.2,
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nx, eps, jump, band) = if smoke {
        (10, 0.1, 100.0, 2)
    } else {
        (24, 0.05, 1000.0, 4)
    };
    let rank_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let mut table = Table::new(
        &format!(
            "P1: unpreconditioned vs block-Jacobi, anisotropic/jumpy diffusion \
             {nx}x{nx} (eps={eps}, jump={jump}, band={band}), tol 1e-7"
        ),
        &[
            "ranks",
            "solver",
            "iters",
            "iters(bj)",
            "iter ratio",
            "time (ms)",
            "time(bj) (ms)",
            "speedup",
            "allred/iter",
            "allred/iter(bj)",
        ],
    );
    for &ranks in rank_counts {
        for row in sweep(ranks, nx, eps, jump, band, smoke) {
            assert!(
                row.iters_bj < row.iters,
                "{} on {ranks} ranks: block-Jacobi must reduce iterations \
                 ({} vs {})",
                row.solver,
                row.iters_bj,
                row.iters
            );
            // The marginal allreduce-per-iteration parity is pinned exactly
            // by `crates/core/tests/preconditioning.rs`; here the average
            // includes each solve's fixed setup collectives, which dominate
            // only when block-Jacobi converges in a handful of iterations.
            if row.iters_bj >= 10 {
                assert!(
                    (row.allred_per_iter_bj - row.allred_per_iter).abs() < 0.5,
                    "{} on {ranks} ranks: block-Jacobi must not add collectives \
                     per iteration ({} vs {})",
                    row.solver,
                    row.allred_per_iter_bj,
                    row.allred_per_iter
                );
            }
            table.row(vec![
                ranks.to_string(),
                row.solver.to_string(),
                row.iters.to_string(),
                row.iters_bj.to_string(),
                fmt_ratio(row.iters as f64 / row.iters_bj.max(1) as f64),
                fmt_g(row.time * 1e3),
                fmt_g(row.time_bj * 1e3),
                fmt_ratio(row.time / row.time_bj.max(1e-12)),
                fmt_g(row.allred_per_iter),
                fmt_g(row.allred_per_iter_bj),
            ]);
        }
    }
    table.emit("p1_preconditioning");
}
