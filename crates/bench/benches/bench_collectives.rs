//! E8 bench: blocking vs. nonblocking collectives under noise (wall time of
//! the simulation itself; the virtual-time results are in exp_noise_amplification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilient_runtime::{NoiseConfig, ReduceOp, Runtime, RuntimeConfig};
use std::time::Duration;

fn run_steps(ranks: usize, blocking: bool) -> f64 {
    let cfg = RuntimeConfig::fast().with_noise(NoiseConfig::exponential(100.0, 1e-4));
    let rt = Runtime::new(cfg);
    let result = rt.run(ranks, move |comm| {
        for _ in 0..20 {
            comm.advance(1e-3);
            if blocking {
                comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
            } else {
                let p = comm.iallreduce_scalar(ReduceOp::Sum, 1.0)?;
                comm.advance(1e-3);
                p.wait_scalar(comm)?;
            }
        }
        Ok(comm.now())
    });
    result.job.makespan
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_sim");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    for &ranks in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("blocking", ranks), &ranks, |b, &r| {
            b.iter(|| std::hint::black_box(run_steps(r, true)))
        });
        group.bench_with_input(BenchmarkId::new("nonblocking", ranks), &ranks, |b, &r| {
            b.iter(|| std::hint::black_box(run_steps(r, false)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
