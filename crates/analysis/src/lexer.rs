//! A hand-rolled Rust lexer: just enough of the language's lexical grammar
//! to walk real source reliably — nested block comments, strings in every
//! flavour (raw, byte, raw-byte), char literals vs. lifetimes, numbers with
//! exponents and range-ambiguous dots — without pulling in `syn`. The
//! workspace vendors every external dependency; the analyzer stays
//! dependency-free so it can never be the thing that rots.
//!
//! The token stream deliberately **keeps comments**: the rule engine reads
//! `// SAFETY:` obligations, per-site `lint:allow` waivers and the fixture
//! `// analysis-as:` directive out of them.

/// Token class. The analyzer needs lexical classes, not a grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `my_rank`, `r#type`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (distinct from char literals).
    Lifetime,
    /// Numeric literal (`3`, `0x1b3`, `1.0e-3`, `4usize`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `'\n'`, `b'a'`).
    Char,
    /// `// …` comment, doc comments included; text keeps the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled); text keeps the delimiters.
    BlockComment,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token with its 1-based source line (the line it **starts** on).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Source text. For [`TokKind::Lifetime`] the leading `'` is stripped.
    pub text: String,
}

impl Tok {
    /// Is this a (line or block) comment?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Kind-and-text equality shorthand used all over the rules.
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. The lexer never fails: malformed tails (an unterminated
/// string, say) are swallowed into the last token, which is the right
/// behaviour for an analyzer that must keep going.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    line,
                    text: chars[start..i].iter().collect(),
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    line: start_line,
                    text: chars[start..i].iter().collect(),
                });
                continue;
            }
        }
        // Raw strings / byte strings / raw identifiers, before plain idents:
        // r"…", r#"…"#, br"…", b"…", b'…', r#ident.
        if c == 'r' || c == 'b' {
            if let Some((tok, next, lines)) = lex_prefixed_literal(&chars, i, line) {
                i = next;
                line += lines;
                toks.push(tok);
                continue;
            }
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            let end = i.min(n);
            toks.push(Tok {
                kind: TokKind::Str,
                line: start_line,
                text: chars[start..end].iter().collect(),
            });
            continue;
        }
        if c == '\'' {
            let (tok, next) = lex_quote(&chars, i, line);
            i = next;
            toks.push(tok);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_base = false;
            let mut seen_dot = false;
            i += 1;
            while i < n {
                let d = chars[i];
                if d == '_' || d.is_ascii_alphanumeric() {
                    if d == 'x' || d == 'X' || d == 'o' || d == 'O' {
                        seen_base = true;
                    }
                    i += 1;
                } else if d == '.'
                    && !seen_dot
                    && !seen_base
                    && i + 1 < n
                    && chars[i + 1].is_ascii_digit()
                {
                    // `1.5` but not the range `0..n` or a method call `1.0.to_bits()`.
                    seen_dot = true;
                    i += 1;
                } else if (d == '+' || d == '-') && !seen_base && matches!(chars[i - 1], 'e' | 'E')
                {
                    // Exponent sign: `1e-3`.
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            line,
            text: c.to_string(),
        });
        i += 1;
    }
    toks
}

/// Lex the literals that start with `r` or `b`: raw strings (`r"…"`,
/// `r##"…"##`), byte strings (`b"…"`, `br"…"`), byte chars (`b'a'`) and raw
/// identifiers (`r#type`). Returns `(token, next_index, newlines_consumed)`,
/// or `None` when the `r`/`b` is just the start of an ordinary identifier.
fn lex_prefixed_literal(chars: &[char], i: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let n = chars.len();
    let mut j = i + 1;
    let mut raw = chars[i] == 'r';
    if chars[i] == 'b' && j < n {
        if chars[j] == '\'' {
            // b'x' byte char: reuse the quote lexer, then re-tag.
            let (tok, next) = lex_quote(chars, j, line);
            return Some((
                Tok {
                    kind: TokKind::Char,
                    line,
                    text: format!("b{}", tok.text),
                },
                next,
                0,
            ));
        }
        if chars[j] == 'r' {
            raw = true;
            j += 1;
        } else if chars[j] != '"' {
            return None;
        }
    }
    if raw {
        // Count hashes; then expect `"` (raw string) or ident (raw ident).
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            j += 1;
            let mut lines = 0u32;
            while j < n {
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break;
                    }
                }
                if chars[j] == '\n' {
                    lines += 1;
                }
                j += 1;
            }
            return Some((
                Tok {
                    kind: TokKind::Str,
                    line,
                    text: chars[i..j.min(n)].iter().collect(),
                },
                j,
                lines,
            ));
        }
        if hashes == 1 && j < n && is_ident_start(chars[j]) {
            // Raw identifier r#type: token text keeps the ident only.
            let start = j;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            return Some((
                Tok {
                    kind: TokKind::Ident,
                    line,
                    text: chars[start..j].iter().collect(),
                },
                j,
                0,
            ));
        }
        return None;
    }
    // b"…" byte string.
    if j < n && chars[j] == '"' {
        j += 1;
        let mut lines = 0u32;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '"' => {
                    j += 1;
                    break;
                }
                c => {
                    if c == '\n' {
                        lines += 1;
                    }
                    j += 1;
                }
            }
        }
        return Some((
            Tok {
                kind: TokKind::Str,
                line,
                text: chars[i..j.min(n)].iter().collect(),
            },
            j,
            lines,
        ));
    }
    None
}

/// Disambiguate `'` between a char literal and a lifetime:
/// `'\n'`/`'x'`/`'_'` are chars, `'a`/`'static`/`'_` (no closing quote) are
/// lifetimes.
fn lex_quote(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = chars.len();
    if i + 1 >= n {
        return (
            Tok {
                kind: TokKind::Punct,
                line,
                text: "'".into(),
            },
            i + 1,
        );
    }
    let c0 = chars[i + 1];
    if c0 == '\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < n {
            if chars[j] == '\\' {
                j += 2;
            } else if chars[j] == '\'' {
                j += 1;
                break;
            } else {
                j += 1;
            }
        }
        return (
            Tok {
                kind: TokKind::Char,
                line,
                text: chars[i..j.min(n)].iter().collect(),
            },
            j,
        );
    }
    if is_ident_start(c0) {
        let mut j = i + 1;
        while j < n && is_ident_continue(chars[j]) {
            j += 1;
        }
        if j < n && chars[j] == '\'' {
            // 'x' — a char literal.
            return (
                Tok {
                    kind: TokKind::Char,
                    line,
                    text: chars[i..=j].iter().collect(),
                },
                j + 1,
            );
        }
        // 'lifetime — no closing quote.
        return (
            Tok {
                kind: TokKind::Lifetime,
                line,
                text: chars[i + 1..j].iter().collect(),
            },
            j,
        );
    }
    // Something like ' ' or '('.
    if i + 2 < n && chars[i + 2] == '\'' {
        return (
            Tok {
                kind: TokKind::Char,
                line,
                text: chars[i..i + 3].iter().collect(),
            },
            i + 3,
        );
    }
    (
        Tok {
            kind: TokKind::Punct,
            line,
            text: "'".into(),
        },
        i + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let t = kinds("fn foo(x: &mut u8) -> u8 { x }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokKind::Ident, "foo".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == "&"));
    }

    #[test]
    fn line_comments_keep_text_and_lines() {
        let toks = lex("let a = 1; // SAFETY: fine\nlet b = 2;");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert!(c.text.contains("SAFETY: fine"));
        assert_eq!(c.line, 1);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert_eq!(toks[1].text, "fn");
    }

    #[test]
    fn block_comment_advances_line_numbers() {
        let toks = lex("/* a\nb\nc */ fn x() {}");
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn strings_with_escapes_and_embedded_slashes() {
        let toks = lex(r#"let s = "no // comment \" here"; fn f() {}"#);
        assert!(toks.iter().all(|t| t.kind != TokKind::LineComment));
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("no // comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"quote " inside"#; let t = 1;"###);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("quote"));
        assert!(toks.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn multiline_raw_string_counts_lines() {
        let toks = lex("let s = r\"a\nb\"; fn f() {}");
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "b'x'"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn static_lifetime_and_escaped_char() {
        let toks = lex(r"let s: &'static str = x; let c = '\''; let d = '\\';");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn underscore_char_and_anonymous_lifetime() {
        let toks = lex("let c = '_'; fn f(x: &'_ str) {}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'_'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "_"));
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "type"));
    }

    #[test]
    fn numbers_exponents_and_ranges() {
        let toks = lex("let a = 1.5e-3; for i in 0..n { x[i] = 0x1b3 + 4usize; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0", "0x1b3", "4usize"]);
        // The range dots survive as puncts.
        assert!(toks.iter().filter(|t| t.is(TokKind::Punct, ".")).count() >= 2);
    }

    #[test]
    fn float_method_call_does_not_eat_the_dot() {
        let toks = lex("let b = 1.0.to_bits();");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.0"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "to_bits"));
    }

    #[test]
    fn unicode_in_comments_and_strings() {
        let toks = lex("// ‖b‖ and √ε are fine\nlet x = \"π ≈ 3\"; fn f() {}");
        assert!(toks.iter().any(|t| t.text == "fn"));
        assert_eq!(toks[0].kind, TokKind::LineComment);
    }

    #[test]
    fn unterminated_string_is_swallowed() {
        let toks = lex("let s = \"oops");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
