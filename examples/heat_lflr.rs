//! Local-failure local-recovery for an explicit heat equation: a rank is
//! killed mid-run, a replacement is spawned, and the simulation finishes
//! with exactly the failure-free answer — compared against the global
//! checkpoint/restart baseline.
//!
//! Run with: `cargo run --example heat_lflr`

use resilience::lflr::{run_cpr, run_lflr, CprConfig};
use resilient_pde::{ExplicitHeat, HeatProblem};
use resilient_runtime::{FailureConfig, FailurePolicy, Runtime, RuntimeConfig};
use std::sync::Arc;

fn heat(steps: usize) -> ExplicitHeat {
    ExplicitHeat {
        problem: HeatProblem::stable(128, 1.0),
        steps,
        persist_interval: 5,
        work_per_step: 5e-3,
    }
}

fn main() {
    let ranks = 4;
    let steps = 50;
    let serial = HeatProblem::stable(128, 1.0).run_explicit(steps);

    // --- LFLR: kill rank 2 at t = 0.12 and recover locally ------------------
    let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
        FailurePolicy::ReplaceRank,
        vec![(2, 0.12)],
    ));
    let rt = Runtime::new(cfg);
    let app = heat(steps);
    let job = rt.run(ranks, move |comm| {
        let (report, field) = run_lflr(comm, &app)?;
        let global = app.gather(comm, &field)?;
        Ok((report, global))
    });
    println!("LFLR run: {} failure(s) injected", job.failures.len());
    let (report, field) = job
        .results
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 result");
    let max_diff = field
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  steps completed          : {}\n  recoveries (rank 0 view) : {}\n  steps re-executed        : {}\n  max |u_lflr - u_serial|  : {max_diff:.3e}",
        report.steps_completed, report.recoveries, report.steps_reexecuted
    );

    // --- CPR baseline: same failure, whole job restarts ---------------------
    let cpr_cfg = RuntimeConfig::fast().with_failures(FailureConfig {
        enabled: true,
        policy: FailurePolicy::AbortJob,
        mtbf_per_rank: f64::INFINITY,
        scheduled: vec![(2, 0.12)],
        max_failures: 1,
    });
    let cpr = run_cpr(
        &cpr_cfg,
        ranks,
        Arc::new(heat(steps)),
        &CprConfig {
            checkpoint_interval: 5,
            max_restarts: 4,
        },
    );
    println!(
        "\nCPR baseline: completed={}, job launches={}, total virtual time={:.3} s (vs LFLR {:.3} s)",
        cpr.completed,
        cpr.attempts,
        cpr.total_virtual_time,
        report.finished_at
    );
}
