//! Property-based tests for the runtime's data-distribution primitives and
//! collective semantics.

use proptest::prelude::*;
use resilient_runtime::{BlockDistribution, CartTopology, ReduceOp, Runtime, RuntimeConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Block distributions partition the index range exactly: counts sum to
    /// n, ranges are contiguous, and ownership is consistent with ranges.
    #[test]
    fn block_distribution_partitions_exactly(n in 0usize..500, p in 1usize..33) {
        let d = BlockDistribution::new(n, p);
        let total: usize = (0..p).map(|i| d.count(i)).sum();
        prop_assert_eq!(total, n);
        let mut next = 0;
        for part in 0..p {
            prop_assert_eq!(d.start(part), next);
            next += d.count(part);
        }
        for i in (0..n).step_by((n / 17).max(1)) {
            let owner = d.owner(i);
            prop_assert!(d.range(owner).contains(&i));
            let (part, local) = d.to_local(i);
            prop_assert_eq!(part, owner);
            prop_assert_eq!(d.start(part) + local, i);
        }
    }

    /// Cartesian neighbour relations are symmetric: if a lists b, b lists a.
    #[test]
    fn topology_neighbours_are_symmetric(px in 1usize..6, py in 1usize..6, periodic in any::<bool>()) {
        let t = CartTopology::grid2d(px, py, periodic);
        for r in 0..t.size() {
            for &nbr in &t.neighbors(r) {
                prop_assert!(
                    t.neighbors(nbr).contains(&r),
                    "rank {} lists {} but not vice versa", r, nbr
                );
            }
            prop_assert_eq!(t.rank_of(&t.coords(r)), r);
        }
    }

    /// Allreduce over the simulated runtime equals the serial reduction for
    /// arbitrary per-rank contributions, for every reduction operator.
    #[test]
    fn allreduce_matches_serial_reduction(
        ranks in 1usize..7,
        values in prop::collection::vec(-100.0f64..100.0, 7),
    ) {
        let rt = Runtime::new(RuntimeConfig::fast());
        let vals = values.clone();
        let results = rt.run(ranks, move |comm| {
            let mine = vals[comm.rank()];
            let sum = comm.allreduce_scalar(ReduceOp::Sum, mine)?;
            let min = comm.allreduce_scalar(ReduceOp::Min, mine)?;
            let max = comm.allreduce_scalar(ReduceOp::Max, mine)?;
            Ok((sum, min, max))
        }).unwrap_all();
        let expected_sum: f64 = values[..ranks].iter().sum();
        let expected_min = values[..ranks].iter().cloned().fold(f64::INFINITY, f64::min);
        let expected_max = values[..ranks].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (sum, min, max) in results {
            prop_assert!((sum - expected_sum).abs() < 1e-9);
            prop_assert_eq!(min, expected_min);
            prop_assert_eq!(max, expected_max);
        }
    }

    /// A scan (inclusive prefix reduction) on rank i equals the serial prefix
    /// sum of contributions 0..=i.
    #[test]
    fn scan_matches_prefix_sums(ranks in 1usize..6, values in prop::collection::vec(-10.0f64..10.0, 6)) {
        let rt = Runtime::new(RuntimeConfig::fast());
        let vals = values.clone();
        let results = rt.run(ranks, move |comm| {
            let mine = vals[comm.rank()];
            Ok((comm.rank(), comm.scan(ReduceOp::Sum, &[mine])?[0]))
        }).unwrap_all();
        for (rank, scanned) in results {
            let expected: f64 = values[..=rank].iter().sum();
            prop_assert!((scanned - expected).abs() < 1e-9);
        }
    }
}
