//! Backend-boundary bench: wall-clock cost of the collective path on the
//! two `CommBackend` implementations.
//!
//! Pins the per-iteration overhead a solver pays for each backend: the
//! virtual-time simulator's scheduler hop vs. the real-threads backend's
//! rendezvous (barrier + fixed-order fold) with zero emulated latency. Both
//! jobs run the identical 100-allreduce loop, so the measured time is pure
//! backend overhead, comparable across the two columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilient_runtime::{ReduceOp, Runtime, RuntimeConfig, ThreadConfig, ThreadRuntime};
use std::time::Duration;

const ALLREDUCES: usize = 100;

fn simulator_allreduces(ranks: usize) -> f64 {
    let rt = Runtime::new(RuntimeConfig::fast());
    let r = rt.run(ranks, move |comm| {
        let mut acc = 0.0;
        for _ in 0..ALLREDUCES {
            acc += comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
        }
        Ok(acc)
    });
    r.job.makespan
}

fn threaded_allreduces(ranks: usize) -> f64 {
    let rt = ThreadRuntime::new(ThreadConfig::fast());
    let r = rt.run(ranks, move |comm| {
        let mut acc = 0.0;
        for _ in 0..ALLREDUCES {
            acc += comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
        }
        Ok(acc)
    });
    r.job.makespan
}

fn bench_backend_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_overhead");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    for &ranks in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("simulator_allreduce_x100", ranks),
            &ranks,
            |b, &r| b.iter(|| std::hint::black_box(simulator_allreduces(r))),
        );
        group.bench_with_input(
            BenchmarkId::new("threaded_allreduce_x100", ranks),
            &ranks,
            |b, &r| b.iter(|| std::hint::black_box(threaded_allreduces(r))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backend_overhead);
criterion_main!(benches);
