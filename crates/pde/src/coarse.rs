//! Redundant coarse-model storage for implicit-method recovery (§III-C:
//! "storing a coarse model representation … that could be used to boot-strap
//! state recovery upon failure").
//!
//! Instead of persisting the full local field every interval, a rank can
//! persist a restricted (coarsened) copy at a fraction of the storage and
//! bandwidth cost; after a failure the replacement prolongates the coarse
//! copy back to the fine grid, recovering the state up to interpolation
//! (truncation-level) error, and the implicit solver re-converges from
//! there.

/// Restrict a fine field to a coarse one by averaging groups of `factor`
/// adjacent values (the last group may be shorter).
pub fn restrict(fine: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor >= 1, "coarsening factor must be at least 1");
    fine.chunks(factor)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Prolongate a coarse field back to `fine_len` values by piecewise-linear
/// interpolation of the coarse cell centres.
pub fn prolongate(coarse: &[f64], factor: usize, fine_len: usize) -> Vec<f64> {
    assert!(factor >= 1);
    if coarse.is_empty() {
        return vec![0.0; fine_len];
    }
    let mut fine = Vec::with_capacity(fine_len);
    for i in 0..fine_len {
        // Position of fine point i in coarse-cell coordinates.
        let pos = i as f64 / factor as f64 - 0.5 + 0.5 / factor as f64;
        let lo = pos.floor();
        let frac = pos - lo;
        let lo_idx = lo.max(0.0) as usize;
        let hi_idx = (lo_idx + 1).min(coarse.len() - 1);
        let lo_idx = lo_idx.min(coarse.len() - 1);
        let v = if pos < 0.0 {
            coarse[0]
        } else {
            coarse[lo_idx] * (1.0 - frac) + coarse[hi_idx] * frac
        };
        fine.push(v);
    }
    fine
}

/// Relative L2 error introduced by a restrict-then-prolongate round trip —
/// the "recovery error" of the coarse-model strategy for a given field.
pub fn round_trip_error(fine: &[f64], factor: usize) -> f64 {
    let coarse = restrict(fine, factor);
    let back = prolongate(&coarse, factor, fine.len());
    let num: f64 = fine.iter().zip(&back).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = fine.iter().map(|a| a * a).sum();
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restrict_averages_groups() {
        let fine = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(restrict(&fine, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(restrict(&fine, 1), fine.to_vec());
        assert_eq!(restrict(&fine, 10), vec![5.0]);
    }

    #[test]
    fn factor_one_round_trip_is_exact() {
        let fine: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!(round_trip_error(&fine, 1) < 1e-15);
    }

    #[test]
    fn prolongate_preserves_constants() {
        let coarse = vec![4.0; 5];
        let fine = prolongate(&coarse, 3, 15);
        assert_eq!(fine.len(), 15);
        for v in fine {
            assert!((v - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_error_grows_with_coarsening() {
        let fine: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) / 256.0).sin())
            .collect();
        let e2 = round_trip_error(&fine, 2);
        let e4 = round_trip_error(&fine, 4);
        let e8 = round_trip_error(&fine, 8);
        assert!(
            e2 < e4 && e4 < e8,
            "coarser models recover less accurately: {e2} {e4} {e8}"
        );
        assert!(e8 < 0.05, "even 8x coarsening recovers a smooth field well");
    }

    #[test]
    fn empty_coarse_gives_zeros() {
        assert_eq!(prolongate(&[], 2, 4), vec![0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn zero_factor_panics() {
        restrict(&[1.0], 0);
    }
}
