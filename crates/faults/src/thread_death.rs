//! Process-death injection for the real-threads backend.
//!
//! The virtual-time simulator injects fail-stop process failures from a
//! schedule carried in its own configuration
//! (`FailureConfig::scheduled`). The real-threads backend instead asks an
//! externally supplied [`DeathInjector`] at every failure point; this module
//! provides the standard implementation: a deterministic per-rank plan of
//! *kill triggers*, each pinned to a world rank's original incarnation so a
//! planned death can never replay on the replacement thread.
//!
//! Triggers come in two flavours:
//!
//! * [`KillTrigger::AtCollective`] — die when the rank has completed the
//!   given number of collectives. This is the deterministic progress axis
//!   (the threaded analogue of "die at virtual time *t*"): it hits the same
//!   algorithmic location on every run regardless of host scheduling, which
//!   is what kill-mid-solve tests and the backend-parity experiments need.
//! * [`KillTrigger::AfterSeconds`] — die at the first failure point after
//!   the given wall-clock time, for asynchronous-failure campaigns where
//!   the strike location is *supposed* to be scheduling-dependent
//!   (Heroux's faults-are-asynchronous premise).

use std::sync::Mutex;

use resilient_runtime::{DeathContext, DeathInjector};

/// When a planned rank death fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KillTrigger {
    /// Die once the rank's completed-collective count reaches this value
    /// (deterministic across runs).
    AtCollective(u64),
    /// Die at the first failure point after this many wall-clock seconds
    /// since job start (scheduling-dependent, deliberately).
    AfterSeconds(f64),
}

/// A deterministic plan of rank deaths for a [`ThreadRuntime`] job. Each
/// entry is pinned to a world rank *and an incarnation* — the plain
/// builders pin incarnation 0 (a planned death never replays on the
/// replacement thread), while campaign schedules can pin later
/// incarnations to kill a replacement mid-recovery.
///
/// [`ThreadRuntime`]: resilient_runtime::ThreadRuntime
///
/// ```
/// use resilient_faults::thread_death::ThreadDeathPlan;
/// use resilient_runtime::{ThreadConfig, ThreadRuntime};
/// use std::sync::Arc;
///
/// // Rank 1 dies (for real — a panic unwind) at its 5th collective.
/// let plan = Arc::new(ThreadDeathPlan::new().kill_at_collective(1, 5));
/// let runtime = ThreadRuntime::new(ThreadConfig::fast()).with_injector(plan);
/// ```
#[derive(Debug, Default)]
pub struct ThreadDeathPlan {
    /// `(world_rank, incarnation, trigger, fired)` entries; each fires at
    /// most once, only on the pinned incarnation.
    kills: Mutex<Vec<(usize, u64, KillTrigger, bool)>>,
}

impl ThreadDeathPlan {
    /// An empty plan (no rank ever dies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan `rank`'s death at its `nth` completed collective (original
    /// incarnation only).
    pub fn kill_at_collective(self, rank: usize, nth: u64) -> Self {
        self.kill_incarnation_at_collective(rank, 0, nth)
    }

    /// Plan the death of `rank`'s `incarnation`-th process at its `nth`
    /// completed collective. Incarnation 0 is the original thread;
    /// incarnation 1 the first replacement — pinning 1 kills the
    /// replacement *during* its recovery re-execution, the compound
    /// failure single-kill plans cannot express. Collective counts are
    /// per-lifetime (a replacement starts again from zero).
    pub fn kill_incarnation_at_collective(self, rank: usize, incarnation: u64, nth: u64) -> Self {
        self.kills.lock().expect("death plan lock poisoned").push((
            rank,
            incarnation,
            KillTrigger::AtCollective(nth),
            false,
        ));
        self
    }

    /// Plan `rank`'s death at the first failure point after `seconds` of
    /// wall-clock time (original incarnation only).
    pub fn kill_after_seconds(self, rank: usize, seconds: f64) -> Self {
        self.kills.lock().expect("death plan lock poisoned").push((
            rank,
            0,
            KillTrigger::AfterSeconds(seconds),
            false,
        ));
        self
    }

    /// Number of kills that have fired so far.
    pub fn fired(&self) -> usize {
        self.kills
            .lock()
            .expect("death plan lock poisoned")
            .iter()
            .filter(|(_, _, _, fired)| *fired)
            .count()
    }
}

impl DeathInjector for ThreadDeathPlan {
    fn should_die(&self, ctx: &DeathContext) -> bool {
        let mut kills = self.kills.lock().expect("death plan lock poisoned");
        for (rank, incarnation, trigger, fired) in kills.iter_mut() {
            // Each entry is pinned to one incarnation: an entry for the
            // original thread can never replay on its replacement, and a
            // campaign entry for incarnation 1 waits for the replacement.
            if *fired || *rank != ctx.world_rank || *incarnation != ctx.incarnation {
                continue;
            }
            let due = match *trigger {
                KillTrigger::AtCollective(nth) => ctx.collectives >= nth,
                KillTrigger::AfterSeconds(seconds) => ctx.elapsed >= seconds,
            };
            if due {
                *fired = true;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_runtime::{ReduceOp, ThreadConfig, ThreadRuntime};
    use std::sync::Arc;

    #[test]
    fn kill_fires_once_and_only_on_incarnation_zero() {
        let plan = Arc::new(ThreadDeathPlan::new().kill_at_collective(1, 2));
        let rt = ThreadRuntime::new(ThreadConfig::fast()).with_injector(plan.clone() as _);
        let r = rt.run(2, |comm| {
            let mut step = if comm.is_replacement() {
                comm.recovery_rendezvous(f64::INFINITY)?.agreed as usize
            } else {
                0
            };
            while step < 6 {
                match comm.allreduce_scalar(ReduceOp::Sum, 1.0) {
                    Ok(_) => step += 1,
                    Err(e) if e.is_failure() => {
                        step = comm.recovery_rendezvous(step as f64)?.agreed as usize;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(comm.incarnation())
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1, "the plan fires exactly once");
        assert_eq!(plan.fired(), 1);
        let incs = r.unwrap_all();
        assert_eq!(incs[1], 1, "rank 1 finishes as its replacement");
    }

    #[test]
    fn incarnation_pinned_kill_waits_for_the_replacement() {
        // Rank 1's original dies at its 2nd collective; its *replacement*
        // (incarnation 1) dies again at its own 2nd collective. The second
        // replacement (incarnation 2) finishes the job.
        let plan = Arc::new(
            ThreadDeathPlan::new()
                .kill_at_collective(1, 2)
                .kill_incarnation_at_collective(1, 1, 2),
        );
        let rt = ThreadRuntime::new(ThreadConfig::fast()).with_injector(plan.clone() as _);
        let r = rt.run(2, |comm| {
            let mut step = if comm.is_replacement() {
                comm.recovery_rendezvous(f64::INFINITY)?.agreed as usize
            } else {
                0
            };
            while step < 8 {
                match comm.allreduce_scalar(ReduceOp::Sum, 1.0) {
                    Ok(_) => step += 1,
                    Err(e) if e.is_failure() => {
                        step = comm.recovery_rendezvous(step as f64)?.agreed as usize;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(comm.incarnation())
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 2, "both pinned kills fire");
        assert_eq!(plan.fired(), 2);
        let incs = r.unwrap_all();
        assert_eq!(incs[1], 2, "rank 1 finishes as its second replacement");
    }

    #[test]
    fn empty_plan_never_kills() {
        let plan = Arc::new(ThreadDeathPlan::new());
        let rt = ThreadRuntime::new(ThreadConfig::fast()).with_injector(plan);
        let r = rt.run(3, |comm| comm.allreduce_scalar(ReduceOp::Sum, 1.0));
        assert!(r.all_ok());
        assert!(r.failures.is_empty());
    }

    #[test]
    fn wall_clock_trigger_fires_after_deadline() {
        let plan = Arc::new(ThreadDeathPlan::new().kill_after_seconds(0, 0.0));
        let rt = ThreadRuntime::new(ThreadConfig::fast()).with_injector(plan.clone() as _);
        let r = rt.run(2, |comm| {
            let mut done = 0;
            while done < 4 {
                match comm.barrier() {
                    Ok(()) => done += 1,
                    Err(e) if e.is_failure() => {
                        comm.recovery_rendezvous(0.0)?;
                        done = 0;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].rank, 0);
    }
}
