//! Composed scenario C2 — FT-GMRES × ABFT-checked outer products
//! (SRP × ABFT).
//!
//! Plain FT-GMRES validates *inner* (unreliable-tier) results but trusts
//! its outer iteration blindly: a bit flip in an outer SpMV silently
//! corrupts the Krylov basis. The composed preset verifies every outer
//! product against Huang–Abraham column-sum checksums and rolls the cycle
//! back on detection. This experiment injects one exponent-bit flip into a
//! chosen outer product and compares plain vs. ABFT-checked FT-GMRES,
//! reporting the ABFT policy's detections and overhead.
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::kernel::compose::ft_gmres_abft;
use resilience::prelude::*;
use resilience::srp::ft_gmres_with_policies;
use resilient_bench::{fmt_g, Table};
use resilient_linalg::poisson2d;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nx = if smoke { 8 } else { 16 };
    let a = poisson2d(nx, nx);
    let n = a.nrows();
    let b = vec![1.0; n];
    let cfg = FtGmresConfig {
        outer: SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(if smoke { 40 } else { 80 })
            .with_restart(20),
        fault_rate: 1e-3,
        ..FtGmresConfig::default()
    };
    let abft_tol = 1e-9;

    let mut table = Table::new(
        &format!(
            "C2: FT-GMRES x ABFT-checked outer SpMV, 2-D Poisson {nx}x{nx}, inner fault rate {:.0e}",
            cfg.fault_rate
        ),
        &[
            "scenario",
            "converged",
            "true relres",
            "outer iters",
            "abft detects",
            "restarts",
            "check kflops",
            "overhead %",
        ],
    );

    let plans = [
        ("clean outer", None),
        (
            "bit-61 flip in outer SpMV #2",
            Some(InjectionPlan {
                at_application: 2,
                target: FaultTarget::Element(n / 3),
                bit: Some(61),
            }),
        ),
        (
            "bit-62 flip in outer SpMV #4",
            Some(InjectionPlan {
                at_application: 4,
                target: FaultTarget::Element(n / 2),
                bit: Some(62),
            }),
        ),
    ];

    for (label, plan) in plans {
        for abft in [false, true] {
            let faulty = FaultyOperator::new(&a, plan, 17);
            let (out, _ft_report, detections, restarts, check_flops) = if abft {
                let (out, ft, abft_report) = ft_gmres_abft(&faulty, &a, &b, &cfg, abft_tol);
                (
                    out,
                    ft,
                    abft_report.abft.detections,
                    abft_report.policy_restarts,
                    abft_report.abft.check_flops,
                )
            } else {
                // Same outer/inner split as the ABFT run (outer applies the
                // faulty operator, inner solves corrupt at the configured
                // rate against the clean matrix), just without the checks.
                let (out, ft, _restarts) =
                    ft_gmres_with_policies(&faulty, &a, &b, &cfg, &mut PolicyStack::empty());
                (out, ft, 0, 0, 0)
            };
            let err = true_relative_residual(&a, &b, &out.x);
            table.row(vec![
                format!("{label}{}", if abft { " + ABFT" } else { "" }),
                out.converged().to_string(),
                fmt_g(err),
                out.iterations.to_string(),
                detections.to_string(),
                restarts.to_string(),
                fmt_g(check_flops as f64 / 1e3),
                fmt_g(100.0 * check_flops as f64 / out.flops.max(1) as f64),
            ]);
        }
    }
    table.emit("composed_ftgmres_abft");
}
