//! The collective rendezvous engine.
//!
//! All collective operations — blocking, nonblocking, and the recovery
//! rendezvous — are built on a single primitive: a keyed *slot* that every
//! participating rank posts a contribution into. When the last participant
//! arrives the slot computes a completion time in virtual time (the maximum
//! of the participants' entry times plus the collective's communication
//! cost); each participant then retrieves the full contribution list and the
//! completion time and computes its own result locally.
//!
//! Keeping the engine dumb (it never interprets the data) keeps one code path
//! for allreduce, broadcast, gather, scan, barrier and the recovery
//! agreement, which is exactly the set MPI-3 exposes and the paper's RBSP
//! model relies on.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Duration;

use crate::error::{Result, RuntimeError};
use crate::health::HealthBoard;

/// Kind discriminator for slot keys, separating the ordinary collective
/// sequence space from recovery rendezvous and shrink agreements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// Ordinary collective posted by application code.
    Collective,
    /// Recovery rendezvous after a failure (keyed by generation).
    Recovery,
    /// Shrink agreement (keyed by generation).
    Shrink,
}

/// Unique identifier of one collective instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotKey {
    /// Communication epoch the collective belongs to.
    pub epoch: u64,
    /// Communicator id (0 = world; shrunk/split communicators get fresh ids).
    pub comm_id: u64,
    /// Kind of slot.
    pub kind: SlotKind,
    /// Sequence number within (epoch, comm_id, kind).
    pub seq: u64,
}

/// A completed or in-progress collective instance.
struct Slot {
    expected: usize,
    contributions: Vec<Option<Vec<f64>>>,
    entry_times: Vec<f64>,
    /// Completion virtual time, set when the last participant posts.
    completion: Option<f64>,
    /// Extra cost (already folded into `completion`).
    cost: f64,
    /// Number of participants that have retrieved the result.
    retrieved: usize,
}

impl Slot {
    fn new(expected: usize) -> Self {
        Self {
            expected,
            contributions: vec![None; expected],
            entry_times: Vec::with_capacity(expected),
            completion: None,
            cost: 0.0,
            retrieved: 0,
        }
    }

    fn arrived(&self) -> usize {
        self.entry_times.len()
    }
}

/// Result of a completed collective, as seen by one participant.
#[derive(Debug, Clone)]
pub struct CollectiveResult {
    /// Contributions of every participant, indexed by participant index
    /// (rank index within the participating group).
    pub contributions: Vec<Vec<f64>>,
    /// Virtual time at which the collective completes.
    pub completion_time: f64,
}

/// The shared engine holding in-flight collective slots for a job.
pub struct CollectiveEngine {
    slots: Mutex<HashMap<SlotKey, Slot>>,
    signal: Condvar,
}

impl Default for CollectiveEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectiveEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            signal: Condvar::new(),
        }
    }

    /// Post a contribution to the slot identified by `key`.
    ///
    /// * `index` — the caller's participant index (0-based within the group).
    /// * `expected` — total number of participants.
    /// * `entry_time` — caller's virtual time at the post.
    /// * `cost` — communication cost to fold into the completion time; the
    ///   value provided by the *last* arriving participant wins, which is
    ///   fine because all participants compute it from the same model.
    ///
    /// Posting is nonblocking; completion is observed via [`wait`](Self::wait).
    pub fn post(
        &self,
        key: SlotKey,
        index: usize,
        expected: usize,
        contribution: Vec<f64>,
        entry_time: f64,
        cost: f64,
    ) -> Result<()> {
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| Slot::new(expected));
        if slot.expected != expected {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!(
                    "slot {key:?}: expected {} participants, caller believes {}",
                    slot.expected, expected
                ),
            });
        }
        if index >= slot.expected {
            return Err(RuntimeError::InvalidRank {
                rank: index,
                size: slot.expected,
            });
        }
        if slot.contributions[index].is_some() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("slot {key:?}: participant {index} posted twice"),
            });
        }
        slot.contributions[index] = Some(contribution);
        slot.entry_times.push(entry_time);
        slot.cost = cost;
        if slot.arrived() == slot.expected {
            let max_entry = slot.entry_times.iter().copied().fold(0.0, f64::max);
            slot.completion = Some(max_entry + slot.cost);
            drop(slots);
            self.signal.notify_all();
        }
        Ok(())
    }

    /// Has the slot completed (all participants posted)?
    pub fn is_complete(&self, key: &SlotKey) -> bool {
        self.slots
            .lock()
            .get(key)
            .map(|s| s.completion.is_some())
            .unwrap_or(false)
    }

    /// Block until the slot completes, a failure interrupts the wait, or the
    /// health check fails. On success returns the full contribution list and
    /// the completion time. Each participant must call this exactly once; the
    /// slot is freed when the last participant has retrieved it.
    ///
    /// `acked_generation` is the failure generation the caller has already
    /// recovered from; newer failures interrupt the wait with
    /// [`RuntimeError::Revoked`].
    pub fn wait(
        &self,
        key: SlotKey,
        health: &HealthBoard,
        acked_generation: u64,
    ) -> Result<CollectiveResult> {
        let mut slots = self.slots.lock();
        loop {
            // Completion wins over failure notification: if every participant
            // posted, the collective logically completed and its result is
            // delivered even when a failure was recorded concurrently — the
            // *next* operation reports the failure instead. Checking health
            // first would let real-time interleaving decide whether a rank
            // sees the result or `Revoked`, so survivors of the same failure
            // could disagree on which operation failed and deadlock in
            // mismatched recovery collectives.
            if let Some(slot) = slots.get_mut(&key) {
                if let Some(completion) = slot.completion {
                    let contributions: Vec<Vec<f64>> = slot
                        .contributions
                        .iter()
                        .map(|c| c.clone().unwrap_or_default())
                        .collect();
                    slot.retrieved += 1;
                    if slot.retrieved >= slot.expected {
                        slots.remove(&key);
                    }
                    return Ok(CollectiveResult {
                        contributions,
                        completion_time: completion,
                    });
                }
            }
            health.check(acked_generation)?;
            self.signal.wait_for(&mut slots, Duration::from_millis(20));
        }
    }

    /// Wake every waiter so they can re-check health (called on failure).
    pub fn interrupt(&self) {
        self.signal.notify_all();
    }

    /// Drop every slot belonging to an epoch older than `epoch` (called at
    /// the end of a recovery rendezvous so stale collectives cannot leak).
    pub fn purge_older_than(&self, epoch: u64) {
        self.slots
            .lock()
            .retain(|k, _| k.epoch >= epoch || k.kind != SlotKind::Collective);
    }

    /// Number of in-flight slots (diagnostics / tests).
    pub fn in_flight(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FailurePolicy;
    use std::sync::Arc;
    use std::thread;

    fn key(seq: u64) -> SlotKey {
        SlotKey {
            epoch: 0,
            comm_id: 0,
            kind: SlotKind::Collective,
            seq,
        }
    }

    #[test]
    fn single_participant_completes_immediately() {
        let engine = CollectiveEngine::new();
        let health = HealthBoard::new(1, FailurePolicy::AbortJob);
        engine.post(key(0), 0, 1, vec![3.0], 1.0, 0.5).unwrap();
        let r = engine.wait(key(0), &health, 0).unwrap();
        assert_eq!(r.contributions, vec![vec![3.0]]);
        assert!((r.completion_time - 1.5).abs() < 1e-15);
        assert_eq!(engine.in_flight(), 0, "slot must be freed after retrieval");
    }

    #[test]
    fn completion_time_is_max_entry_plus_cost() {
        let engine = Arc::new(CollectiveEngine::new());
        let health = Arc::new(HealthBoard::new(3, FailurePolicy::AbortJob));
        let mut handles = Vec::new();
        for rank in 0..3usize {
            let engine = Arc::clone(&engine);
            let health = Arc::clone(&health);
            handles.push(thread::spawn(move || {
                let entry = 1.0 + rank as f64; // entries 1.0, 2.0, 3.0
                engine
                    .post(key(7), rank, 3, vec![rank as f64], entry, 0.25)
                    .unwrap();
                engine.wait(key(7), &health, 0).unwrap()
            }));
        }
        for h in handles {
            let r = h.join().unwrap();
            assert!((r.completion_time - 3.25).abs() < 1e-12);
            assert_eq!(r.contributions.len(), 3);
            assert_eq!(r.contributions[2], vec![2.0]);
        }
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn mismatched_expected_count_is_error() {
        let engine = CollectiveEngine::new();
        engine.post(key(1), 0, 2, vec![], 0.0, 0.0).unwrap();
        let err = engine.post(key(1), 1, 3, vec![], 0.0, 0.0).unwrap_err();
        assert!(matches!(err, RuntimeError::CollectiveMismatch { .. }));
    }

    #[test]
    fn double_post_is_error() {
        let engine = CollectiveEngine::new();
        engine.post(key(2), 0, 2, vec![], 0.0, 0.0).unwrap();
        let err = engine.post(key(2), 0, 2, vec![], 0.0, 0.0).unwrap_err();
        assert!(matches!(err, RuntimeError::CollectiveMismatch { .. }));
    }

    #[test]
    fn out_of_range_index_is_error() {
        let engine = CollectiveEngine::new();
        let err = engine.post(key(3), 5, 2, vec![], 0.0, 0.0).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::InvalidRank { rank: 5, size: 2 }
        ));
    }

    #[test]
    fn wait_interrupted_by_failure() {
        let engine = Arc::new(CollectiveEngine::new());
        let health = Arc::new(HealthBoard::new(2, FailurePolicy::ReplaceRank));
        engine.post(key(4), 0, 2, vec![], 0.0, 0.0).unwrap();
        let e2 = Arc::clone(&engine);
        let h2 = Arc::clone(&health);
        let waiter = thread::spawn(move || e2.wait(key(4), &h2, 0));
        thread::sleep(Duration::from_millis(30));
        // Rank 1 fails instead of posting; the waiter must be released with a
        // Revoked error.
        health.record_failure(1, 0, 5.0);
        engine.interrupt();
        let res = waiter.join().unwrap();
        assert!(matches!(res, Err(RuntimeError::Revoked { .. })));
    }

    #[test]
    fn completed_slot_wins_over_concurrent_failure() {
        // Regression for a deadlock: if every participant posted before a
        // failure was recorded, wait() must deliver the completed result —
        // not Revoked — on every rank, so survivors stay in lockstep about
        // *which* operation failed.
        let engine = CollectiveEngine::new();
        let health = HealthBoard::new(3, FailurePolicy::Shrink);
        engine.post(key(5), 0, 2, vec![1.0], 0.0, 0.0).unwrap();
        engine.post(key(5), 1, 2, vec![2.0], 0.0, 0.0).unwrap();
        // A third rank (not part of this collective) dies after completion.
        health.record_failure(2, 0, 1.0);
        let r = engine.wait(key(5), &health, 0).unwrap();
        assert_eq!(r.contributions, vec![vec![1.0], vec![2.0]]);
        let r2 = engine.wait(key(5), &health, 0).unwrap();
        assert_eq!(r2.contributions.len(), 2);
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn purge_keeps_recovery_slots() {
        let engine = CollectiveEngine::new();
        engine.post(key(0), 0, 2, vec![], 0.0, 0.0).unwrap();
        let rkey = SlotKey {
            epoch: 0,
            comm_id: 0,
            kind: SlotKind::Recovery,
            seq: 1,
        };
        engine.post(rkey, 0, 2, vec![], 0.0, 0.0).unwrap();
        engine.purge_older_than(1);
        assert_eq!(
            engine.in_flight(),
            1,
            "collective slot purged, recovery slot kept"
        );
    }

    #[test]
    fn is_complete_tracks_state() {
        let engine = CollectiveEngine::new();
        assert!(!engine.is_complete(&key(9)));
        engine.post(key(9), 0, 2, vec![], 0.0, 0.0).unwrap();
        assert!(!engine.is_complete(&key(9)));
        engine.post(key(9), 1, 2, vec![], 0.0, 0.0).unwrap();
        assert!(engine.is_complete(&key(9)));
    }
}
