//! FT-GMRES: fault-tolerant GMRES via selective reliability (§III-D),
//! following Bridges, Ferreira, Heroux & Hoemmen, "Fault-tolerant linear
//! solvers via selective reliability" (2012).
//!
//! Structure:
//!
//! * the **outer** iteration is a flexible GMRES run entirely in *reliable*
//!   mode (its SpMVs, orthogonalisation and bookkeeping are never corrupted,
//!   and are charged the reliable cost factor);
//! * the **inner** "preconditioner" is a whole GMRES solve executed against
//!   an operator living in *unreliable* mode — most of the arithmetic, and
//!   therefore most of the cost, is spent here at the cheap rate;
//! * whatever the inner solve returns is validated and, if finite, used as a
//!   flexible subspace vector. A corrupted inner result costs outer
//!   iterations, never correctness.

use resilient_faults::memory::{Reliability, ReliabilityModel};

use super::reliability::{SrpCostLedger, UnreliableOperator};
use crate::kernel::{PolicyStack, SerialSpace};
use crate::solvers::common::{Operator, SolveOptions, SolveOutcome};
use crate::solvers::fgmres::{fgmres_with_policies, FgmresReport, FlexiblePreconditioner};
use crate::solvers::gmres::gmres;

/// Configuration of the FT-GMRES inner/outer split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtGmresConfig {
    /// Outer (reliable) solve options: tolerance is the solve tolerance.
    pub outer: SolveOptions,
    /// Inner (unreliable) iterations per outer step.
    pub inner_iters: usize,
    /// Inner relative-residual tolerance (usually loose, e.g. 1e-2).
    pub inner_tol: f64,
    /// Per-element corruption probability while executing in unreliable mode.
    pub fault_rate: f64,
    /// Cost model for the reliable tier.
    pub reliability: ReliabilityModel,
    /// RNG seed for the unreliable-mode corruption stream.
    pub seed: u64,
}

impl Default for FtGmresConfig {
    fn default() -> Self {
        Self {
            outer: SolveOptions::default().with_restart(30).with_max_iters(60),
            inner_iters: 20,
            inner_tol: 1e-2,
            fault_rate: 0.0,
            reliability: ReliabilityModel::default(),
            seed: 0xF7,
        }
    }
}

/// Report of an FT-GMRES run.
#[derive(Debug, Clone, Default)]
pub struct FtGmresReport {
    /// Flexible-GMRES level report (inner applications, rejected results).
    pub outer: FgmresReport,
    /// Cost ledger split by reliability tier.
    pub ledger: SrpCostLedger,
    /// Corrupted elements produced by the unreliable tier.
    pub corruptions: u64,
    /// Total inner iterations across all inner solves.
    pub inner_iterations: usize,
}

struct UnreliableInner<'a, O: Operator + ?Sized> {
    op: UnreliableOperator<'a, O>,
    opts: SolveOptions,
    ledger: SrpCostLedger,
    inner_iterations: usize,
}

impl<'a, O: Operator + ?Sized> FlexiblePreconditioner for UnreliableInner<'a, O> {
    fn apply(&mut self, v: &[f64]) -> Vec<f64> {
        let out = gmres(&self.op, v, None, &self.opts);
        self.ledger.charge(Reliability::Unreliable, out.flops);
        self.inner_iterations += out.iterations;
        out.x
    }
    fn name(&self) -> &'static str {
        "unreliable-inner-gmres"
    }
}

/// Solve `A·x = b` with FT-GMRES. The *clean* operator `a` is used for the
/// reliable outer iteration; the inner solves run against an unreliable view
/// of the same operator with the configured fault rate.
pub fn ft_gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    cfg: &FtGmresConfig,
) -> (SolveOutcome, FtGmresReport) {
    let (out, report, _restarts) = ft_gmres_with_policies(a, a, b, cfg, &mut PolicyStack::empty());
    (out, report)
}

/// FT-GMRES with an explicit resilience-policy stack guarding the *outer*
/// (reliable-tier) iteration — the composable form behind
/// [`crate::kernel::compose::ft_gmres_abft`]. `outer` is the operator the
/// reliable outer iteration applies; the unreliable inner solves run
/// against an [`UnreliableOperator`] view of `inner_source` (pass the same
/// operator twice for the classic configuration). Returns the outcome, the
/// FT-GMRES report and the number of policy-triggered outer-cycle restarts.
pub fn ft_gmres_with_policies<'a, O: Operator + ?Sized, I: Operator + ?Sized>(
    outer: &'a O,
    inner_source: &I,
    b: &[f64],
    cfg: &FtGmresConfig,
    policies: &mut PolicyStack<'_, SerialSpace<'a, O>>,
) -> (SolveOutcome, FtGmresReport, usize) {
    let inner_opts = SolveOptions::default()
        .with_tol(cfg.inner_tol)
        .with_max_iters(cfg.inner_iters)
        .with_restart(cfg.inner_iters.max(1));
    let mut inner = UnreliableInner {
        op: UnreliableOperator::new(inner_source, cfg.fault_rate, cfg.seed),
        opts: inner_opts,
        ledger: SrpCostLedger::default(),
        inner_iterations: 0,
    };
    let ((out, outer_report), restarts) =
        fgmres_with_policies(outer, &mut inner, b, None, &cfg.outer, policies);
    let mut ledger = inner.ledger.clone();
    // The outer iteration's own arithmetic ran in reliable mode.
    ledger.charge(Reliability::Reliable, out.flops);
    let report = FtGmresReport {
        outer: outer_report,
        corruptions: inner.op.corruptions(),
        inner_iterations: inner.inner_iterations,
        ledger,
    };
    (out, report, restarts)
}

/// The all-unreliable baseline: plain GMRES run directly against the
/// unreliable operator (what an application does today if the machine stops
/// guaranteeing reliable execution). Returns the outcome, the cost ledger
/// and the number of corruptions.
pub fn unreliable_gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    opts: &SolveOptions,
    fault_rate: f64,
    seed: u64,
) -> (SolveOutcome, SrpCostLedger, u64) {
    let op = UnreliableOperator::new(a, fault_rate, seed);
    let out = gmres(&op, b, None, opts);
    let mut ledger = SrpCostLedger::default();
    ledger.charge(Reliability::Unreliable, out.flops);
    let corruptions = op.corruptions();
    (out, ledger, corruptions)
}

/// The all-reliable baseline: plain GMRES on the clean operator, every FLOP
/// charged at the reliable rate.
pub fn reliable_gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    opts: &SolveOptions,
) -> (SolveOutcome, SrpCostLedger) {
    let out = gmres(a, b, opts_x0_none(), opts);
    let mut ledger = SrpCostLedger::default();
    ledger.charge(Reliability::Reliable, out.flops);
    (out, ledger)
}

fn opts_x0_none() -> Option<&'static [f64]> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::true_relative_residual;
    use resilient_linalg::poisson2d;

    #[test]
    fn fault_free_ft_gmres_converges() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let cfg = FtGmresConfig {
            outer: SolveOptions::default().with_tol(1e-8).with_max_iters(40),
            ..FtGmresConfig::default()
        };
        let (out, report) = ft_gmres(&a, &b, &cfg);
        assert!(out.converged());
        assert_eq!(report.corruptions, 0);
        assert!(report.inner_iterations > 0);
        // Most raw FLOPs must be in the cheap tier — that is the whole point.
        assert!(
            report.ledger.reliable_fraction() < 0.5,
            "reliable fraction {}",
            report.ledger.reliable_fraction()
        );
    }

    #[test]
    fn ft_gmres_survives_high_fault_rate() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let cfg = FtGmresConfig {
            outer: SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(80)
                .with_restart(40),
            fault_rate: 2e-3,
            ..FtGmresConfig::default()
        };
        let (out, report) = ft_gmres(&a, &b, &cfg);
        assert!(
            report.corruptions > 0,
            "faults must actually have been injected"
        );
        assert!(
            out.converged(),
            "FT-GMRES must converge despite inner corruption"
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-7);
    }

    #[test]
    fn unreliable_baseline_struggles_at_the_same_rate() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let opts = SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(600)
            .with_restart(40);
        let (out, _ledger, corruptions) = unreliable_gmres(&a, &b, &opts, 2e-3, 0xF7);
        // At this corruption rate an unprotected GMRES usually fails to reach
        // the tolerance or returns a wrong answer; either way the *verified*
        // residual must be worse than what FT-GMRES achieves.
        let cfg = FtGmresConfig {
            outer: SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(80)
                .with_restart(40),
            fault_rate: 2e-3,
            ..FtGmresConfig::default()
        };
        let (ft_out, _) = ft_gmres(&a, &b, &cfg);
        let unreliable_err = true_relative_residual(&a, &b, &out.x);
        let ft_err = true_relative_residual(&a, &b, &ft_out.x);
        assert!(corruptions > 0);
        assert!(
            !unreliable_err.is_finite()
                || unreliable_err > ft_err
                || out.iterations > ft_out.iterations,
            "unreliable: err={unreliable_err} iters={}; ft: err={ft_err} iters={}",
            out.iterations,
            ft_out.iterations
        );
    }

    #[test]
    fn reliable_baseline_costs_more_per_flop() {
        let a = poisson2d(6, 6);
        let b = vec![1.0; a.nrows()];
        let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(200);
        let (out, ledger) = reliable_gmres(&a, &b, &opts);
        assert!(out.converged());
        assert_eq!(ledger.unreliable_flops, 0);
        let model = ReliabilityModel {
            reliable_cost_factor: 2.0,
            ..ReliabilityModel::default()
        };
        assert!(ledger.weighted_cost(&model) > out.flops as f64 * 1.99);
    }
}
