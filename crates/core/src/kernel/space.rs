//! The execution spaces the unified Krylov kernel runs over.
//!
//! A [`KrylovSpace`] bundles everything an iteration needs from its
//! environment: the bound linear operator, vector arithmetic, inner products
//! (blocking *and* split/nonblocking, so pipelined dot strategies can overlap
//! reductions with operator applications) and cost accounting. Two
//! implementations are provided:
//!
//! * [`SerialSpace`] — plain `Vec<f64>` arithmetic over any
//!   [`Operator`]; reductions complete immediately and FLOPs accumulate in a
//!   local counter (the serial solvers' `flops` field).
//! * [`DistSpace`] — [`DistVector`] arithmetic over a [`DistCsr`] and any
//!   [`CommBackend`] communicator (the virtual-time simulator's [`Comm`] by
//!   default, or the real-threads [`ThreadComm`] via the [`ThreadSpace`]
//!   alias); reductions are real collectives, costs are charged to the
//!   backend's clock, and an optional [`SpmvFault`] can corrupt a chosen
//!   product (the unified replacement for ad-hoc fault wrappers in
//!   distributed experiments).

use resilient_linalg::ops::{auto_ops, LocalOps};
use resilient_runtime::{Comm, CommBackend, ReduceOp, Result, Stored, ThreadComm};

use crate::distributed::{DistCsr, DistVector};
use crate::solvers::common::Operator;

use resilient_faults::bitflip::flip_bit_f64;
use resilient_faults::campaign::StrikePlan;

/// A pending (possibly nonblocking) fused reduction: opaque to the kernel,
/// interpreted by the space that produced it. Parameterised on the backend's
/// pending-collective handle; the default is the simulator's, so existing
/// concrete uses keep compiling unchanged.
pub enum PendingDots<P = resilient_runtime::PendingCollective> {
    /// Already-reduced values (serial spaces reduce immediately).
    Ready(Vec<f64>),
    /// An in-flight collective (distributed spaces).
    InFlight(P),
}

/// The execution environment of one Krylov solve: bound operator, vector
/// arithmetic, reductions and cost accounting.
///
/// Implementations must make every *global* quantity (dots, norms) return
/// bit-identical values on every rank so that policy decisions derived from
/// them keep the ranks' control flow symmetric.
pub trait KrylovSpace {
    /// The vector type iterated on.
    type Vector: Clone;
    /// The backend's in-flight collective handle, carried inside
    /// [`PendingDots`]. Serial spaces never produce one and use the default.
    type Pending;

    /// The node-local compute backend this space performs its arithmetic
    /// with (see [`resilient_linalg::ops`]): preconditioners and other
    /// kernel-side code that does local arithmetic *outside* the space's
    /// own methods must route it through this handle so one backend choice
    /// governs the whole solve. Defaults to the process-wide
    /// [`auto_ops`] selection.
    fn ops(&self) -> &'static dyn LocalOps {
        auto_ops()
    }

    /// Apply the bound operator: `y = A·x`, charging its cost.
    fn apply(&mut self, x: &Self::Vector) -> Result<Self::Vector>;
    /// Cost of one operator application in FLOPs.
    fn flops_per_apply(&self) -> usize;
    /// Upper-bound estimate of the operator ∞-norm (infinity when unknown);
    /// used by norm-bound policies.
    fn operator_norm_estimate(&self) -> f64;

    /// Global inner product (charges 2n in distributed spaces).
    fn dot(&mut self, x: &Self::Vector, y: &Self::Vector) -> Result<f64>;
    /// Global 2-norm.
    fn norm(&mut self, x: &Self::Vector) -> Result<f64>;
    /// Fused blocking reduction of `left[i]·right` for every `left[i]`.
    fn fused_dots(&mut self, left: &[&Self::Vector], right: &Self::Vector) -> Result<Vec<f64>>;
    /// Post a fused reduction of arbitrary pairs that may complete later;
    /// operator applications issued before [`KrylovSpace::finish_dots`] are
    /// overlapped with it (the pipelined dot strategies' primitive).
    fn start_dots(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
    ) -> Result<PendingDots<Self::Pending>>;
    /// Complete a reduction started with [`KrylovSpace::start_dots`].
    fn finish_dots(&mut self, pending: PendingDots<Self::Pending>) -> Result<Vec<f64>>;

    /// Fused *blocking* reduction of arbitrary pairs whose trailing
    /// `check_tail` pairs are policy check dots (wants-dots fusion): the
    /// reduction performs — and, in distributed spaces, time-charges — the
    /// arithmetic of every pair, and additionally attributes the check
    /// tail's `2n` FLOPs per pair to the check ledger.
    fn fused_pairs(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
        check_tail: usize,
    ) -> Result<Vec<f64>> {
        let pending = self.start_dots_tagged(pairs, check_tail)?;
        self.finish_dots(pending)
    }

    /// [`KrylovSpace::start_dots`] with the trailing `check_tail` pairs
    /// attributed to the check ledger (the reduction itself still charges
    /// the arithmetic of every pair exactly as `start_dots` does).
    fn start_dots_tagged(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
        check_tail: usize,
    ) -> Result<PendingDots<Self::Pending>> {
        debug_assert!(check_tail <= pairs.len());
        if check_tail > 0 {
            if let Some((x, _)) = pairs.first() {
                let n = self.local_len(x);
                self.record_check_flops(2 * n * check_tail);
            }
        }
        self.start_dots(pairs)
    }

    /// `y ← y + alpha·x` (local, not charged — call sites charge explicitly
    /// to preserve each preset's legacy cost model).
    fn axpy(&mut self, alpha: f64, x: &Self::Vector, y: &mut Self::Vector);
    /// `x ← alpha·x` (local, not charged).
    fn scale(&mut self, alpha: f64, x: &mut Self::Vector);
    /// `y ← x + beta·y` (local, not charged) — the CG direction update.
    fn xpby(&mut self, x: &Self::Vector, beta: f64, y: &mut Self::Vector);
    /// Residual helper `b − ax` (local, not charged).
    fn residual(&self, b: &Self::Vector, ax: &Self::Vector) -> Self::Vector;
    /// A zero vector with the shape of `v`.
    fn zeros_like(&self, v: &Self::Vector) -> Self::Vector;
    /// Locally stored length of `v` (the `n` of per-iteration flop formulas).
    fn local_len(&self, v: &Self::Vector) -> usize;
    /// Does the *locally stored* part of `v` contain NaN/Inf? Policies that
    /// must stay rank-symmetric should prefer global norms.
    fn local_has_non_finite(&self, v: &Self::Vector) -> bool;

    // -- persistent state (LFLR substrate) ---------------------------------

    /// Persist the locally stored part of `v` in this rank's persistent
    /// partition (the LFLR substrate — survives the rank's failure and is
    /// inherited by its replacement). Returns the bytes written so the
    /// caller can report checkpoint traffic. Spaces without a persistent
    /// store (serial) are a no-op returning 0; distributed spaces write
    /// through [`Comm::persist`](resilient_runtime::Comm::persist), which
    /// charges virtual time at the configured checkpoint bandwidth.
    fn persist_vector(&mut self, _key: &str, _v: &Self::Vector) -> Result<usize> {
        Ok(0)
    }

    /// Persist one scalar (step counters, epoch metadata) in this rank's
    /// persistent partition. No-op in spaces without a persistent store.
    /// Restoring is a recovery-driver concern, done directly on the
    /// communicator (see `kernel::lflr`), so the space only writes.
    fn persist_scalar(&mut self, _key: &str, _value: f64) -> Result<()> {
        Ok(())
    }

    /// Remove `key` from this rank's persistent partition (no-op if absent
    /// or the space has no store) — how persisting policies prune their
    /// snapshot history to a bounded window.
    fn unpersist(&mut self, _key: &str) {}

    /// Charge solver arithmetic (accumulates in the solve's FLOP count and,
    /// in distributed spaces, advances virtual time).
    fn charge_flops(&mut self, flops: usize);
    /// Attribute resilience-check arithmetic to the check ledger. This never
    /// advances time or the solver FLOP count: the space operations that
    /// perform a check (dots, norms, applications) charge their own cost,
    /// and the legacy skeptical accounting likewise kept check FLOPs out of
    /// the solver ledger. Distributed spaces record the attribution in the
    /// rank's [`resilient_runtime::RankStats::check_flops`].
    fn record_check_flops(&mut self, flops: usize);
    /// Advance any configured per-iteration extra application work
    /// (latency-hiding experiments); no-op for serial spaces.
    fn advance_extra_work(&mut self) -> Result<()>;
    /// Solver FLOPs accumulated so far (serial spaces; distributed spaces
    /// account in virtual time instead and return 0).
    fn accumulated_flops(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Serial space
// ---------------------------------------------------------------------------

/// A [`KrylovSpace`] over plain `Vec<f64>` and a serial [`Operator`].
pub struct SerialSpace<'a, O: Operator + ?Sized> {
    op: &'a O,
    flops: usize,
    ops: &'static dyn LocalOps,
}

impl<'a, O: Operator + ?Sized> SerialSpace<'a, O> {
    /// Bind the operator (local arithmetic through the [`auto_ops`]
    /// backend).
    pub fn new(op: &'a O) -> Self {
        Self {
            op,
            flops: 0,
            ops: auto_ops(),
        }
    }

    /// Select the node-local compute backend (scalar reference, SIMD, …);
    /// every backend is bit-compatible, so this changes speed, never
    /// results.
    pub fn with_ops(mut self, ops: &'static dyn LocalOps) -> Self {
        self.ops = ops;
        self
    }

    /// The bound operator.
    pub fn operator(&self) -> &'a O {
        self.op
    }
}

impl<'a, O: Operator + ?Sized> KrylovSpace for SerialSpace<'a, O> {
    type Vector = Vec<f64>;
    type Pending = resilient_runtime::PendingCollective;

    fn ops(&self) -> &'static dyn LocalOps {
        self.ops
    }

    fn apply(&mut self, x: &Self::Vector) -> Result<Self::Vector> {
        self.flops += self.op.flops_per_apply();
        Ok(self.op.apply(x))
    }

    fn flops_per_apply(&self) -> usize {
        self.op.flops_per_apply()
    }

    fn operator_norm_estimate(&self) -> f64 {
        self.op.norm_estimate()
    }

    fn dot(&mut self, x: &Self::Vector, y: &Self::Vector) -> Result<f64> {
        Ok(self.ops.dot(x, y))
    }

    fn norm(&mut self, x: &Self::Vector) -> Result<f64> {
        Ok(self.ops.nrm2(x))
    }

    fn fused_dots(&mut self, left: &[&Self::Vector], right: &Self::Vector) -> Result<Vec<f64>> {
        let pairs: Vec<(&[f64], &[f64])> = left
            .iter()
            .map(|l| (l.as_slice(), right.as_slice()))
            .collect();
        // lint:allow(hot-loop-alloc): O(#pairs) result buffer the trait returns
        // by value — not an O(n) vector buffer (those live in scratch).
        let mut out = vec![0.0; pairs.len()];
        self.ops.dot_pairs(&pairs, &mut out);
        Ok(out)
    }

    fn start_dots(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
    ) -> Result<PendingDots<Self::Pending>> {
        let slices: Vec<(&[f64], &[f64])> = pairs
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        // lint:allow(hot-loop-alloc): O(#pairs) result buffer the trait returns
        // by value — not an O(n) vector buffer (those live in scratch).
        let mut out = vec![0.0; slices.len()];
        self.ops.dot_pairs(&slices, &mut out);
        Ok(PendingDots::Ready(out))
    }

    fn finish_dots(&mut self, pending: PendingDots<Self::Pending>) -> Result<Vec<f64>> {
        match pending {
            PendingDots::Ready(v) => Ok(v),
            PendingDots::InFlight(_) => unreachable!("serial spaces reduce immediately"),
        }
    }

    fn axpy(&mut self, alpha: f64, x: &Self::Vector, y: &mut Self::Vector) {
        self.ops.axpy(alpha, x, y);
    }

    fn scale(&mut self, alpha: f64, x: &mut Self::Vector) {
        self.ops.scale(alpha, x);
    }

    fn xpby(&mut self, x: &Self::Vector, beta: f64, y: &mut Self::Vector) {
        self.ops.xpby(x, beta, y);
    }

    fn residual(&self, b: &Self::Vector, ax: &Self::Vector) -> Self::Vector {
        // 1·b + (−1)·ax ≡ b − ax bitwise (1·v = v, (−1)·v = −v exactly).
        let mut r = vec![0.0; b.len()];
        self.ops.waxpby_into(1.0, b, -1.0, ax, &mut r);
        r
    }

    fn zeros_like(&self, v: &Self::Vector) -> Self::Vector {
        vec![0.0; v.len()]
    }

    fn local_len(&self, v: &Self::Vector) -> usize {
        v.len()
    }

    fn local_has_non_finite(&self, v: &Self::Vector) -> bool {
        resilient_linalg::vector::has_non_finite(v)
    }

    fn charge_flops(&mut self, flops: usize) {
        self.flops += flops;
    }

    fn record_check_flops(&mut self, _flops: usize) {
        // Check overhead is reported per policy, not mixed into solver FLOPs
        // (the legacy skeptical solver kept the two ledgers separate).
    }

    fn advance_extra_work(&mut self) -> Result<()> {
        Ok(())
    }

    fn accumulated_flops(&self) -> usize {
        self.flops
    }
}

// ---------------------------------------------------------------------------
// Distributed space
// ---------------------------------------------------------------------------

/// A planned single-event upset in a distributed SpMV: on `rank`, flip `bit`
/// of local element `local_element` of the product of application number
/// `at_application` (0-based, counted per space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvFault {
    /// *World* (launch-time) rank whose product is corrupted. Injection is
    /// pinned to the pre-failure epoch: it matches the stable world rank —
    /// not the current communicator rank, which shrink recovery renumbers —
    /// and only the original incarnation of that rank ever strikes, so a
    /// planned strike can never silently move to a different physical
    /// process (or replay on a replacement) mid-experiment.
    pub rank: usize,
    /// 0-based operator-application index at which to strike.
    pub at_application: usize,
    /// Local element of the output vector to corrupt (clamped to length).
    pub local_element: usize,
    /// Bit (0–63) of the IEEE-754 representation to flip.
    pub bit: u32,
}

/// A [`KrylovSpace`] over block-distributed vectors, a [`DistCsr`] operator
/// and any [`CommBackend`] communicator. The default backend is the
/// virtual-time simulator's [`Comm`], so existing concrete uses keep
/// compiling (and behaving) exactly as before; instantiate with
/// [`ThreadComm`] (alias [`ThreadSpace`]) for real-threads wall-clock runs.
pub struct DistSpace<'a, 'b, C: CommBackend = Comm> {
    comm: &'a mut C,
    a: &'b DistCsr,
    extra_work_per_iter: f64,
    operator_norm: f64,
    fault: Option<SpmvFault>,
    applications: usize,
    injections: usize,
    /// Campaign multi-strike plan against the SpMV output (fires after the
    /// legacy single-fault path, which stays bit-identical).
    spmv_plan: Option<StrikePlan>,
    /// Campaign multi-strike plan against the preconditioner-apply output
    /// (fired by [`DistSpace::strike_precond_output`]).
    precond_plan: Option<StrikePlan>,
    /// Preconditioner applications observed so far (the `at` ordinal of
    /// `precond_plan` strikes).
    precond_applications: u64,
    ops: &'static dyn LocalOps,
    /// Reused ghost-assembly buffer: the SpMV input (owned + ghost
    /// entries) is assembled here instead of allocating per application.
    spmv_scratch: Vec<f64>,
}

/// [`DistSpace`] over the real-threads backend: same kernels, wall-clock
/// time, real `catch_unwind` rank death.
pub type ThreadSpace<'a, 'b> = DistSpace<'a, 'b, ThreadComm>;

impl<'a, 'b, C: CommBackend> DistSpace<'a, 'b, C> {
    /// Bind the communicator and operator (local arithmetic through the
    /// [`auto_ops`] backend).
    pub fn new(comm: &'a mut C, a: &'b DistCsr) -> Self {
        Self {
            comm,
            a,
            extra_work_per_iter: 0.0,
            operator_norm: f64::INFINITY,
            fault: None,
            applications: 0,
            injections: 0,
            spmv_plan: None,
            precond_plan: None,
            precond_applications: 0,
            ops: auto_ops(),
            spmv_scratch: Vec::new(),
        }
    }

    /// Select the node-local compute backend (scalar reference, SIMD, …);
    /// every backend is bit-compatible, so this changes speed, never
    /// results — rank symmetry is unaffected even if ranks chose
    /// different backends.
    pub fn with_ops(mut self, ops: &'static dyn LocalOps) -> Self {
        self.ops = ops;
        self
    }

    /// Charge `seconds` of overlappable application work per iteration
    /// (forwarded from [`DistSolveOptions::extra_work_per_iter`]).
    ///
    /// [`DistSolveOptions::extra_work_per_iter`]: crate::rbsp::DistSolveOptions
    pub fn with_extra_work(mut self, seconds_per_iter: f64) -> Self {
        self.extra_work_per_iter = seconds_per_iter;
        self
    }

    /// Provide a (globally agreed) operator ∞-norm bound for norm-bound
    /// policies; see [`DistCsr::local_norm_inf`].
    pub fn with_operator_norm(mut self, norm: f64) -> Self {
        self.operator_norm = norm;
        self
    }

    /// Inject a single-event upset into one SpMV product (composed-scenario
    /// experiments).
    pub fn with_fault(mut self, fault: SpmvFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Install a campaign multi-strike plan against SpMV products. Strikes
    /// are matched on the stable *world* rank, the pinned incarnation, and
    /// the per-space application ordinal — so a plan composes with shrink
    /// renumbering and replacement ranks, unlike ad-hoc wrappers.
    pub fn with_spmv_plan(mut self, plan: StrikePlan) -> Self {
        self.spmv_plan = Some(plan);
        self
    }

    /// Install a campaign multi-strike plan against preconditioner-apply
    /// outputs; preconditioners report their outputs through
    /// [`DistSpace::strike_precond_output`].
    pub fn with_precond_plan(mut self, plan: StrikePlan) -> Self {
        self.precond_plan = Some(plan);
        self
    }

    /// Preconditioner strike point: every faultable preconditioner (see
    /// `BlockJacobi::apply_into`) routes its freshly computed local output
    /// through here, which counts the application and fires any due
    /// campaign strikes into it. Without a plan this only counts.
    pub fn strike_precond_output(&mut self, z: &mut DistVector) {
        let at = self.precond_applications;
        self.precond_applications += 1;
        if let Some(plan) = self.precond_plan.as_mut() {
            self.injections += plan.strike_slice(
                self.comm.world_rank(),
                self.comm.incarnation(),
                at,
                &mut z.local,
            );
        }
    }

    /// Number of bit flips actually injected so far.
    pub fn injections(&self) -> usize {
        self.injections
    }

    /// Remove any installed strike plans (fired-strike counts are kept).
    /// The campaign driver disarms the space before its final charged
    /// verification so a strike that never came due cannot corrupt the
    /// verdict on the solve itself.
    pub fn disarm_plans(&mut self) {
        self.spmv_plan = None;
        self.precond_plan = None;
        self.fault = None;
    }

    /// SpMV applications observed so far (the campaign driver reads this
    /// off a clean run to scale its strike windows).
    pub fn applications(&self) -> usize {
        self.applications
    }

    /// Preconditioner applications observed so far.
    pub fn precond_applications(&self) -> u64 {
        self.precond_applications
    }

    /// The communicator (for preset code that needs collectives around the
    /// solve itself).
    pub fn comm(&mut self) -> &mut C {
        self.comm
    }

    // -- batched multi-RHS entry points ------------------------------------
    //
    // The block-CG kernel's surface: one operator sweep and one collective
    // serve every column of a `DistMultiVector`, so the per-iteration
    // collective count is independent of the batch width k. `active` is the
    // number of not-yet-converged columns still paying for arithmetic —
    // converged columns keep their slots in every payload (collective
    // symmetry) but stop being charged.

    /// Batched operator application `Y = A·X`: one ghost exchange per
    /// neighbour and one matrix sweep feed all `k` columns; charges
    /// `flops_per_apply × active`.
    pub fn apply_block(
        &mut self,
        x: &crate::distributed::DistMultiVector,
        active: usize,
    ) -> Result<crate::distributed::DistMultiVector> {
        self.a
            .apply_block_with(self.comm, x, self.ops, &mut self.spmv_scratch, active)
    }

    /// Batched blocking reduction: per multivector pair, all `k` per-column
    /// dot partials, then the `checks` tail (policy check dots riding the
    /// same collective), in **one** allreduce. Charges `2n·active` per
    /// multivector pair and attributes `2n` per check pair to the check
    /// ledger. `partials` is the caller's reusable local-partials buffer.
    pub fn block_dots(
        &mut self,
        k: usize,
        blocks: &[(
            &crate::distributed::DistMultiVector,
            &crate::distributed::DistMultiVector,
        )],
        checks: &[(&DistVector, &DistVector)],
        active: usize,
        partials: &mut Vec<f64>,
    ) -> Result<Vec<f64>> {
        self.block_partials(k, blocks, checks, active, partials);
        self.comm.allreduce(ReduceOp::Sum, partials)
    }

    /// The nonblocking form of [`DistSpace::block_dots`]: posts the fused
    /// reduction so a subsequent [`DistSpace::apply_block`] overlaps it (the
    /// pipelined block kernel's primitive); complete it with
    /// [`KrylovSpace::finish_dots`].
    pub fn start_block_dots(
        &mut self,
        k: usize,
        blocks: &[(
            &crate::distributed::DistMultiVector,
            &crate::distributed::DistMultiVector,
        )],
        checks: &[(&DistVector, &DistVector)],
        active: usize,
        partials: &mut Vec<f64>,
    ) -> Result<PendingDots<C::Pending>> {
        self.block_partials(k, blocks, checks, active, partials);
        Ok(PendingDots::InFlight(
            self.comm.iallreduce(ReduceOp::Sum, partials)?,
        ))
    }

    /// Shared local-partials assembly + cost accounting of the two batched
    /// reductions above.
    fn block_partials(
        &mut self,
        k: usize,
        blocks: &[(
            &crate::distributed::DistMultiVector,
            &crate::distributed::DistMultiVector,
        )],
        checks: &[(&DistVector, &DistVector)],
        active: usize,
        partials: &mut Vec<f64>,
    ) {
        partials.clear();
        partials.resize(k * blocks.len() + checks.len(), 0.0);
        let mut n = 0;
        for (t, (x, y)) in blocks.iter().enumerate() {
            n = x.local_rows();
            self.ops.dot_blocks(
                k,
                &[(x.local.as_slice(), y.local.as_slice())],
                &mut partials[t * k..(t + 1) * k],
            );
        }
        let base = k * blocks.len();
        for (t, (x, y)) in checks.iter().enumerate() {
            let mut one = [0.0];
            self.ops
                .dot_pairs(&[(x.local.as_slice(), y.local.as_slice())], &mut one);
            partials[base + t] = one[0];
            n = x.local_len();
        }
        // Mirror `fused_pairs`: every reduced pair's arithmetic is charged
        // (solver pairs at the masked `active` width, checks at full
        // width), and the check tail is *additionally* attributed to the
        // check ledger.
        self.comm
            .charge_flops(2 * n * (active * blocks.len() + checks.len()));
        self.comm.record_check_flops(2 * n * checks.len());
    }

    /// Blocked direction update `y[c] ← y[c] + alphas[c]·x[c]` for every
    /// column at once (local, not charged — the kernel charges per active
    /// column, like the single-RHS presets).
    pub fn axpy_block(
        &mut self,
        alphas: &[f64],
        x: &crate::distributed::DistMultiVector,
        y: &mut crate::distributed::DistMultiVector,
    ) {
        self.ops.axpy_blocks(alphas, &x.local, &mut y.local);
    }

    /// Blocked CG direction update `y[c] ← x[c] + betas[c]·y[c]` (local,
    /// not charged).
    pub fn xpby_block(
        &mut self,
        x: &crate::distributed::DistMultiVector,
        betas: &[f64],
        y: &mut crate::distributed::DistMultiVector,
    ) {
        self.ops.xpby_blocks(&x.local, betas, &mut y.local);
    }

    /// Single-column `y[c] ← y[c] + alpha·x[c]` — the masked path once some
    /// columns have converged and must stop changing (local, not charged).
    pub fn axpy_col(
        &mut self,
        alpha: f64,
        x: &crate::distributed::DistMultiVector,
        y: &mut crate::distributed::DistMultiVector,
        c: usize,
    ) {
        self.ops.axpy(alpha, x.col(c), y.col_mut(c));
    }

    /// Single-column `y[c] ← x[c] + beta·y[c]` (masked path; local, not
    /// charged).
    pub fn xpby_col(
        &mut self,
        x: &crate::distributed::DistMultiVector,
        beta: f64,
        y: &mut crate::distributed::DistMultiVector,
        c: usize,
    ) {
        self.ops.xpby(x.col(c), beta, y.col_mut(c));
    }
}

impl<'a, 'b, C: CommBackend> KrylovSpace for DistSpace<'a, 'b, C> {
    type Vector = DistVector;
    type Pending = C::Pending;

    fn ops(&self) -> &'static dyn LocalOps {
        self.ops
    }

    fn apply(&mut self, x: &Self::Vector) -> Result<Self::Vector> {
        let mut y = self
            .a
            .apply_with(self.comm, x, self.ops, &mut self.spmv_scratch)?;
        let app = self.applications;
        self.applications += 1;
        if let Some(f) = self.fault {
            if f.at_application == app
                && f.rank == self.comm.world_rank()
                && self.comm.incarnation() == 0
                && !y.local.is_empty()
            {
                let i = f.local_element.min(y.local.len() - 1);
                y.local[i] = flip_bit_f64(y.local[i], f.bit);
                self.injections += 1;
            }
        }
        if let Some(plan) = self.spmv_plan.as_mut() {
            self.injections += plan.strike_slice(
                self.comm.world_rank(),
                self.comm.incarnation(),
                app as u64,
                &mut y.local,
            );
        }
        Ok(y)
    }

    fn flops_per_apply(&self) -> usize {
        self.a.flops_per_apply()
    }

    fn operator_norm_estimate(&self) -> f64 {
        self.operator_norm
    }

    fn dot(&mut self, x: &Self::Vector, y: &Self::Vector) -> Result<f64> {
        // Same charge-then-reduce shape as `DistVector::dot`, with the
        // local partial product under the selected backend.
        self.comm.charge_flops(2 * x.local_len());
        self.comm.global_dot(self.ops.dot(&x.local, &y.local))
    }

    fn norm(&mut self, x: &Self::Vector) -> Result<f64> {
        Ok(self.dot(x, x)?.max(0.0).sqrt())
    }

    fn fused_dots(&mut self, left: &[&Self::Vector], right: &Self::Vector) -> Result<Vec<f64>> {
        let pairs: Vec<(&[f64], &[f64])> = left
            .iter()
            .map(|l| (l.local.as_slice(), right.local.as_slice()))
            .collect();
        // lint:allow(hot-loop-alloc): O(#pairs) partials buffer handed to the
        // allreduce — not an O(n) vector buffer (those live in scratch).
        let mut local = vec![0.0; pairs.len()];
        self.ops.dot_pairs(&pairs, &mut local);
        self.comm.charge_flops(2 * right.local_len() * left.len());
        self.comm.allreduce(ReduceOp::Sum, &local)
    }

    fn start_dots(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
    ) -> Result<PendingDots<Self::Pending>> {
        let slices: Vec<(&[f64], &[f64])> = pairs
            .iter()
            .map(|(x, y)| (x.local.as_slice(), y.local.as_slice()))
            .collect();
        // lint:allow(hot-loop-alloc): O(#pairs) partials buffer handed to the
        // iallreduce — not an O(n) vector buffer (those live in scratch).
        let mut local = vec![0.0; slices.len()];
        self.ops.dot_pairs(&slices, &mut local);
        if let Some((x, _)) = pairs.first() {
            self.comm.charge_flops(2 * x.local_len() * pairs.len());
        }
        Ok(PendingDots::InFlight(
            self.comm.iallreduce(ReduceOp::Sum, &local)?,
        ))
    }

    fn finish_dots(&mut self, pending: PendingDots<Self::Pending>) -> Result<Vec<f64>> {
        match pending {
            PendingDots::Ready(v) => Ok(v),
            PendingDots::InFlight(p) => self.comm.wait_vector(p),
        }
    }

    fn fused_pairs(
        &mut self,
        pairs: &[(&Self::Vector, &Self::Vector)],
        check_tail: usize,
    ) -> Result<Vec<f64>> {
        debug_assert!(check_tail <= pairs.len());
        let slices: Vec<(&[f64], &[f64])> = pairs
            .iter()
            .map(|(x, y)| (x.local.as_slice(), y.local.as_slice()))
            .collect();
        // lint:allow(hot-loop-alloc): O(#pairs) partials buffer handed to the
        // allreduce — not an O(n) vector buffer (those live in scratch).
        let mut local = vec![0.0; slices.len()];
        self.ops.dot_pairs(&slices, &mut local);
        if let Some((x, _)) = pairs.first() {
            let n = x.local_len();
            self.comm.charge_flops(2 * n * pairs.len());
            self.comm.record_check_flops(2 * n * check_tail);
        }
        self.comm.allreduce(ReduceOp::Sum, &local)
    }

    fn axpy(&mut self, alpha: f64, x: &Self::Vector, y: &mut Self::Vector) {
        self.ops.axpy(alpha, &x.local, &mut y.local);
    }

    fn scale(&mut self, alpha: f64, x: &mut Self::Vector) {
        self.ops.scale(alpha, &mut x.local);
    }

    fn xpby(&mut self, x: &Self::Vector, beta: f64, y: &mut Self::Vector) {
        self.ops.xpby(&x.local, beta, &mut y.local);
    }

    fn residual(&self, b: &Self::Vector, ax: &Self::Vector) -> Self::Vector {
        let mut r = b.clone();
        self.ops.axpy(-1.0, &ax.local, &mut r.local);
        r
    }

    fn zeros_like(&self, v: &Self::Vector) -> Self::Vector {
        let mut z = v.clone();
        z.local.iter_mut().for_each(|x| *x = 0.0);
        z
    }

    fn local_len(&self, v: &Self::Vector) -> usize {
        v.local_len()
    }

    fn local_has_non_finite(&self, v: &Self::Vector) -> bool {
        resilient_linalg::vector::has_non_finite(&v.local)
    }

    fn persist_vector(&mut self, key: &str, v: &Self::Vector) -> Result<usize> {
        let bytes = v.local_len() * std::mem::size_of::<f64>();
        // `Comm::persist` charges the write at the configured checkpoint
        // bandwidth; the store traffic (one pass over the local part) is
        // additionally *attributed* to the check ledger, like every other
        // resilience overhead, without advancing time a second time.
        self.comm.persist(key, Stored::F64(v.local.clone()))?;
        self.comm.record_check_flops(v.local_len());
        Ok(bytes)
    }

    fn persist_scalar(&mut self, key: &str, value: f64) -> Result<()> {
        self.comm.persist(key, Stored::Scalar(value))
    }

    fn unpersist(&mut self, key: &str) {
        self.comm.unpersist(key);
    }

    fn charge_flops(&mut self, flops: usize) {
        self.comm.charge_flops(flops);
    }

    fn record_check_flops(&mut self, flops: usize) {
        self.comm.record_check_flops(flops);
    }

    fn advance_extra_work(&mut self) -> Result<()> {
        if self.extra_work_per_iter > 0.0 {
            self.comm.advance(self.extra_work_per_iter);
        }
        Ok(())
    }

    fn accumulated_flops(&self) -> usize {
        0
    }
}
