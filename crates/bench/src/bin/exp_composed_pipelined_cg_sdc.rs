//! Composed scenario C3 — pipelined CG × skeptical SDC detection
//! (RBSP × SkP over the CG recurrence), the first ROADMAP follow-on
//! composition over the unified kernel.
//!
//! Pipelined CG's whole point is its single nonblocking fused reduction per
//! iteration; with the wants-dots negotiation the skeptical check dots ride
//! that same reduction, so SDC detection adds **zero** collectives — the
//! `allred/iter` column stays at one for the fused rows and jumps to three
//! for the legacy unfused schedule. On detection the kernel rebuilds the CG
//! recurrence from the current iterate (CG's analogue of discarding a
//! corrupted Arnoldi cycle), so an injected exponent flip is survived, not
//! silently absorbed as stagnation.
//!
//! Per scenario the table reports convergence, detections, recurrence
//! rebuilds, per-policy check overhead, allreduce counts and virtual time.
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nx, ranks) = if smoke { (8, 2) } else { (16, 8) };
    let mut cfg = RuntimeConfig::fast();
    cfg.latency = LatencyModel {
        alpha: 2.0e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    cfg.seconds_per_flop = 1.0e-9;

    let opts = DistSolveOptions::default()
        .with_tol(1e-7)
        .with_max_iters(if smoke { 200 } else { 500 });

    let mut table = Table::new(
        &format!("C3: pipelined CG x SDC detection, 2-D Poisson {nx}x{nx}, {ranks} ranks"),
        &[
            "scenario",
            "converged",
            "iters",
            "relres",
            "detections",
            "rebuilds",
            "check kflops",
            "allred/iter",
            "time (ms)",
        ],
    );

    // An exponent flip in a mid-solve SpMV product. (Element 0's top
    // exponent bit is clear at this application, so the flip amplifies the
    // value by ~2^512 — the detectable direction.)
    let fault = SpmvFault {
        rank: ranks - 1,
        at_application: 4,
        local_element: 0,
        bit: 62,
    };
    for (label, skeptic, fault) in [
        ("pipelined CG, no checks", None, None),
        (
            "pipelined CG + SDC, fused",
            Some(SkepticalConfig::default()),
            None,
        ),
        (
            "pipelined CG + SDC, unfused (legacy)",
            Some(SkepticalConfig::default().unfused()),
            None,
        ),
        (
            "pipelined CG + SDC, fused, bit-62 flip",
            Some(SkepticalConfig::default()),
            Some(fault),
        ),
    ] {
        let rt = Runtime::new(cfg.clone());
        let opts2 = opts;
        let rows = rt
            .run(ranks, move |comm| {
                let a = poisson2d(nx, nx);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
                let t0 = comm.now();
                let c0 = comm.snapshot_stats().collectives;
                let (out, detections, rebuilds, check_flops) = if let Some(skeptic) = skeptic {
                    let (out, report) =
                        pipelined_skeptical_cg(comm, &da, &b, &opts2, &skeptic, fault)?;
                    let per_policy: usize = report.policies.iter().map(|p| p.check_flops).sum();
                    (
                        out,
                        report.skeptical.detections,
                        report.policy_restarts,
                        per_policy,
                    )
                } else {
                    (pipelined_cg(comm, &da, &b, &opts2)?, 0, 0, 0)
                };
                let elapsed = comm.now() - t0;
                let collectives = comm.snapshot_stats().collectives - c0;
                Ok((
                    out.converged,
                    out.iterations,
                    out.relative_residual,
                    detections,
                    rebuilds,
                    check_flops,
                    collectives,
                    elapsed,
                ))
            })
            .unwrap_all();
        // Rank 0's view; decisions are identical on every rank by
        // construction (they derive from global reductions).
        let (conv, iters, relres, detections, rebuilds, check_flops, collectives, elapsed) =
            rows[0];
        table.row(vec![
            label.to_string(),
            conv.to_string(),
            iters.to_string(),
            fmt_g(relres),
            detections.to_string(),
            rebuilds.to_string(),
            fmt_g(check_flops as f64 / 1e3),
            fmt_g(collectives as f64 / iters.max(1) as f64),
            fmt_g(elapsed * 1e3),
        ]);
    }
    table.emit("composed_pipelined_cg_sdc");
}
