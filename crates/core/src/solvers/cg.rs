//! The (preconditioned) conjugate gradient method for SPD systems.

use resilient_linalg::vector::{axpy, dot, has_non_finite, nrm2};

use super::common::{
    IdentityPreconditioner, Operator, Preconditioner, SolveOptions, SolveOutcome, StopReason,
};

/// Solve `A·x = b` with CG starting from `x0` (zero vector if `None`).
pub fn cg<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveOutcome {
    pcg(a, &IdentityPreconditioner, b, x0, opts)
}

/// Preconditioned conjugate gradients.
pub fn pcg<O: Operator + ?Sized, M: Preconditioner + ?Sized>(
    a: &O,
    m: &M,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveOutcome {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    let mut x = x0.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    let bn = nrm2(b).max(f64::MIN_POSITIVE);
    let mut flops = 0usize;

    // r = b - A x
    let ax = a.apply(&x);
    flops += a.flops_per_apply();
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let mut z = m.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut history = Vec::new();
    let mut relres = nrm2(&r) / bn;
    history.push(relres);
    if relres <= opts.tol {
        return SolveOutcome {
            x,
            iterations: 0,
            relative_residual: relres,
            reason: StopReason::Converged,
            history,
            flops,
        };
    }

    for k in 0..opts.max_iters {
        let ap = a.apply(&p);
        flops += a.flops_per_apply() + 10 * n;
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return SolveOutcome {
                x,
                iterations: k,
                relative_residual: relres,
                reason: if pap.is_finite() {
                    StopReason::Breakdown
                } else {
                    StopReason::Diverged
                },
                history,
                flops,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        relres = nrm2(&r) / bn;
        history.push(relres);
        if has_non_finite(&r) {
            return SolveOutcome {
                x,
                iterations: k + 1,
                relative_residual: relres,
                reason: StopReason::Diverged,
                history,
                flops,
            };
        }
        if relres <= opts.tol {
            return SolveOutcome {
                x,
                iterations: k + 1,
                relative_residual: relres,
                reason: StopReason::Converged,
                history,
                flops,
            };
        }
        z = m.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    SolveOutcome {
        x,
        iterations: opts.max_iters,
        relative_residual: relres,
        reason: StopReason::MaxIterations,
        history,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::{true_relative_residual, JacobiPreconditioner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resilient_linalg::{poisson1d, poisson2d, random_vector, spd_random};

    #[test]
    fn solves_poisson1d_exactly_in_n_iterations() {
        let a = poisson1d(10);
        let x_true = vec![1.0; 10];
        let b = a.spmv(&x_true);
        let out = cg(&a, &b, None, &SolveOptions::default().with_tol(1e-12));
        assert!(out.converged());
        assert!(
            out.iterations <= 10,
            "CG must converge within n steps, took {}",
            out.iterations
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-10);
    }

    #[test]
    fn solves_poisson2d() {
        let a = poisson2d(12, 12);
        let n = a.nrows();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x_true = random_vector(n, &mut rng);
        let b = a.spmv(&x_true);
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        assert!(out.converged(), "reason {:?}", out.reason);
        let err: f64 = out
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "solution error {err}");
        assert!(out.flops > 0);
    }

    #[test]
    fn jacobi_preconditioning_does_not_hurt_poisson() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let plain = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        let m = JacobiPreconditioner::from_matrix(&a);
        let pre = pcg(
            &a,
            &m,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        assert!(plain.converged() && pre.converged());
        // Constant-diagonal matrix: Jacobi is a scalar scaling, same iteration count.
        assert_eq!(plain.iterations, pre.iterations);
    }

    #[test]
    fn respects_initial_guess() {
        let a = poisson1d(8);
        let x_true = vec![2.0; 8];
        let b = a.spmv(&x_true);
        let out = cg(&a, &b, Some(&x_true), &SolveOptions::default());
        assert_eq!(
            out.iterations, 0,
            "exact initial guess converges immediately"
        );
        assert!(out.converged());
    }

    #[test]
    fn random_spd_system() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = spd_random(20, &mut rng);
        let b = random_vector(20, &mut rng);
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(200),
        );
        assert!(out.converged());
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = poisson2d(16, 16);
        let b = vec![1.0; a.nrows()];
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-14).with_max_iters(3),
        );
        assert_eq!(out.reason, StopReason::MaxIterations);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.history.len(), 4);
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(300),
        );
        // CG residuals are not strictly monotone, but the last is far below the first.
        assert!(out.history.last().unwrap() < &(out.history[0] * 1e-8));
    }
}
