//! The real-threads backend: ranks are worker threads under wall-clock time.
//!
//! Where [`Comm`](crate::comm::Comm) *simulates* an SPMD machine in virtual
//! time, [`ThreadComm`] *is* one, scaled down to a single process: every rank
//! is an OS thread, collectives are real rendezvous on the shared
//! [`CollectiveEngine`], time is the wall
//! clock, and "a rank dies" means its thread really unwinds through a
//! [`catch_unwind`](std::panic::catch_unwind) boundary mid-solve. This is
//! the measurement substrate that turns the simulator's predicted speedups
//! into *measured* ones (`exp_backend_parity`).
//!
//! Design choices that keep the two backends comparable:
//!
//! * **Deterministic reductions.** Collectives go through the same engine
//!   and the same ascending-rank [`ReduceOp::reduce_all`] fold as the
//!   simulator, so failure-free iterates are bit-identical to the
//!   simulator's — arrival order never changes the floating-point result.
//! * **Emulated communication latency.** A collective or message costs
//!   `emulate` ([`LatencyModel`]) seconds of real time, charged by sleeping
//!   (or spinning, below 100 µs) *after* the real rendezvous. A nonblocking
//!   reduction only charges what its latency window did not overlap with
//!   local work — real latency hiding, measurable even on an oversubscribed
//!   host because sleeping ranks release their core.
//! * **Real fault injection.** A [`DeathInjector`] decides at failure points
//!   whether the rank dies; death is a genuine `panic_any(RankKilled)`
//!   unwind, caught by the [`ThreadRuntime`] launcher, which (under
//!   [`FailurePolicy::ReplaceRank`]) spawns a replacement thread. Survivors
//!   detect the failure through the shared health board exactly as they do
//!   in the simulator, and the existing shrink + LFLR rendezvous run
//!   unchanged.

use parking_lot::Mutex;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::collective::ReduceOp;
use crate::comm::RankKilled;
use crate::config::{FailurePolicy, LatencyModel};
use crate::engine::{CollectiveEngine, SlotKey, SlotKind};
use crate::error::{Result, RuntimeError};
use crate::health::HealthBoard;
use crate::launcher::{install_panic_hook, JobResult, MAX_INCARNATIONS};
use crate::mailbox::{Mailbox, PollOutcome};
use crate::message::{Message, Payload, ANY_SOURCE};
use crate::persistent::{PersistentStore, Stored};
use crate::stats::{JobStats, RankStats};
use crate::ulfm::{RecoveryInfo, ShrinkInfo};

/// How long a blocked receive sleeps between polls (real time).
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// Below this emulated duration, spin instead of sleeping: OS sleep
/// granularity would otherwise round every microsecond-scale latency up to
/// a scheduler quantum.
const SPIN_BELOW: f64 = 100e-6;

/// Configuration of the real-threads backend.
///
/// The emulated-cost knobs mirror [`RuntimeConfig`](crate::config::RuntimeConfig)
/// so an experiment can run the same machine model under both backends and
/// compare predicted (virtual) against measured (wall) time.
#[derive(Debug, Clone)]
pub struct ThreadConfig {
    /// Policy applied when a rank dies.
    pub policy: FailurePolicy,
    /// Communication latency emulated in real time (sleep/spin after the
    /// real rendezvous). `LatencyModel::zero()` gives raw thread speed.
    pub emulate: LatencyModel,
    /// Real seconds charged per floating-point operation by
    /// [`ThreadComm::charge_flops`]. Zero means arithmetic costs only what
    /// it really costs.
    pub seconds_per_flop: f64,
    /// Real seconds charged per byte written to / read from the persistent
    /// store.
    pub checkpoint_seconds_per_byte: f64,
    /// Real seconds a replacement rank sleeps before starting work
    /// (process-spawn cost).
    pub replacement_cost: f64,
    /// Maximum number of deaths the injector may cause over the whole job.
    pub max_failures: usize,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        Self {
            policy: FailurePolicy::ReplaceRank,
            emulate: LatencyModel::default(),
            seconds_per_flop: 1.0e-9,
            checkpoint_seconds_per_byte: 1.0e-9,
            replacement_cost: 0.05,
            max_failures: usize::MAX,
        }
    }
}

impl ThreadConfig {
    /// Zero emulated costs: the backend runs at raw thread speed, which is
    /// what bit-parity tests want.
    pub fn fast() -> Self {
        Self {
            emulate: LatencyModel::zero(),
            seconds_per_flop: 0.0,
            checkpoint_seconds_per_byte: 0.0,
            replacement_cost: 0.0,
            ..Self::default()
        }
    }

    /// Builder-style: set the failure policy.
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the emulated latency model.
    pub fn with_latency(mut self, emulate: LatencyModel) -> Self {
        self.emulate = emulate;
        self
    }

    /// Builder-style: set the per-FLOP cost.
    pub fn with_seconds_per_flop(mut self, seconds: f64) -> Self {
        self.seconds_per_flop = seconds;
        self
    }

    /// Builder-style: set the checkpoint bandwidth cost.
    pub fn with_checkpoint_seconds_per_byte(mut self, seconds: f64) -> Self {
        self.checkpoint_seconds_per_byte = seconds;
        self
    }

    /// Builder-style: set the replacement-spawn cost.
    pub fn with_replacement_cost(mut self, seconds: f64) -> Self {
        self.replacement_cost = seconds;
        self
    }

    /// Builder-style: cap the number of injected deaths.
    pub fn with_max_failures(mut self, max: usize) -> Self {
        self.max_failures = max;
        self
    }
}

/// What a [`DeathInjector`] sees when deciding whether a rank dies at a
/// failure point.
#[derive(Debug, Clone, Copy)]
pub struct DeathContext {
    /// World rank of the calling thread.
    pub world_rank: usize,
    /// Incarnation of the calling thread (0 = original).
    pub incarnation: u64,
    /// Collectives this incarnation has completed so far — a deterministic
    /// per-rank progress counter, unlike wall time.
    pub collectives: u64,
    /// Real seconds since the job started.
    pub elapsed: f64,
}

/// Decides, at each failure point of the threaded backend, whether the
/// calling rank dies (a real panic unwind). Implementations live in
/// `resilient-faults`; the runtime only defines the boundary.
pub trait DeathInjector: Send + Sync {
    /// Should the rank described by `ctx` die here?
    fn should_die(&self, ctx: &DeathContext) -> bool;
}

/// Shared state of one threaded job (the real-threads analogue of
/// [`World`](crate::world::World)).
pub struct ThreadWorld {
    /// Job configuration.
    pub config: ThreadConfig,
    /// Number of world ranks.
    pub size: usize,
    /// One mailbox per world rank.
    pub mailboxes: Vec<Mailbox>,
    /// The collective rendezvous engine (same one the simulator uses).
    pub engine: CollectiveEngine,
    /// Liveness, failure generations and epochs.
    pub health: HealthBoard,
    /// Per-rank persistent storage surviving rank death (LFLR substrate).
    pub persistent: PersistentStore,
    /// Wall-clock origin of the job; `ThreadComm::now` is seconds since.
    pub start: Instant,
    /// Fault injector consulted at failure points, if any.
    pub injector: Option<Arc<dyn DeathInjector>>,
    /// Statistics of incarnations that died.
    pub lost_stats: Mutex<Vec<RankStats>>,
}

impl ThreadWorld {
    fn new(
        config: ThreadConfig,
        size: usize,
        injector: Option<Arc<dyn DeathInjector>>,
    ) -> Arc<Self> {
        Arc::new(Self {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            engine: CollectiveEngine::new(),
            health: HealthBoard::new(size, config.policy),
            persistent: PersistentStore::new(size),
            start: Instant::now(),
            injector,
            lost_stats: Mutex::new(Vec::new()),
            config,
            size,
        })
    }

    /// Wake every blocked receive and collective wait (called on failure).
    pub fn interrupt_all(&self) {
        for mb in &self.mailboxes {
            mb.interrupt();
        }
        self.engine.interrupt();
    }
}

/// Handle to an in-flight nonblocking reduction on the threaded backend.
///
/// Carries the real post time so that [`ThreadComm::wait_vector`] only
/// charges the part of the emulated latency window that local work did not
/// already overlap — the wall-clock realisation of latency hiding.
#[must_use = "a pending collective must be completed with wait_vector"]
pub struct ThreadPending {
    key: SlotKey,
    op: ReduceOp,
    posted_at: Instant,
    cost: f64,
}

/// The communicator handle owned by one rank thread.
pub struct ThreadComm {
    world: Arc<ThreadWorld>,
    world_rank: usize,
    incarnation: u64,
    /// Collective sequence counter (reset at each recovery).
    seq: u64,
    /// Communication epoch this rank has acknowledged.
    epoch: u64,
    /// Failure generation this rank has acknowledged (recovered from).
    acked_generation: u64,
    comm_id: u64,
    /// For shrunk communicators: group rank -> world rank mapping.
    group: Option<Vec<usize>>,
    // -- statistics --
    emulated_compute: f64,
    emulated_wait: f64,
    emulated_recovery: f64,
    messages_sent: u64,
    bytes_sent: u64,
    collectives: u64,
    recoveries: u64,
    check_flops: u64,
}

impl ThreadComm {
    fn new(world: Arc<ThreadWorld>, rank: usize, incarnation: u64) -> Self {
        let epoch = world.health.epoch();
        let acked_generation = world.health.generation();
        Self {
            world,
            world_rank: rank,
            incarnation,
            seq: 0,
            epoch,
            acked_generation,
            comm_id: 0,
            group: None,
            emulated_compute: 0.0,
            emulated_wait: 0.0,
            emulated_recovery: 0.0,
            messages_sent: 0,
            bytes_sent: 0,
            collectives: 0,
            recoveries: 0,
            check_flops: 0,
        }
    }

    // ------------------------------------------------------------------
    // Identity
    // ------------------------------------------------------------------

    /// Rank within the current communicator (group rank after a shrink).
    pub fn rank(&self) -> usize {
        match &self.group {
            None => self.world_rank,
            Some(g) => g
                .iter()
                .position(|&r| r == self.world_rank)
                .unwrap_or(usize::MAX),
        }
    }

    /// Size of the current communicator (group size after a shrink).
    pub fn size(&self) -> usize {
        match &self.group {
            None => self.world.size,
            Some(g) => g.len(),
        }
    }

    /// Rank within the original (world) job, regardless of shrinks.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Size of the original (world) job.
    pub fn world_size(&self) -> usize {
        self.world.size
    }

    /// Incarnation number: 0 for the original thread, >0 for replacements.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Is this rank a replacement spawned after a failure?
    pub fn is_replacement(&self) -> bool {
        self.incarnation > 0
    }

    /// Number of recovery rendezvous / shrinks this rank has completed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The configuration this job runs under.
    pub fn config(&self) -> &ThreadConfig {
        &self.world.config
    }

    fn to_world(&self, rank: usize) -> Result<usize> {
        if rank == ANY_SOURCE {
            return Ok(ANY_SOURCE);
        }
        match &self.group {
            None => {
                if rank < self.world.size {
                    Ok(rank)
                } else {
                    Err(RuntimeError::InvalidRank {
                        rank,
                        size: self.world.size,
                    })
                }
            }
            Some(g) => g.get(rank).copied().ok_or(RuntimeError::InvalidRank {
                rank,
                size: g.len(),
            }),
        }
    }

    fn to_group(&self, world_rank: usize) -> usize {
        match &self.group {
            None => world_rank,
            Some(g) => g
                .iter()
                .position(|&r| r == world_rank)
                .unwrap_or(usize::MAX),
        }
    }

    // ------------------------------------------------------------------
    // Wall-clock time and emulated cost
    // ------------------------------------------------------------------

    /// Real seconds since the job started.
    pub fn now(&self) -> f64 {
        self.world.start.elapsed().as_secs_f64()
    }

    /// Burn `seconds` of real time: sleep for sleep-granularity durations,
    /// spin below. Sleeping (rather than spinning) is what lets more rank
    /// threads than cores overlap their latency windows honestly.
    fn burn(seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        if seconds >= SPIN_BELOW {
            thread::sleep(Duration::from_secs_f64(seconds));
        } else {
            let deadline = Instant::now() + Duration::from_secs_f64(seconds);
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }

    /// Charge `seconds` of emulated computation (burned in real time).
    pub fn advance(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            Self::burn(seconds);
            self.emulated_compute += seconds;
        }
        self.maybe_die();
    }

    /// Charge the cost of `flops` floating-point operations at the
    /// configured rate.
    pub fn charge_flops(&mut self, flops: usize) {
        let dt = self.world.config.seconds_per_flop * flops as f64;
        self.advance(dt);
    }

    /// Attribute `flops` to resilience checks (ledger only; no time).
    pub fn record_check_flops(&mut self, flops: usize) {
        self.check_flops += flops as u64;
    }

    fn emulate_wait(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            Self::burn(seconds);
            self.emulated_wait += seconds;
        }
    }

    fn emulate_recovery(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            Self::burn(seconds);
            self.emulated_recovery += seconds;
        }
    }

    // ------------------------------------------------------------------
    // Failure points
    // ------------------------------------------------------------------

    /// Explicit failure point: consult the injector, then check health.
    pub fn failure_point(&mut self) -> Result<()> {
        self.maybe_die();
        self.check_health()
    }

    /// Check the health board: error if the job aborted or an unacknowledged
    /// failure exists.
    pub fn check_health(&self) -> Result<()> {
        self.world.health.check(self.acked_generation)
    }

    fn maybe_die(&mut self) {
        let Some(injector) = self.world.injector.clone() else {
            return;
        };
        if self.world.health.failure_count() >= self.world.config.max_failures {
            return;
        }
        let ctx = DeathContext {
            world_rank: self.world_rank,
            incarnation: self.incarnation,
            collectives: self.collectives,
            elapsed: self.now(),
        };
        if injector.should_die(&ctx) {
            self.die();
        }
    }

    /// Kill this rank for real: record the failure, stash partial
    /// statistics, wake all waiters and unwind the thread.
    fn die(&mut self) -> ! {
        let time = self.now();
        let generation = self
            .world
            .health
            .record_failure(self.world_rank, self.incarnation, time);
        self.world.lost_stats.lock().push(self.snapshot_stats());
        self.world.interrupt_all();
        panic::panic_any(RankKilled {
            rank: self.world_rank,
            incarnation: self.incarnation,
            time,
            generation,
        });
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    fn send_payload(&mut self, dest: usize, tag: i32, payload: Payload) -> Result<()> {
        self.maybe_die();
        self.check_health()?;
        let dest_world = self.to_world(dest)?;
        if !self.world.health.is_alive(dest_world) {
            return Err(RuntimeError::ProcFailed {
                rank: dest_world,
                generation: self.world.health.generation(),
            });
        }
        let bytes = payload.byte_len();
        let msg = Message {
            source: self.world_rank,
            dest: dest_world,
            tag,
            epoch: self.epoch,
            sent_at: self.now(),
            payload,
        };
        self.world.mailboxes[dest_world].deposit(msg);
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        Ok(())
    }

    fn recv_payload(&mut self, source: usize, tag: i32) -> Result<(usize, Payload)> {
        self.maybe_die();
        let source_world = self.to_world(source)?;
        loop {
            self.check_health()?;
            match self.world.mailboxes[self.world_rank].poll(source_world, tag, self.epoch) {
                PollOutcome::Found(msg) => {
                    // Emulate only the part of the message latency that the
                    // real delivery delay has not already covered.
                    let arrival = msg.sent_at + self.world.config.emulate.p2p_cost(msg.byte_len());
                    self.emulate_wait(arrival - self.now());
                    return Ok((self.to_group(msg.source), msg.payload));
                }
                PollOutcome::Empty => {
                    if source_world != ANY_SOURCE && !self.world.health.is_alive(source_world) {
                        return Err(RuntimeError::ProcFailed {
                            rank: source_world,
                            generation: self.world.health.generation(),
                        });
                    }
                    self.world.mailboxes[self.world_rank].wait(WAIT_SLICE);
                }
            }
        }
    }

    /// Send a slice of `f64` values to `dest` with the given tag.
    pub fn send_f64(&mut self, dest: usize, tag: i32, data: &[f64]) -> Result<()> {
        self.send_payload(dest, tag, Payload::F64(data.to_vec()))
    }

    /// Receive an `f64` vector; returns `(source_rank, data)`.
    pub fn recv_f64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<f64>)> {
        let (src, payload) = self.recv_payload(source, tag)?;
        Ok((src, payload.into_f64()?))
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// The shared rendezvous: post, wait for every live participant, then
    /// emulate the modelled latency. Returns the contribution list in rank
    /// order.
    fn collective_exchange(
        &mut self,
        contribution: Vec<f64>,
        reduce_elems: usize,
    ) -> Result<Vec<Vec<f64>>> {
        self.failure_point()?;
        let key = SlotKey {
            epoch: self.epoch,
            comm_id: self.comm_id,
            kind: SlotKind::Collective,
            seq: self.seq,
        };
        self.seq += 1;
        let expected = self.size();
        let bytes = contribution.len() * std::mem::size_of::<f64>();
        let cost = self
            .world
            .config
            .emulate
            .collective_cost(expected, bytes, reduce_elems);
        self.world
            .engine
            .post(key, self.rank(), expected, contribution, 0.0, 0.0)?;
        let result = self
            .world
            .engine
            .wait(key, &self.world.health, self.acked_generation)?;
        self.collectives += 1;
        self.emulate_wait(cost);
        Ok(result.contributions)
    }

    /// Block until every rank of the communicator arrives.
    pub fn barrier(&mut self) -> Result<()> {
        self.collective_exchange(Vec::new(), 0)?;
        Ok(())
    }

    /// Element-wise reduction of `data` across all ranks, folded in
    /// ascending rank order (bit-identical to the simulator backend).
    pub fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>> {
        let contributions = self.collective_exchange(data.to_vec(), data.len())?;
        Ok(op.reduce_all(&contributions))
    }

    /// Scalar reduction across all ranks.
    pub fn allreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<f64> {
        Ok(self.allreduce(op, &[value])?[0])
    }

    /// Sum a local partial across all ranks.
    pub fn global_dot(&mut self, local_partial: f64) -> Result<f64> {
        self.allreduce_scalar(ReduceOp::Sum, local_partial)
    }

    /// Gather every rank's contribution, indexed by rank.
    pub fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>> {
        self.collective_exchange(data.to_vec(), 0)
    }

    /// Start a nonblocking element-wise reduction. The emulated latency
    /// window opens now; [`wait_vector`](Self::wait_vector) charges only
    /// whatever local work has not overlapped.
    pub fn iallreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<ThreadPending> {
        self.failure_point()?;
        let key = SlotKey {
            epoch: self.epoch,
            comm_id: self.comm_id,
            kind: SlotKind::Collective,
            seq: self.seq,
        };
        self.seq += 1;
        let expected = self.size();
        let bytes = std::mem::size_of_val(data);
        let cost = self
            .world
            .config
            .emulate
            .collective_cost(expected, bytes, data.len());
        self.world
            .engine
            .post(key, self.rank(), expected, data.to_vec(), 0.0, 0.0)?;
        Ok(ThreadPending {
            key,
            op,
            posted_at: Instant::now(),
            cost,
        })
    }

    /// Complete a nonblocking reduction: wait for the real rendezvous, then
    /// charge the unhidden remainder of the emulated latency window.
    pub fn wait_vector(&mut self, pending: ThreadPending) -> Result<Vec<f64>> {
        let result =
            self.world
                .engine
                .wait(pending.key, &self.world.health, self.acked_generation)?;
        self.collectives += 1;
        let remaining = pending.cost - pending.posted_at.elapsed().as_secs_f64();
        self.emulate_wait(remaining);
        Ok(pending.op.reduce_all(&result.contributions))
    }

    // ------------------------------------------------------------------
    // Persistent store (LFLR)
    // ------------------------------------------------------------------

    /// Store a value in this rank's persistent partition (survives this
    /// rank's death; charged at the checkpoint bandwidth).
    pub fn persist(&mut self, key: &str, value: impl Into<Stored>) -> Result<()> {
        let value = value.into();
        let bytes = value.byte_len();
        self.world.persistent.put(self.world_rank, key, value)?;
        let dt = self.world.config.checkpoint_seconds_per_byte * bytes as f64;
        if dt > 0.0 {
            Self::burn(dt);
            self.emulated_compute += dt;
        }
        Ok(())
    }

    /// Read a value from `rank`'s persistent partition.
    pub fn restore(&mut self, rank: usize, key: &str) -> Result<Stored> {
        let world_rank = self.to_world(rank)?;
        let value = self.world.persistent.get(world_rank, key)?;
        let dt = self.world.config.checkpoint_seconds_per_byte * value.byte_len() as f64;
        if dt > 0.0 {
            Self::burn(dt);
            self.emulated_compute += dt;
        }
        Ok(value)
    }

    /// Remove a key from this rank's persistent partition (no-op if absent).
    pub fn unpersist(&mut self, key: &str) {
        self.world.persistent.remove(self.world_rank, key);
    }

    /// Does `rank`'s persistent partition contain `key`?
    pub fn persisted(&self, rank: usize, key: &str) -> bool {
        match self.to_world(rank) {
            Ok(world_rank) => self.world.persistent.contains(world_rank, key),
            Err(_) => false,
        }
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Participate in the post-failure recovery rendezvous (ReplaceRank
    /// policy). Same protocol as the simulator's
    /// [`Comm::recovery_rendezvous`](crate::comm::Comm::recovery_rendezvous):
    /// all world ranks meet, agree (min) on `proposal`, advance to a fresh
    /// epoch, reset collective sequencing.
    pub fn recovery_rendezvous(&mut self, proposal: f64) -> Result<RecoveryInfo> {
        let generation = self.world.health.generation();
        self.acked_generation = generation;
        let expected = self.world.size;
        let key = SlotKey {
            epoch: 0,
            comm_id: 0,
            kind: SlotKind::Recovery,
            seq: generation,
        };
        self.world
            .engine
            .post(key, self.world_rank, expected, vec![proposal], 0.0, 0.0)?;
        let result = self
            .world
            .engine
            .wait(key, &self.world.health, generation)?;
        let agreed = result
            .contributions
            .iter()
            .filter_map(|c| c.first().copied())
            .fold(f64::INFINITY, f64::min);
        self.epoch = self.world.health.complete_recovery(generation);
        self.world.engine.purge_older_than(self.epoch);
        self.world.mailboxes[self.world_rank].purge_older_than(self.epoch);
        self.seq = 0;
        self.comm_id = 0;
        self.group = None;
        self.recoveries += 1;
        let cost = self.world.config.emulate.collective_cost(expected, 16, 2);
        self.emulate_recovery(cost);
        Ok(RecoveryInfo {
            generation,
            epoch: self.epoch,
            failed_ranks: self.world.health.failed_ranks(),
            agreed: if agreed.is_finite() { agreed } else { proposal },
            completed_at: self.now(),
        })
    }

    /// Rebuild the communicator without the failed ranks (Shrink policy).
    pub fn shrink(&mut self) -> Result<ShrinkInfo> {
        let generation = self.world.health.generation();
        self.acked_generation = generation;
        let alive = self.world.health.alive_ranks();
        let expected = alive.len();
        let my_index = alive
            .iter()
            .position(|&r| r == self.world_rank)
            .expect("a dead rank cannot call shrink");
        let key = SlotKey {
            epoch: 0,
            comm_id: self.comm_id,
            kind: SlotKind::Shrink,
            seq: generation,
        };
        self.world
            .engine
            .post(key, my_index, expected, Vec::new(), 0.0, 0.0)?;
        let _ = self
            .world
            .engine
            .wait(key, &self.world.health, generation)?;
        self.epoch = self.world.health.complete_recovery(generation);
        self.world.engine.purge_older_than(self.epoch);
        self.world.mailboxes[self.world_rank].purge_older_than(self.epoch);
        self.seq = 0;
        self.comm_id = 1_000 + generation;
        self.group = Some(alive.clone());
        self.recoveries += 1;
        let cost = self
            .world
            .config
            .emulate
            .collective_cost(expected.max(1), 16, 1);
        self.emulate_recovery(cost);
        Ok(ShrinkInfo {
            new_rank: my_index,
            new_size: expected,
            failed_ranks: self.world.health.failed_ranks(),
            epoch: self.epoch,
        })
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Snapshot of this rank's statistics. `virtual_time` holds the wall
    /// seconds since job start; the time categories hold the *emulated*
    /// components (the rest is real execution).
    pub fn snapshot_stats(&self) -> RankStats {
        RankStats {
            rank: self.world_rank,
            incarnation: self.incarnation,
            virtual_time: self.now(),
            compute_time: self.emulated_compute,
            comm_wait_time: self.emulated_wait,
            noise_time: 0.0,
            recovery_time: self.emulated_recovery,
            messages_sent: self.messages_sent,
            bytes_sent: self.bytes_sent,
            collectives: self.collectives,
            recoveries: self.recoveries,
            checkpoint_bytes: 0,
            check_flops: self.check_flops,
        }
    }
}

impl crate::backend::CommBackend for ThreadComm {
    type Pending = ThreadPending;

    fn rank(&self) -> usize {
        ThreadComm::rank(self)
    }
    fn size(&self) -> usize {
        ThreadComm::size(self)
    }
    fn world_rank(&self) -> usize {
        ThreadComm::world_rank(self)
    }
    fn world_size(&self) -> usize {
        ThreadComm::world_size(self)
    }
    fn incarnation(&self) -> u64 {
        ThreadComm::incarnation(self)
    }
    fn recoveries(&self) -> u64 {
        ThreadComm::recoveries(self)
    }

    fn now(&self) -> f64 {
        ThreadComm::now(self)
    }
    fn advance(&mut self, seconds: f64) {
        ThreadComm::advance(self, seconds)
    }
    fn charge_flops(&mut self, flops: usize) {
        ThreadComm::charge_flops(self, flops)
    }
    fn record_check_flops(&mut self, flops: usize) {
        ThreadComm::record_check_flops(self, flops)
    }
    fn failure_point(&mut self) -> Result<()> {
        ThreadComm::failure_point(self)
    }
    fn check_health(&self) -> Result<()> {
        ThreadComm::check_health(self)
    }

    fn send_f64(&mut self, dest: usize, tag: i32, data: &[f64]) -> Result<()> {
        ThreadComm::send_f64(self, dest, tag, data)
    }
    fn recv_f64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<f64>)> {
        ThreadComm::recv_f64(self, source, tag)
    }

    fn barrier(&mut self) -> Result<()> {
        ThreadComm::barrier(self)
    }
    fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>> {
        ThreadComm::allreduce(self, op, data)
    }
    fn allreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<f64> {
        ThreadComm::allreduce_scalar(self, op, value)
    }
    fn global_dot(&mut self, local_partial: f64) -> Result<f64> {
        ThreadComm::global_dot(self, local_partial)
    }
    fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>> {
        ThreadComm::allgather(self, data)
    }
    fn iallreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<ThreadPending> {
        ThreadComm::iallreduce(self, op, data)
    }
    fn wait_vector(&mut self, pending: ThreadPending) -> Result<Vec<f64>> {
        ThreadComm::wait_vector(self, pending)
    }

    fn persist(&mut self, key: &str, value: Stored) -> Result<()> {
        ThreadComm::persist(self, key, value)
    }
    fn restore(&mut self, rank: usize, key: &str) -> Result<Stored> {
        ThreadComm::restore(self, rank, key)
    }
    fn unpersist(&mut self, key: &str) {
        ThreadComm::unpersist(self, key)
    }
    fn persisted(&self, rank: usize, key: &str) -> bool {
        ThreadComm::persisted(self, rank, key)
    }

    fn recovery_rendezvous(&mut self, proposal: f64) -> Result<RecoveryInfo> {
        ThreadComm::recovery_rendezvous(self, proposal)
    }
    fn shrink(&mut self) -> Result<ShrinkInfo> {
        ThreadComm::shrink(self)
    }
}

enum RankExit<R> {
    Done {
        rank: usize,
        result: Result<R>,
        stats: RankStats,
    },
    Killed(RankKilled),
    Panicked {
        rank: usize,
        message: String,
    },
}

/// The real-threads job launcher: the wall-clock counterpart of
/// [`Runtime`](crate::launcher::Runtime).
///
/// ```
/// use resilient_runtime::{ReduceOp, ThreadConfig, ThreadRuntime};
///
/// let runtime = ThreadRuntime::new(ThreadConfig::fast());
/// let job = runtime.run(4, |comm| {
///     comm.allreduce_scalar(ReduceOp::Sum, (comm.rank() + 1) as f64)
/// });
/// assert_eq!(job.unwrap_all(), vec![10.0; 4]);
/// ```
pub struct ThreadRuntime {
    config: ThreadConfig,
    injector: Option<Arc<dyn DeathInjector>>,
}

impl ThreadRuntime {
    /// Create a launcher with the given configuration and no fault injector.
    pub fn new(config: ThreadConfig) -> Self {
        install_panic_hook();
        Self {
            config,
            injector: None,
        }
    }

    /// Builder-style: attach a fault injector consulted at failure points.
    pub fn with_injector(mut self, injector: Arc<dyn DeathInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The configuration this launcher uses.
    pub fn config(&self) -> &ThreadConfig {
        &self.config
    }

    /// Run `f` on `size` rank threads and collect results, statistics and
    /// failure events. Ranks killed by the injector are respawned under
    /// [`FailurePolicy::ReplaceRank`], exactly like the simulator launcher.
    pub fn run<R, F>(&self, size: usize, f: F) -> JobResult<R>
    where
        R: Send + 'static,
        F: Fn(&mut ThreadComm) -> Result<R> + Send + Sync + 'static,
    {
        assert!(size > 0, "cannot run a job with zero ranks");
        let world = ThreadWorld::new(self.config.clone(), size, self.injector.clone());
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<RankExit<R>>();

        let mut handles = Vec::new();
        for rank in 0..size {
            handles.push(spawn_rank(
                Arc::clone(&world),
                Arc::clone(&f),
                tx.clone(),
                rank,
                0,
            ));
        }

        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        let mut errors: Vec<Option<RuntimeError>> = (0..size).map(|_| None).collect();
        let mut final_stats: Vec<RankStats> = (0..size)
            .map(|rank| RankStats {
                rank,
                ..RankStats::default()
            })
            .collect();
        let mut incarnations = vec![0u64; size];
        let mut remaining = size;

        while remaining > 0 {
            match rx.recv().expect("rank threads cannot all disappear") {
                RankExit::Done {
                    rank,
                    result,
                    stats,
                } => {
                    final_stats[rank] = stats;
                    match result {
                        Ok(v) => results[rank] = Some(v),
                        Err(e) => errors[rank] = Some(e),
                    }
                    remaining -= 1;
                }
                RankExit::Killed(info) => {
                    let respawn = self.config.policy == FailurePolicy::ReplaceRank
                        && incarnations[info.rank] + 1 < MAX_INCARNATIONS;
                    if respawn {
                        incarnations[info.rank] += 1;
                        let incarnation = world.health.record_replacement(info.rank);
                        handles.push(spawn_rank(
                            Arc::clone(&world),
                            Arc::clone(&f),
                            tx.clone(),
                            info.rank,
                            incarnation,
                        ));
                    } else {
                        errors[info.rank] = Some(RuntimeError::ProcFailed {
                            rank: info.rank,
                            generation: info.generation,
                        });
                        remaining -= 1;
                    }
                }
                RankExit::Panicked { rank, message } => {
                    errors[rank] = Some(RuntimeError::InvalidArgument(format!(
                        "rank {rank} panicked: {message}"
                    )));
                    remaining -= 1;
                }
            }
        }
        drop(tx);
        for h in handles {
            let _ = h.join();
        }

        let failures = world.health.events();
        let aborted = world.health.is_aborted();
        let mut all_stats = world.lost_stats.lock().clone();
        all_stats.extend(final_stats.iter().cloned());
        let job = JobStats::aggregate(&final_stats, failures.len());
        JobResult {
            results,
            errors,
            stats: final_stats,
            all_stats,
            failures,
            aborted,
            job,
        }
    }
}

fn spawn_rank<R, F>(
    world: Arc<ThreadWorld>,
    f: Arc<F>,
    tx: mpsc::Sender<RankExit<R>>,
    rank: usize,
    incarnation: u64,
) -> thread::JoinHandle<()>
where
    R: Send + 'static,
    F: Fn(&mut ThreadComm) -> Result<R> + Send + Sync + 'static,
{
    thread::Builder::new()
        .name(format!("trank-{rank}.{incarnation}"))
        .spawn(move || {
            let replacement_cost = world.config.replacement_cost;
            let mut comm = ThreadComm::new(world, rank, incarnation);
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                if incarnation > 0 {
                    // A real replacement process would spend this long being
                    // spawned; survivors waiting for the rendezvous pay it
                    // implicitly by really waiting.
                    comm.emulate_recovery(replacement_cost);
                }
                f(&mut comm)
            }));
            let exit = match outcome {
                Ok(result) => RankExit::Done {
                    rank,
                    result,
                    stats: comm.snapshot_stats(),
                },
                Err(payload) => match payload.downcast_ref::<RankKilled>() {
                    Some(info) => RankExit::Killed(*info),
                    None => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".to_string());
                        RankExit::Panicked { rank, message }
                    }
                },
            };
            let _ = tx.send(exit);
        })
        .expect("failed to spawn rank thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_matches_simulator_fold_order() {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let r = rt.run(5, |comm| {
            comm.allreduce(ReduceOp::Sum, &[comm.rank() as f64, 1.0])
        });
        for v in r.unwrap_all() {
            assert_eq!(v, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn collectives_and_gather() {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let r = rt.run(3, |comm| {
            comm.barrier()?;
            let all = comm.allgather(&[comm.rank() as f64 * 2.0])?;
            let min = comm.allreduce_scalar(ReduceOp::Min, comm.rank() as f64)?;
            Ok((all, min))
        });
        for (all, min) in r.unwrap_all() {
            assert_eq!(all, vec![vec![0.0], vec![2.0], vec![4.0]]);
            assert_eq!(min, 0.0);
        }
    }

    #[test]
    fn ring_pass_point_to_point() {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let n = 4;
        let r = rt.run(n, move |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_f64(next, 0, &[comm.rank() as f64])?;
            let (_, v) = comm.recv_f64(prev, 0)?;
            Ok(v[0])
        });
        let vals = r.unwrap_all();
        for (rank, v) in vals.iter().enumerate() {
            assert_eq!(*v, ((rank + n - 1) % n) as f64);
        }
    }

    #[test]
    fn nonblocking_overlap_charges_less_than_blocking() {
        // With an emulated 20 ms collective and 20 ms of overlapping local
        // work, the nonblocking wait should charge (almost) nothing.
        let cfg = ThreadConfig::fast().with_latency(LatencyModel {
            alpha: 20.0e-3,
            beta: 0.0,
            gamma: 0.0,
        });
        let rt = ThreadRuntime::new(cfg);
        let r = rt.run(2, |comm| {
            let pending = comm.iallreduce(ReduceOp::Sum, &[1.0])?;
            comm.advance(25.0e-3);
            let v = pending;
            let out = comm.wait_vector(v)?;
            assert_eq!(out, vec![2.0]);
            Ok(comm.snapshot_stats().comm_wait_time)
        });
        for wait in r.unwrap_all() {
            assert!(
                wait < 10.0e-3,
                "overlapped wait should be mostly hidden, got {wait}"
            );
        }
    }

    #[test]
    fn persist_survives_and_restores() {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let r = rt.run(2, |comm| {
            comm.persist("x", vec![comm.rank() as f64])?;
            comm.barrier()?;
            let peer = 1 - comm.rank();
            let v = comm.restore(peer, "x")?.into_f64()?;
            Ok(v[0])
        });
        assert_eq!(r.unwrap_all(), vec![1.0, 0.0]);
    }

    struct KillOnceAtCollective {
        rank: usize,
        at: u64,
    }
    impl DeathInjector for KillOnceAtCollective {
        fn should_die(&self, ctx: &DeathContext) -> bool {
            ctx.world_rank == self.rank && ctx.incarnation == 0 && ctx.collectives >= self.at
        }
    }

    #[test]
    fn injected_death_is_replaced_and_recovered() {
        let rt = ThreadRuntime::new(ThreadConfig::fast())
            .with_injector(Arc::new(KillOnceAtCollective { rank: 1, at: 3 }));
        let r = rt.run(3, |comm| {
            let mut step = if comm.is_replacement() {
                let info = comm.recovery_rendezvous(f64::INFINITY)?;
                info.agreed as usize
            } else {
                0
            };
            while step < 10 {
                match comm.barrier() {
                    Ok(()) => step += 1,
                    Err(e) if e.is_failure() => {
                        let info = comm.recovery_rendezvous(step as f64)?;
                        step = info.agreed as usize;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((comm.rank(), step, comm.incarnation()))
        });
        assert!(!r.aborted);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].rank, 1);
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        for (rank, step, incarnation) in r.unwrap_all() {
            assert_eq!(step, 10);
            if rank == 1 {
                assert_eq!(incarnation, 1, "rank 1 must be the replacement");
            }
        }
    }

    #[test]
    fn shrink_policy_rebuilds_smaller_comm() {
        let rt = ThreadRuntime::new(ThreadConfig::fast().with_policy(FailurePolicy::Shrink))
            .with_injector(Arc::new(KillOnceAtCollective { rank: 0, at: 2 }));
        let r = rt.run(3, |comm| {
            let mut sum = 0.0;
            let mut step = 0;
            while step < 6 {
                match comm.allreduce_scalar(ReduceOp::Sum, 1.0) {
                    Ok(s) => {
                        sum = s;
                        step += 1;
                    }
                    Err(e) if e.is_failure() => {
                        let info = comm.shrink()?;
                        assert_eq!(info.new_size, 2);
                        assert_eq!(info.failed_ranks, vec![0]);
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((comm.rank(), comm.size(), sum))
        });
        assert!(r.results[0].is_none(), "rank 0 died and is not replaced");
        for rank in 1..3 {
            let (new_rank, new_size, sum) = r.results[rank].expect("survivor finishes");
            assert_eq!(new_size, 2);
            assert!(new_rank < 2);
            assert_eq!(sum, 2.0, "post-shrink allreduce spans 2 ranks");
        }
    }

    #[test]
    fn persistent_store_survives_injected_death() {
        let rt = ThreadRuntime::new(ThreadConfig::fast())
            .with_injector(Arc::new(KillOnceAtCollective { rank: 1, at: 2 }));
        let r = rt.run(2, |comm| {
            if comm.is_replacement() {
                comm.recovery_rendezvous(0.0)?;
                let v = comm.restore(comm.rank(), "state")?.into_f64()?;
                assert_eq!(v, vec![101.0]);
            } else {
                comm.persist("state", vec![comm.rank() as f64 + 100.0])?;
            }
            let mut step = 0;
            while step < 8 {
                match comm.barrier() {
                    Ok(()) => step += 1,
                    Err(e) if e.is_failure() => {
                        let info = comm.recovery_rendezvous(0.0)?;
                        step = info.agreed as usize;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(comm.incarnation())
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1);
    }

    #[test]
    fn stats_count_messages_and_collectives() {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let r = rt.run(2, |comm| {
            comm.send_f64(1 - comm.rank(), 0, &[1.0, 2.0])?;
            let _ = comm.recv_f64(1 - comm.rank(), 0)?;
            comm.barrier()?;
            Ok(())
        });
        assert!(r.all_ok());
        assert_eq!(r.job.total_messages, 2);
        assert_eq!(r.job.total_bytes, 32);
        assert_eq!(r.job.total_collectives, 2);
    }
}
