//! The shared health board: which ranks are alive, failure generations and
//! communication epochs.
//!
//! This is the runtime's analogue of the failure-detection service that ULFM
//! layers over MPI. Every communication operation consults it; failure
//! injection updates it; the recovery rendezvous advances the epoch stored
//! here.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::config::FailurePolicy;
use crate::error::{Result, RuntimeError};

/// A recorded process-failure event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Rank that failed.
    pub rank: usize,
    /// Incarnation of the rank that failed (0 = original process).
    pub incarnation: u64,
    /// Virtual time at which the failure occurred.
    pub time: f64,
    /// Failure generation assigned to this event (1-based).
    pub generation: u64,
}

#[derive(Debug)]
struct HealthState {
    alive: Vec<bool>,
    incarnation: Vec<u64>,
    /// Number of failures observed so far; doubles as the current generation.
    generation: u64,
    /// Current communication epoch; bumped by recovery rendezvous / shrink.
    epoch: u64,
    /// Whether the whole job has been aborted (AbortJob policy).
    aborted: bool,
    /// Whether the communicator is currently revoked (a failure happened and
    /// recovery has not completed yet).
    revoked: bool,
    events: Vec<FailureEvent>,
    /// Virtual time of the most recent failure (used to start replacements).
    last_failure_time: f64,
}

/// Shared, thread-safe health board for one job.
#[derive(Debug)]
pub struct HealthBoard {
    state: Mutex<HealthState>,
    policy: FailurePolicy,
    size: usize,
}

impl HealthBoard {
    /// Create a health board for `size` ranks under the given failure policy.
    pub fn new(size: usize, policy: FailurePolicy) -> Self {
        Self {
            state: Mutex::new(HealthState {
                alive: vec![true; size],
                incarnation: vec![0; size],
                generation: 0,
                epoch: 0,
                aborted: false,
                revoked: false,
                events: Vec::new(),
                last_failure_time: 0.0,
            }),
            policy,
            size,
        }
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The configured failure policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Record the failure of `rank` (incarnation `incarnation`) at virtual
    /// time `time`. Returns the generation assigned to the event.
    ///
    /// Under [`FailurePolicy::AbortJob`] this also marks the job aborted;
    /// under the resilient policies it revokes the communicator so pending
    /// operations are interrupted and survivors learn about the failure.
    pub fn record_failure(&self, rank: usize, incarnation: u64, time: f64) -> u64 {
        let mut s = self.state.lock();
        s.generation += 1;
        let generation = s.generation;
        if rank < s.alive.len() {
            s.alive[rank] = false;
        }
        s.last_failure_time = s.last_failure_time.max(time);
        s.events.push(FailureEvent {
            rank,
            incarnation,
            time,
            generation,
        });
        match self.policy {
            FailurePolicy::AbortJob => s.aborted = true,
            FailurePolicy::ReplaceRank | FailurePolicy::Shrink => s.revoked = true,
        }
        generation
    }

    /// Mark `rank` alive again with a new incarnation number (replacement
    /// spawned). Returns the new incarnation.
    pub fn record_replacement(&self, rank: usize) -> u64 {
        let mut s = self.state.lock();
        if rank < s.alive.len() {
            s.alive[rank] = true;
            s.incarnation[rank] += 1;
            s.incarnation[rank]
        } else {
            0
        }
    }

    /// Complete a recovery: bump the communication epoch and clear the
    /// revoked flag. Returns the new epoch. Idempotent per generation: the
    /// caller passes the generation it recovered from, and the epoch is only
    /// bumped if it has not already been bumped for that generation.
    pub fn complete_recovery(&self, generation: u64) -> u64 {
        let mut s = self.state.lock();
        if s.epoch < generation {
            s.epoch = generation;
        }
        s.revoked = false;
        s.epoch
    }

    /// Current communication epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Current failure generation (number of failures so far).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Is the given rank currently alive?
    pub fn is_alive(&self, rank: usize) -> bool {
        let s = self.state.lock();
        rank < s.alive.len() && s.alive[rank]
    }

    /// Ranks currently alive, in ascending order.
    pub fn alive_ranks(&self) -> Vec<usize> {
        let s = self.state.lock();
        (0..s.alive.len()).filter(|&r| s.alive[r]).collect()
    }

    /// Ranks that have ever failed (deduplicated, ascending).
    pub fn failed_ranks(&self) -> Vec<usize> {
        let s = self.state.lock();
        let mut out: Vec<usize> = s.events.iter().map(|e| e.rank).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Has the job been aborted?
    pub fn is_aborted(&self) -> bool {
        self.state.lock().aborted
    }

    /// Abort the job explicitly (used by drivers that decide to give up).
    pub fn abort(&self) {
        self.state.lock().aborted = true;
    }

    /// Is the communicator currently revoked?
    pub fn is_revoked(&self) -> bool {
        self.state.lock().revoked
    }

    /// Total number of failure events recorded.
    pub fn failure_count(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Copy of the failure-event log.
    pub fn events(&self) -> Vec<FailureEvent> {
        self.state.lock().events.clone()
    }

    /// Virtual time of the most recent failure.
    pub fn last_failure_time(&self) -> f64 {
        self.state.lock().last_failure_time
    }

    /// Current incarnation number of `rank`.
    pub fn incarnation(&self, rank: usize) -> u64 {
        let s = self.state.lock();
        s.incarnation.get(rank).copied().unwrap_or(0)
    }

    /// Health check used by communication operations of the rank that has
    /// acknowledged failures up to `acked_generation`.
    ///
    /// * If the job is aborted: [`RuntimeError::JobAborted`].
    /// * If a failure newer than `acked_generation` exists (resilient
    ///   policies): [`RuntimeError::Revoked`] so the caller drops into its
    ///   recovery path.
    /// * Otherwise `Ok(())`.
    pub fn check(&self, acked_generation: u64) -> Result<()> {
        let s = self.state.lock();
        if s.aborted {
            return Err(RuntimeError::JobAborted {
                generation: s.generation,
            });
        }
        match self.policy {
            FailurePolicy::AbortJob => Ok(()),
            FailurePolicy::ReplaceRank | FailurePolicy::Shrink => {
                if s.generation > acked_generation {
                    Err(RuntimeError::Revoked {
                        generation: s.generation,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_all_alive() {
        let h = HealthBoard::new(4, FailurePolicy::ReplaceRank);
        assert_eq!(h.alive_ranks(), vec![0, 1, 2, 3]);
        assert_eq!(h.generation(), 0);
        assert_eq!(h.epoch(), 0);
        assert!(!h.is_aborted());
        assert!(!h.is_revoked());
        assert!(h.check(0).is_ok());
    }

    #[test]
    fn abort_policy_aborts_job() {
        let h = HealthBoard::new(4, FailurePolicy::AbortJob);
        let generation = h.record_failure(2, 0, 1.5);
        assert_eq!(generation, 1);
        assert!(h.is_aborted());
        assert!(matches!(
            h.check(0),
            Err(RuntimeError::JobAborted { generation: 1 })
        ));
        assert_eq!(h.failed_ranks(), vec![2]);
        assert!(!h.is_alive(2));
        assert!(h.is_alive(1));
    }

    #[test]
    fn replace_policy_revokes_until_recovery() {
        let h = HealthBoard::new(4, FailurePolicy::ReplaceRank);
        let generation = h.record_failure(1, 0, 2.0);
        assert!(h.is_revoked());
        assert!(matches!(
            h.check(0),
            Err(RuntimeError::Revoked { generation: 1 })
        ));
        // A rank that has acknowledged the failure proceeds.
        assert!(h.check(generation).is_ok());
        let inc = h.record_replacement(1);
        assert_eq!(inc, 1);
        assert!(h.is_alive(1));
        let epoch = h.complete_recovery(generation);
        assert_eq!(epoch, 1);
        assert!(!h.is_revoked());
        assert!(h.check(1).is_ok());
    }

    #[test]
    fn recovery_epoch_is_idempotent() {
        let h = HealthBoard::new(2, FailurePolicy::ReplaceRank);
        let g = h.record_failure(0, 0, 1.0);
        assert_eq!(h.complete_recovery(g), 1);
        assert_eq!(
            h.complete_recovery(g),
            1,
            "second completion must not bump epoch again"
        );
    }

    #[test]
    fn multiple_failures_increase_generation() {
        let h = HealthBoard::new(8, FailurePolicy::Shrink);
        assert_eq!(h.record_failure(3, 0, 1.0), 1);
        assert_eq!(h.record_failure(5, 0, 2.0), 2);
        assert_eq!(h.failure_count(), 2);
        assert_eq!(h.failed_ranks(), vec![3, 5]);
        assert_eq!(h.alive_ranks(), vec![0, 1, 2, 4, 6, 7]);
        assert!((h.last_failure_time() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn events_carry_incarnation() {
        let h = HealthBoard::new(2, FailurePolicy::ReplaceRank);
        h.record_failure(1, 0, 1.0);
        h.record_replacement(1);
        h.record_failure(1, 1, 3.0);
        let ev = h.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].incarnation, 1);
        assert_eq!(h.incarnation(1), 1);
    }

    #[test]
    fn explicit_abort() {
        let h = HealthBoard::new(2, FailurePolicy::ReplaceRank);
        h.abort();
        assert!(h.check(0).is_err());
    }
}
