//! Offline vendored `serde` facade.
//!
//! The workspace decorates config and stats types with
//! `#[derive(Serialize, Deserialize)]` so they can be exported once the real
//! `serde` is available, but nothing in-tree actually serializes (there is no
//! `serde_json` or similar in the dependency graph). This facade keeps those
//! derives compiling offline: the derive macros are re-exported from a local
//! proc-macro crate and expand to nothing, and the traits exist purely as
//! names. Swapping in the real crates.io `serde` is a manifest-only change.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
