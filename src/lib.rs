//! Workspace root crate: re-exports the suite for examples and integration tests.
pub use resilience as core;
pub use resilient_faults as faults;
pub use resilient_linalg as linalg;
pub use resilient_pde as pde;
pub use resilient_runtime as runtime;
