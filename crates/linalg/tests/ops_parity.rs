//! Bit-parity pins for the device-op layer.
//!
//! The SIMD backend is *specified* to be bit-identical to the scalar
//! reference (the 4-lane reassociation of `vector::dot` is part of the
//! algorithm, not an implementation detail), and the SELL-C-σ layout is
//! specified to be a lossless permutation of CSR whose SpMV performs the
//! same per-row left-to-right accumulation. These properties are what let
//! the solver crates swap backends and layouts freely without perturbing
//! convergence histories; this suite pins them with `to_bits` equality on
//! random inputs, including non-finite specials.
//!
//! On machines without AVX2 `simd_ops()` falls back to the scalar backend
//! and the cross-backend assertions hold trivially — the suite still
//! exercises the SELL and `solve_with` pins.

use proptest::prelude::*;
use resilient_linalg::{
    scalar_ops, simd_ops, CooMatrix, CsrMatrix, DenseMatrix, LuFactors, SellMatrix,
};

fn any_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len..=len)
}

/// Sprinkle ±∞ into a finite vector according to per-element tags:
/// bit-parity must hold through non-finite arithmetic too (a NaN or ∞
/// produced by identical operation order has identical bits).
fn with_specials(finite: &[f64], tags: &[u8]) -> Vec<f64> {
    finite
        .iter()
        .zip(tags)
        .map(|(&v, &t)| match t {
            8 => f64::INFINITY,
            9 => f64::NEG_INFINITY,
            _ => v,
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Random square CSR matrix with controllable shape irregularity.
fn ragged_csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(i, j, v) in entries {
        coo.push(i % n, j % n, v);
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 96 }))]

    /// Every level-1 op is `to_bits`-identical across backends, at lengths
    /// that cover empty, sub-lane, exact-lane and ragged-tail cases.
    #[test]
    fn level1_ops_bitwise_identical(
        len in 0usize..130,
        x0 in any_vec(130),
        y0 in any_vec(130),
        a in -1e3f64..1e3,
        b in -1e3f64..1e3,
    ) {
        let (s, v) = (scalar_ops(), simd_ops());
        let x = &x0[..len];
        let y = &y0[..len];

        prop_assert_eq!(s.dot(x, y).to_bits(), v.dot(x, y).to_bits());
        prop_assert_eq!(s.nrm2(x).to_bits(), v.nrm2(x).to_bits());
        prop_assert_eq!(
            s.msub_seq(a, x, y).to_bits(),
            v.msub_seq(a, x, y).to_bits()
        );

        let mut ys = y.to_vec();
        let mut yv = y.to_vec();
        s.axpy(a, x, &mut ys);
        v.axpy(a, x, &mut yv);
        prop_assert_eq!(bits(&ys), bits(&yv));

        let mut xs = x.to_vec();
        let mut xv = x.to_vec();
        s.scale(a, &mut xs);
        v.scale(a, &mut xv);
        prop_assert_eq!(bits(&xs), bits(&xv));

        let mut ys = y.to_vec();
        let mut yv = y.to_vec();
        s.xpby(x, b, &mut ys);
        v.xpby(x, b, &mut yv);
        prop_assert_eq!(bits(&ys), bits(&yv));

        let mut ws = vec![0.0; len];
        let mut wv = vec![0.0; len];
        s.waxpby_into(a, x, b, y, &mut ws);
        v.waxpby_into(a, x, b, y, &mut wv);
        prop_assert_eq!(bits(&ws), bits(&wv));
    }

    /// The fused multi-dot used by the pipelined kernels matches both the
    /// scalar backend and k separate dots, bitwise.
    #[test]
    fn dot_pairs_bitwise_identical(
        len in 0usize..90,
        k in 0usize..12,
        xs in prop::collection::vec(any_vec(90), 12),
        ys in prop::collection::vec(any_vec(90), 12),
    ) {
        let pairs: Vec<(&[f64], &[f64])> = (0..k)
            .map(|i| (&xs[i][..len], &ys[i][..len]))
            .collect();
        let mut out_s = vec![0.0; k];
        let mut out_v = vec![0.0; k];
        scalar_ops().dot_pairs(&pairs, &mut out_s);
        simd_ops().dot_pairs(&pairs, &mut out_v);
        prop_assert_eq!(bits(&out_s), bits(&out_v));
        for i in 0..k {
            prop_assert_eq!(out_s[i].to_bits(), scalar_ops().dot(pairs[i].0, pairs[i].1).to_bits());
        }
    }

    /// Non-finite inputs propagate identically through both backends: a NaN
    /// or ±∞ produced by the same operation order has the same bits.
    #[test]
    fn specials_propagate_bitwise(
        len in 0usize..70,
        xf in any_vec(70),
        yf in any_vec(70),
        xtags in prop::collection::vec(0u8..10, 70..=70),
        ytags in prop::collection::vec(0u8..10, 70..=70),
        a in prop::sample::select(vec![0.0f64, f64::INFINITY, -3.5, 2.0]),
    ) {
        let (s, v) = (scalar_ops(), simd_ops());
        let x0 = with_specials(&xf, &xtags);
        let y0 = with_specials(&yf, &ytags);
        let x = &x0[..len];
        let y = &y0[..len];
        prop_assert_eq!(s.dot(x, y).to_bits(), v.dot(x, y).to_bits());
        let mut ys = y.to_vec();
        let mut yv = y.to_vec();
        s.axpy(a, x, &mut ys);
        v.axpy(a, x, &mut yv);
        prop_assert_eq!(bits(&ys), bits(&yv));
    }

    /// SELL-C-σ is a lossless re-layout: `from_csr ∘ to_csr` is the
    /// identity, and its SpMV is bit-identical to CSR's on both backends.
    #[test]
    fn sell_round_trip_and_spmv_parity(
        n in 1usize..24,
        entries in prop::collection::vec((0usize..24, 0usize..24, -10.0f64..10.0), 0..160),
        sigma in prop::sample::select(vec![1usize, 4, 8, 256]),
        x0 in any_vec(24),
    ) {
        let a = ragged_csr(n, &entries);
        let sell = SellMatrix::from_csr(&a, sigma);
        let back = sell.to_csr();
        prop_assert_eq!(back.to_dense(), a.to_dense());
        prop_assert_eq!(back.nnz(), a.nnz());

        let x = &x0[..n];
        let reference = a.spmv(x);
        for ops in [scalar_ops(), simd_ops()] {
            let mut y_sell = vec![0.0; n];
            ops.spmv_sell(&sell, x, &mut y_sell);
            prop_assert_eq!(bits(&y_sell), bits(&reference));
            let mut y_csr = vec![0.0; n];
            ops.spmv_csr(&a, x, &mut y_csr);
            prop_assert_eq!(bits(&y_csr), bits(&reference));
        }
    }

    /// `LuFactors::solve_with` (op-layer triangular solves, either backend)
    /// is bit-identical to the legacy `solve_into` reference.
    #[test]
    fn lu_solve_with_matches_solve_into(
        n in 1usize..12,
        raw in prop::collection::vec(-5.0f64..5.0, 144),
        b0 in any_vec(12),
    ) {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, raw[i * 12 + j]);
            }
            // Diagonal dominance keeps the factorisation well-conditioned.
            m.add_to(i, i, 25.0 * if raw[i * 12 + i] < 0.0 { -1.0 } else { 1.0 });
        }
        let lu = LuFactors::factor(&m);
        let b = &b0[..n];
        let mut x_ref = vec![0.0; n];
        lu.solve_into(b, &mut x_ref);
        for ops in [scalar_ops(), simd_ops()] {
            let mut x = vec![0.0; n];
            lu.solve_with(ops, b, &mut x);
            prop_assert_eq!(bits(&x), bits(&x_ref));
        }
    }
}
