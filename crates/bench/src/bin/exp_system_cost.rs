//! Experiment E9 — the paper's closing argument (§IV): resilient algorithms
//! let applications run effectively on *less reliable, cheaper* systems.
//! Sweeps the per-rank failure rate and compares total time to solution for
//! a CPR-only application versus an LFLR application on the same machine.

use resilience::lflr::{run_cpr, run_lflr, CprConfig};
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_pde::{ExplicitHeat, HeatProblem};
use resilient_runtime::{FailureConfig, FailurePolicy, LatencyModel, Runtime, RuntimeConfig};
use std::sync::Arc;

fn app(steps: usize) -> ExplicitHeat {
    ExplicitHeat {
        problem: HeatProblem::stable(256, 1.0),
        steps,
        persist_interval: 5,
        work_per_step: 5.0e-3,
    }
}

fn machine(mtbf_per_rank: f64, policy: FailurePolicy) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::fast().with_seed(31);
    cfg.latency = LatencyModel {
        alpha: 5.0e-6,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.checkpoint_seconds_per_byte = 2.0e-8;
    cfg.restart_cost = 1.0;
    cfg.replacement_cost = 0.05;
    cfg.failures = if mtbf_per_rank.is_finite() {
        FailureConfig::random(policy, mtbf_per_rank, 6)
    } else {
        FailureConfig::none()
    };
    cfg
}

fn main() {
    let ranks = 8;
    let steps = 80;
    let mut table = Table::new(
        "E9: total time to solution on machines of decreasing reliability (8 ranks, 80 steps)",
        &[
            "per-rank MTBF (s)",
            "CPR time",
            "CPR restarts",
            "LFLR time",
            "LFLR recoveries",
            "LFLR advantage",
        ],
    );
    for &mtbf in &[f64::INFINITY, 8.0, 4.0, 2.0, 1.0] {
        // CPR-only application.
        let cpr_report = run_cpr(
            &machine(mtbf, FailurePolicy::AbortJob),
            ranks,
            Arc::new(app(steps)),
            &CprConfig {
                checkpoint_interval: 5,
                max_restarts: 20,
            },
        );
        // LFLR application.
        let heat = app(steps);
        let rt = Runtime::new(machine(mtbf, FailurePolicy::ReplaceRank));
        let lflr = rt.run(ranks, move |comm| {
            let (report, _state) = run_lflr(comm, &heat)?;
            Ok(report.recoveries)
        });
        let lflr_ok = lflr.all_ok();
        let lflr_time = lflr.job.makespan;
        let recoveries = lflr.failures.len();
        let cpr_time = if cpr_report.completed {
            cpr_report.total_virtual_time
        } else {
            f64::INFINITY
        };
        table.row(vec![
            if mtbf.is_finite() {
                format!("{mtbf}")
            } else {
                "∞".into()
            },
            fmt_g(cpr_time),
            (cpr_report.attempts - 1).to_string(),
            if lflr_ok {
                fmt_g(lflr_time)
            } else {
                "failed".into()
            },
            recoveries.to_string(),
            fmt_ratio(cpr_time / lflr_time.max(1e-12)),
        ]);
    }
    table.emit("e9_system_cost");
}
