//! Experiment E1 — silent-data-corruption detection in GMRES (SkP, §III-A).
//!
//! Sweeps the flipped bit position of a single bit flip injected into one
//! SpMV output during a GMRES solve, and reports detection and outcome rates
//! for the skeptical solver versus the trusting baseline.

use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_linalg::poisson2d;

fn outcome_of(err: f64, converged: bool, tol: f64) -> &'static str {
    if !err.is_finite() {
        "diverged"
    } else if err <= tol * 100.0 {
        "correct"
    } else if converged {
        "silent-wrong"
    } else {
        "not-converged"
    }
}

fn main() {
    let a = poisson2d(20, 20);
    let n = a.nrows();
    let b = vec![1.0; n];
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(800)
        .with_restart(40);
    let trials_per_bit = 6;
    let bit_groups: Vec<(&str, Vec<u32>)> = vec![
        ("mantissa-low (0..26)", (0..27).step_by(9).collect()),
        ("mantissa-high (27..51)", (27..52).step_by(8).collect()),
        ("exponent (52..62)", (52..63).step_by(3).collect()),
        ("sign (63)", vec![63]),
    ];

    let mut table = Table::new(
        "E1: single bit flip in one SpMV of GMRES(40), 2-D Poisson n=400",
        &[
            "bit class",
            "trials",
            "skeptical detect%",
            "skeptical correct%",
            "trusting correct%",
            "check overhead",
        ],
    );

    for (label, bits) in &bit_groups {
        let mut injected = 0usize;
        let mut detected = 0usize;
        let mut skeptical_correct = 0usize;
        let mut trusting_correct = 0usize;
        let mut overhead = 0.0;
        let mut overhead_samples = 0usize;
        for &bit in bits {
            for trial in 0..trials_per_bit {
                let plan = InjectionPlan {
                    at_application: 3 + trial * 5,
                    target: FaultTarget::RandomElement,
                    bit: Some(bit),
                };
                let seed = 1000 + bit as u64 * 31 + trial as u64;
                // Skeptical run.
                let faulty = FaultyOperator::new(&a, Some(plan), seed);
                let (out, report) =
                    skeptical_gmres(&faulty, &b, None, &opts, &SkepticalConfig::default());
                if faulty.injection().is_none() {
                    continue;
                }
                injected += 1;
                if report.detections > 0 {
                    detected += 1;
                }
                let err = true_relative_residual(&a, &b, &out.x);
                if outcome_of(err, out.converged(), opts.tol) == "correct" {
                    skeptical_correct += 1;
                }
                overhead += report.check_flops as f64 / out.flops.max(1) as f64;
                overhead_samples += 1;
                // Trusting run on the same fault.
                let faulty_t = FaultyOperator::new(&a, Some(plan), seed);
                let (out_t, _) =
                    skeptical_gmres(&faulty_t, &b, None, &opts, &SkepticalConfig::trusting());
                let err_t = true_relative_residual(&a, &b, &out_t.x);
                if outcome_of(err_t, out_t.converged(), opts.tol) == "correct" {
                    trusting_correct += 1;
                }
            }
        }
        let pct = |x: usize| format!("{:.0}%", 100.0 * x as f64 / injected.max(1) as f64);
        table.row(vec![
            label.to_string(),
            injected.to_string(),
            pct(detected),
            pct(skeptical_correct),
            pct(trusting_correct),
            fmt_g(overhead / overhead_samples.max(1) as f64),
        ]);
    }
    table.emit("e1_sdc_gmres");
}
