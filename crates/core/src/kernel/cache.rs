//! Keyed preconditioner-setup cache.
//!
//! The "millions of users" workload solves many right-hand sides against a
//! small set of operators, so the dominant repeated cost after the SpMVs is
//! [`BlockJacobi`] setup: a dense `2n³⁄3` LU factorization per rank per
//! solve. [`SetupCache`] memoizes those local factors keyed by the
//! operator's per-rank [`DistCsr::fingerprint`] — a checksum over structure
//! *and* values, so any drift in the matrix (new nonzeros, updated
//! coefficients, a different row partition after shrink recovery) misses
//! the cache instead of silently reusing a stale factorization.
//!
//! Entries age on a **logical clock** the owner advances with
//! [`SetupCache::tick`] (one tick per solve, per batch, per epoch — the
//! unit is the caller's): wall-clock time is banned outside the runtime by
//! the repo's virtual-time rule, and logical ticks keep eviction
//! deterministic and testable. A TTL of `u64::MAX` (the default) never
//! expires; [`SetupCache::invalidate`] and [`SetupCache::clear`] are the
//! explicit paths for operators known to have changed.
//!
//! The cache is purely rank-local state — it holds no communicator and
//! performs no collectives — so each rank of a distributed solve owns its
//! own instance, exactly like the [`BlockJacobi`] instances it feeds.

use std::collections::HashMap;

use resilient_linalg::LuFactors;

use super::precond::BlockJacobi;
use crate::distributed::DistCsr;

/// One memoized factorization with the tick it was stored (or refreshed) at.
#[derive(Debug, Clone)]
struct CacheEntry {
    lu: LuFactors,
    stamp: u64,
}

/// A keyed cache of [`BlockJacobi`] local LU factors with TTL and explicit
/// invalidation. See the [module docs](self) for the keying and clock
/// discipline.
#[derive(Debug, Default)]
pub struct SetupCache {
    entries: HashMap<u64, CacheEntry>,
    /// Entries older than this many ticks are refactored on next lookup.
    ttl: u64,
    /// Logical clock; advanced only by [`SetupCache::tick`].
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetupCache {
    /// An empty cache whose entries never expire (explicit invalidation
    /// only).
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            ttl: u64::MAX,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// An empty cache whose entries expire `ttl` ticks after being stored.
    /// `ttl = 0` disables caching entirely (every lookup refactors).
    pub fn with_ttl(ttl: u64) -> Self {
        Self { ttl, ..Self::new() }
    }

    /// Advance the logical clock by one tick. The caller defines the tick's
    /// meaning (one solve, one batch, one outer epoch); expiry compares
    /// store-tick against the current tick.
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// A [`BlockJacobi`] for `a`'s diagonal block: cache hit returns the
    /// memoized factors (zero factorization work, **zero setup FLOPs
    /// charged** at first apply); miss or an expired entry factors fresh,
    /// stores the result stamped with the current tick, and returns a
    /// preconditioner that charges full setup like [`BlockJacobi::new`].
    pub fn block_jacobi(&mut self, a: &DistCsr) -> BlockJacobi {
        let key = a.fingerprint();
        if let Some(entry) = self.entries.get(&key) {
            if self.clock.saturating_sub(entry.stamp) < self.ttl {
                self.hits += 1;
                return BlockJacobi::from_factors(entry.lu.clone());
            }
            // Expired: drop the stale factors and fall through to refactor.
            self.entries.remove(&key);
            self.evictions += 1;
        }
        self.misses += 1;
        let bj = BlockJacobi::new(a);
        self.entries.insert(
            key,
            CacheEntry {
                lu: bj.factors().clone(),
                stamp: self.clock,
            },
        );
        bj
    }

    /// Drop the entry for `fingerprint` if present (the explicit path for
    /// an operator known to have changed). Returns whether one was dropped.
    pub fn invalidate(&mut self, fingerprint: u64) -> bool {
        let dropped = self.entries.remove(&fingerprint).is_some();
        if dropped {
            self.evictions += 1;
        }
        dropped
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to factor (cold or expired).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by expiry, invalidation or clear.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson2d;
    use resilient_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn hit_skips_setup_flops_and_miss_pays_them() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let a = poisson2d(6, 6);
            let da = DistCsr::from_global(comm, &a)?;
            let mut cache = SetupCache::new();
            let cold = cache.block_jacobi(&da);
            let warm = cache.block_jacobi(&da);
            Ok((
                cold.pending_setup_flops(),
                warm.pending_setup_flops(),
                cache.hits(),
                cache.misses(),
            ))
        });
        for (cold_setup, warm_setup, hits, misses) in result.unwrap_all() {
            assert!(cold_setup > 0, "cold lookup must owe full setup");
            assert_eq!(warm_setup, 0, "warm lookup must owe nothing");
            assert_eq!((hits, misses), (1, 1));
        }
    }

    #[test]
    fn ttl_expiry_refactors_instead_of_reusing() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(1, move |comm| {
            let a = poisson2d(5, 5);
            let da = DistCsr::from_global(comm, &a)?;
            let mut cache = SetupCache::with_ttl(2);
            let _ = cache.block_jacobi(&da);
            cache.tick();
            let inside = cache.block_jacobi(&da).pending_setup_flops();
            cache.tick();
            let expired = cache.block_jacobi(&da).pending_setup_flops();
            Ok((inside, expired, cache.evictions()))
        });
        for (inside, expired, evictions) in result.unwrap_all() {
            assert_eq!(inside, 0, "within TTL: hit");
            assert!(expired > 0, "past TTL: refactor");
            assert_eq!(evictions, 1);
        }
    }

    #[test]
    fn invalidate_and_clear_drop_entries() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(1, move |comm| {
            let a = poisson2d(4, 4);
            let da = DistCsr::from_global(comm, &a)?;
            let mut cache = SetupCache::new();
            let _ = cache.block_jacobi(&da);
            assert_eq!(cache.len(), 1);
            assert!(cache.invalidate(da.fingerprint()));
            assert!(!cache.invalidate(da.fingerprint()), "already gone");
            let refactored = cache.block_jacobi(&da).pending_setup_flops();
            cache.clear();
            Ok((refactored, cache.is_empty()))
        });
        for (refactored, empty) in result.unwrap_all() {
            assert!(refactored > 0, "invalidation must force a refactor");
            assert!(empty);
        }
    }

    #[test]
    fn different_operators_do_not_collide() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let da1 = DistCsr::from_global(comm, &poisson2d(5, 5))?;
            let da2 = DistCsr::from_global(comm, &poisson2d(5, 6))?;
            let mut cache = SetupCache::new();
            let _ = cache.block_jacobi(&da1);
            let second = cache.block_jacobi(&da2).pending_setup_flops();
            Ok((second, cache.len(), cache.misses()))
        });
        for (second, len, misses) in result.unwrap_all() {
            assert!(second > 0, "a different operator is a miss");
            assert_eq!(len, 2);
            assert_eq!(misses, 2);
        }
    }
}
