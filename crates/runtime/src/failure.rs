//! Per-rank failure schedules.
//!
//! A [`FailureSchedule`] decides *when* (in virtual time) the owning rank
//! should fail. It combines the deterministic schedule from
//! [`FailureConfig::scheduled`](crate::config::FailureConfig) with random
//! exponential failures governed by `mtbf_per_rank`. The runtime consults it
//! at failure points; the shared cap `max_failures` is enforced by the
//! caller against the [`HealthBoard`](crate::health::HealthBoard).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::config::FailureConfig;

/// The failure plan for one rank incarnation.
#[derive(Debug, Clone)]
pub struct FailureSchedule {
    enabled: bool,
    /// Deterministic failure times for this rank, sorted ascending, not yet
    /// consumed.
    scheduled: Vec<f64>,
    /// Next randomly drawn failure time (virtual seconds), if random
    /// failures are enabled.
    next_random: Option<f64>,
    mtbf: f64,
}

impl FailureSchedule {
    /// Build the schedule for `rank` starting at virtual time `start`, using
    /// the job-wide failure configuration. Random failure times are drawn
    /// from the provided RNG so they are reproducible per rank and
    /// incarnation.
    pub fn for_rank(config: &FailureConfig, rank: usize, start: f64, rng: &mut ChaCha8Rng) -> Self {
        if !config.enabled {
            return Self {
                enabled: false,
                scheduled: Vec::new(),
                next_random: None,
                mtbf: f64::INFINITY,
            };
        }
        let mut scheduled: Vec<f64> = config
            .scheduled
            .iter()
            .filter(|(r, t)| *r == rank && *t >= start)
            .map(|(_, t)| *t)
            .collect();
        scheduled.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let next_random = draw_exponential_after(config.mtbf_per_rank, start, rng);
        Self {
            enabled: true,
            scheduled,
            next_random,
            mtbf: config.mtbf_per_rank,
        }
    }

    /// A schedule that never fails.
    pub fn never() -> Self {
        Self {
            enabled: false,
            scheduled: Vec::new(),
            next_random: None,
            mtbf: f64::INFINITY,
        }
    }

    /// Should the rank fail now, given its current virtual time? If so,
    /// returns the virtual time of the triggering event and consumes it.
    pub fn due(&mut self, now: f64, rng: &mut ChaCha8Rng) -> Option<f64> {
        if !self.enabled {
            return None;
        }
        if let Some(&t) = self.scheduled.first() {
            if t <= now {
                self.scheduled.remove(0);
                return Some(t);
            }
        }
        if let Some(t) = self.next_random {
            if t <= now {
                // Re-arm for the (unlikely) case of a replacement reusing the
                // same schedule object.
                self.next_random = draw_exponential_after(self.mtbf, now, rng);
                return Some(t);
            }
        }
        None
    }

    /// The earliest pending failure time, if any (diagnostics / tests).
    pub fn next_pending(&self) -> Option<f64> {
        let s = self.scheduled.first().copied();
        match (s, self.next_random) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Whether failure injection is active for this rank.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

fn draw_exponential_after(mtbf: f64, start: f64, rng: &mut ChaCha8Rng) -> Option<f64> {
    if !mtbf.is_finite() || mtbf <= 0.0 {
        return None;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    Some(start - mtbf * u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FailurePolicy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn disabled_never_fails() {
        let cfg = FailureConfig::none();
        let mut s = FailureSchedule::for_rank(&cfg, 0, 0.0, &mut rng(1));
        assert!(!s.enabled());
        assert!(s.due(1e9, &mut rng(1)).is_none());
        let mut never = FailureSchedule::never();
        assert!(never.due(f64::MAX, &mut rng(2)).is_none());
    }

    #[test]
    fn scheduled_failure_fires_once() {
        let cfg = FailureConfig::scheduled(FailurePolicy::ReplaceRank, vec![(2, 5.0), (1, 3.0)]);
        let mut r = rng(1);
        let mut s = FailureSchedule::for_rank(&cfg, 2, 0.0, &mut r);
        assert!(s.due(4.9, &mut r).is_none());
        assert_eq!(s.due(5.1, &mut r), Some(5.0));
        assert!(
            s.due(100.0, &mut r).is_none(),
            "a scheduled failure fires only once"
        );
    }

    #[test]
    fn schedule_filters_by_rank_and_start() {
        let cfg = FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(0, 1.0), (0, 4.0), (1, 2.0)],
        );
        let mut r = rng(1);
        // Replacement incarnation starting at t = 2.0 must not inherit the
        // t = 1.0 failure.
        let mut s = FailureSchedule::for_rank(&cfg, 0, 2.0, &mut r);
        assert!(s.due(3.0, &mut r).is_none());
        assert_eq!(s.due(4.5, &mut r), Some(4.0));
    }

    #[test]
    fn multiple_scheduled_failures_fire_in_order() {
        let cfg = FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(0, 2.0), (0, 1.0), (0, 3.0)],
        );
        let mut r = rng(1);
        let mut s = FailureSchedule::for_rank(&cfg, 0, 0.0, &mut r);
        assert_eq!(s.due(10.0, &mut r), Some(1.0));
        assert_eq!(s.due(10.0, &mut r), Some(2.0));
        assert_eq!(s.due(10.0, &mut r), Some(3.0));
        assert_eq!(s.due(10.0, &mut r), None);
    }

    #[test]
    fn random_failures_cluster_around_mtbf() {
        let cfg = FailureConfig::random(FailurePolicy::AbortJob, 100.0, usize::MAX);
        let n = 3000;
        let mut total = 0.0;
        for i in 0..n {
            let mut seed_rng = rng(1000 + i);
            let s = FailureSchedule::for_rank(&cfg, 0, 0.0, &mut seed_rng);
            total += s.next_pending().expect("random failure must be armed");
        }
        let mean = total / n as f64;
        assert!(
            (mean - 100.0).abs() < 10.0,
            "mean inter-failure time {mean} not near MTBF 100"
        );
    }

    #[test]
    fn infinite_mtbf_disables_random_failures() {
        let cfg = FailureConfig {
            enabled: true,
            mtbf_per_rank: f64::INFINITY,
            ..FailureConfig::none()
        };
        let mut r = rng(2);
        let s = FailureSchedule::for_rank(&cfg, 0, 0.0, &mut r);
        assert!(s.next_pending().is_none());
    }
}
