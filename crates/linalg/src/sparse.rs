//! Sparse matrices: a COO builder and a CSR matrix with the kernels the
//! Krylov solvers and PDE applications need.

use crate::dense::DenseMatrix;

/// Coordinate-format builder for sparse matrices. Duplicate entries are
/// summed when converting to CSR (the standard finite-element assembly
/// convention).
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Empty builder of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Add `v` at (i, j).
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "COO entry out of bounds");
        if v != 0.0 {
            self.entries.push((i, j, v));
        }
    }

    /// Number of (possibly duplicated) stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        // Merge consecutive duplicates (same row and column).
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.len());
        for (i, j, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == i && last.1 == j => last.2 += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for &(i, _, _) in &merged {
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|e| e.1).collect();
        let values = merged.iter().map(|e| e.2).collect();
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "row_ptr must have nrows+1 entries"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be non-decreasing"
        );
        assert!(
            col_idx.iter().all(|&j| j < ncols),
            "column index out of bounds"
        );
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column_indices, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Mutable values of row `i` (used by fault injection to corrupt matrix
    /// entries in place).
    pub fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        &mut self.values[range]
    }

    /// All stored values (immutable view).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// All stored values (mutable view).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// y = A·x.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv: dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// y = A·x, writing into a caller-provided buffer.
    ///
    /// Rows are walked through one pair of slices per row (derived from
    /// consecutive `row_ptr` entries) so the inner gather-multiply loop
    /// carries no per-element indirection through `row_ptr` and the
    /// compiler can unroll it. Per-row accumulation stays sequential, so
    /// results are bit-identical to the naive formulation.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: dimension mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: output dimension mismatch");
        let mut start = self.row_ptr[0];
        for (yi, &end) in y.iter_mut().zip(&self.row_ptr[1..]) {
            let cols = &self.col_idx[start..end];
            let vals = &self.values[start..end];
            let mut sum = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                sum += v * x[j];
            }
            *yi = sum;
            start = end;
        }
    }

    /// Number of floating-point operations in one SpMV (2·nnz), used for
    /// virtual-time accounting.
    pub fn spmv_flops(&self) -> usize {
        2 * self.nnz()
    }

    /// The main diagonal (zero where no entry is stored).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .find(|(&j, _)| j == i)
                    .map(|(_, &v)| v)
                    .unwrap_or(0.0)
            })
            .collect()
    }

    /// Transpose (also in CSR format).
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.ncols, self.nrows);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(j, i, v);
            }
        }
        coo.to_csr()
    }

    /// Extract the sub-matrix of rows `rows` (keeping all columns), used to
    /// build row-block distributed matrices.
    pub fn row_block(&self, rows: std::ops::Range<usize>) -> CsrMatrix {
        assert!(rows.end <= self.nrows);
        let mut coo = CooMatrix::new(rows.len(), self.ncols);
        for (local_i, i) in rows.clone().enumerate() {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                coo.push(local_i, j, v);
            }
        }
        coo.to_csr()
    }

    /// Densify (tests and small problems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                d.add_to(i, j, v);
            }
        }
        d
    }

    /// Row sums (used by ABFT checksum encodings).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Frobenius norm of the stored values.
    pub fn norm_fro(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3usize {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i < 2 {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_structure() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
        let (cols, vals) = a.row(1);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[-1.0, 2.0, -1.0]);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.diagonal(), vec![3.5, 1.0]);
    }

    #[test]
    fn coo_ignores_explicit_zeros() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 0.0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
        let dense_y = a.to_dense().gemv(&x);
        assert_eq!(y, dense_y);
        assert_eq!(a.spmv_flops(), 14);
    }

    #[test]
    fn spmv_into_reuses_buffer() {
        let a = small();
        let mut y = vec![9.0; 3];
        a.spmv_into(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, -1.0, 0.0]);
    }

    #[test]
    fn identity_and_transpose() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.spmv(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let a = small();
        let at = a.transpose();
        // Symmetric matrix: transpose equals original.
        assert_eq!(a.to_dense(), at.to_dense());
    }

    #[test]
    fn row_block_extraction() {
        let a = small();
        let block = a.row_block(1..3);
        assert_eq!(block.nrows(), 2);
        assert_eq!(block.ncols(), 3);
        assert_eq!(block.spmv(&[1.0, 1.0, 1.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn row_sums_and_norm() {
        let a = small();
        assert_eq!(a.row_sums(), vec![1.0, 0.0, 1.0]);
        assert!((a.norm_fro() - (4.0f64 * 3.0 + 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn values_mut_allows_corruption() {
        let mut a = small();
        a.row_values_mut(0)[0] = 100.0;
        assert_eq!(a.diagonal()[0], 100.0);
        a.values_mut()[1] = -7.0;
        assert_eq!(a.row(0).1[1], -7.0);
        assert_eq!(a.values().len(), 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coo_out_of_bounds_panics() {
        CooMatrix::new(1, 1).push(1, 0, 1.0);
    }

    #[test]
    #[should_panic]
    fn from_raw_validates() {
        CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }
}
