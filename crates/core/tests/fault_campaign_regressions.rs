//! Minimized, deterministic regression corpus for the fault campaign.
//!
//! Every test here pins one contract violation (or near-violation
//! boundary) found while developing the campaign, shrunk to a
//! single-event schedule via [`FaultSchedule::minimize`]'s greedy
//! drop-one-event loop or isolated by hand, with a comment naming the bug
//! it guards. The vendored proptest has no shrinking, so this file *is*
//! the regression store the upstream `proptest-regressions` directory
//! would otherwise hold.

use resilience::prelude::*;
use resilient_faults::campaign::{FaultFamily, FaultSchedule, Strike};
use resilient_linalg::poisson2d;
use resilient_runtime::{Runtime, RuntimeConfig};

/// A hand-pinned single-event schedule.
fn pinned(family: FaultFamily, spmv: Vec<Strike>, precond: Vec<Strike>) -> FaultSchedule {
    FaultSchedule {
        family,
        seed: 0,
        spmv,
        precond,
        deaths: Vec::new(),
    }
}

/// Bug: distributed pipelined GMRES claimed convergence at cycle end on
/// the zz-recurrence estimate, which can collapse to zero through
/// roundoff while the iterate is nowhere near convergence. Found
/// *fault-free* by the campaign's clean-baseline oracle at exactly this
/// geometry (3 ranks, poisson2d(8,8), b = 1 + i mod 3, tol 1e-8, restart
/// 30): the pre-fix solver reported convergence after 16 iterations with
/// recurrence residual 0.0 and true relative residual 1.27. The fix makes
/// the cycle-end claim pay for a charged true-residual verification
/// before reporting success.
#[test]
fn pipelined_gmres_cycle_end_claim_is_verified() {
    let cfg = CampaignConfig::default();
    let a = poisson2d(cfg.nx, cfg.nx);
    let b = cfg.rhs();
    let opts = cfg.solve_opts();
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(3));
    let job = rt.run(cfg.ranks, move |comm| {
        let da = DistCsr::from_global(comm, &a)?;
        let db = DistVector::from_global(comm, &b);
        let out = pipelined_gmres(comm, &da, &db, &opts)?;
        let x = out.x.gather_global(comm)?;
        Ok((out.converged, out.iterations, x))
    });
    assert!(job.all_ok(), "run errored: {:?}", job.errors);
    let (converged, iterations, x) = &job.unwrap_all()[0];
    let a = poisson2d(cfg.nx, cfg.nx);
    let b = cfg.rhs();
    let relres = true_relative_residual(&a, &b, x);
    assert!(converged, "pipelined GMRES must actually converge here");
    assert!(
        relres <= cfg.accept_tol(),
        "claimed convergence must survive independent verification \
         (true relres {relres:.3e} after {iterations} iterations)"
    );
    // The pre-fix false claim fired at iteration 16; the honest solve
    // needs more work than that.
    assert!(
        *iterations > 16,
        "suspiciously early convergence ({iterations} iterations) — \
         the cycle-end recurrence claim may have gone unverified again"
    );
}

/// Threat model pinned: CG's residual recurrence silently detaches from
/// the true residual after a single mid-solve SpMV bit flip (the classic
/// Krylov silent-data-corruption mode). The solver confidently claims
/// convergence; the campaign's charged verification refutes the claim and
/// classifies it as detected-by-verification — never as success. This is
/// the exact schedule the diversity voter's outvoting demo poisons a
/// member with.
#[test]
fn fused_cg_silent_wrong_answer_is_refuted_by_verification() {
    let cfg = CampaignConfig::default();
    let schedule = pinned(
        FaultFamily::CorrelatedSpmvFlips,
        vec![Strike {
            rank: 0,
            incarnation: 0,
            at: 8,
            element: 2,
            bit: 50,
        }],
        vec![],
    );
    let base = clean_baseline(schedule.family, 0, CampaignPreset::FusedCg, &cfg).unwrap();
    let report = run_schedule(&schedule, CampaignPreset::FusedCg, &cfg, &base).unwrap();
    assert_eq!(report.outcome, CaseOutcome::DetectedByVerification);
    assert_eq!(report.injections, 1, "the strike must land exactly once");
    assert!(
        report.true_relres > cfg.accept_tol(),
        "the claim must actually be wrong (true relres {:.3e})",
        report.true_relres
    );
}

/// Satellite fix pinned: `BlockJacobi::apply_into` was previously
/// unguarded — a high-exponent flip in its output slice (bit 62 turns an
/// O(1) entry into an O(1e300) one) reached the Krylov recurrences
/// unchecked. Unguarded, the energy inner products degenerate and the
/// solve dies with an honest breakdown after wasting the run. With the
/// `PrecondGuardPolicy` stacked on the `after_precond` hook, the
/// amplification is caught by the zz-vs-rr consistency collective and the
/// restart response recovers the solve to verified convergence.
#[test]
fn precond_amplification_unguarded_breaks_down_guarded_recovers() {
    let schedule = pinned(
        FaultFamily::PrecondFlips,
        vec![],
        vec![Strike {
            rank: 1,
            incarnation: 0,
            at: 6,
            element: 1,
            bit: 62,
        }],
    );

    let unguarded = CampaignConfig::default();
    let base = clean_baseline(schedule.family, 0, CampaignPreset::FusedPcg, &unguarded).unwrap();
    let report = run_schedule(&schedule, CampaignPreset::FusedPcg, &unguarded, &base).unwrap();
    assert_eq!(report.injections, 1);
    assert_eq!(
        report.outcome,
        CaseOutcome::HonestFailure(StopReason::Breakdown),
        "unguarded amplification must at least fail honestly"
    );

    let guarded = CampaignConfig::default().with_guard(true);
    let base = clean_baseline(schedule.family, 0, CampaignPreset::FusedPcg, &guarded).unwrap();
    let report = run_schedule(&schedule, CampaignPreset::FusedPcg, &guarded, &base).unwrap();
    assert_eq!(report.injections, 1);
    assert_eq!(
        report.outcome,
        CaseOutcome::ConvergedVerified,
        "the guard must recover the solve (got {:?}, true relres {:.3e})",
        report.outcome,
        report.true_relres
    );
    assert!(
        report.detections >= 1,
        "the guard must report the detection it acted on"
    );
}

/// Detector boundary pinned: a flip that *clears* a set exponent bit
/// (bit 55 on an O(1) entry) shrinks the preconditioned residual toward
/// zero instead of amplifying it. The zz-vs-rr amplification guard cannot
/// see a shrink, so both guarded and unguarded runs stall to the honest
/// iteration cap at a residual just outside the acceptance band — the
/// oracle holds, and this test documents where the guard's coverage ends.
#[test]
fn precond_shrink_flip_stalls_honestly_past_the_guard() {
    let schedule = pinned(
        FaultFamily::PrecondFlips,
        vec![],
        vec![Strike {
            rank: 1,
            incarnation: 0,
            at: 6,
            element: 1,
            bit: 55,
        }],
    );
    for guard in [false, true] {
        let cfg = CampaignConfig::default().with_guard(guard);
        let base = clean_baseline(schedule.family, 0, CampaignPreset::FusedPcg, &cfg).unwrap();
        let report = run_schedule(&schedule, CampaignPreset::FusedPcg, &cfg, &base).unwrap();
        assert_eq!(report.injections, 1);
        assert_eq!(
            report.outcome,
            CaseOutcome::HonestFailure(StopReason::MaxIterations),
            "guard={guard}: shrink flips stall honestly (got {:?})",
            report.outcome
        );
    }
}

/// Bug: a rank dying *while the LFLR recovery rendezvous for an earlier
/// death was still in flight* (found by the campaign's rendezvous-death
/// family at `family=rendezvous-death seed=6 preset=fused-pcg`: two
/// deaths 0.3% of the clean makespan apart) made `rejoin` propagate the
/// rendezvous' own `Revoked` interruption as a terminal error. The
/// interrupted rank abandoned the job while its peers blocked forever in
/// a three-party collective — an intermittent real-time deadlock in
/// roughly half of all runs pre-fix. The fix retries the rendezvous for
/// the newer failure generation. Because the deadlock depends on thread
/// interleaving, the pin replays the found schedule several times under a
/// wall-clock watchdog and fails loudly instead of hanging the suite.
#[test]
fn overlapping_death_during_rendezvous_must_not_deadlock() {
    for round in 0..5 {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let cfg = CampaignConfig::default();
            let family = FaultFamily::RendezvousDeath;
            let preset = CampaignPreset::FusedPcg;
            let base = clean_baseline(family, 6, preset, &cfg).unwrap();
            let schedule = FaultSchedule::generate(family, 6, &base.params);
            let _ = tx.send(run_schedule(&schedule, preset, &cfg, &base));
        });
        match rx.recv_timeout(std::time::Duration::from_secs(120)) {
            Ok(Ok(report)) => {
                assert!(report.recoveries >= 1, "the deaths must actually land");
                assert!(report.outcome.is_honest());
            }
            Ok(Err(violation)) => panic!("{violation}"),
            Err(_) => panic!(
                "deadlock (round {round}): a death during the recovery \
                 rendezvous left the job stuck — the rejoin retry loop is \
                 broken again"
            ),
        }
    }
}

/// Satellite compatibility pinned: a strike dropped by the greedy
/// minimizer must leave the remaining schedule's behaviour unchanged —
/// minimizing the refuted-claim schedule above down to zero events yields
/// the empty schedule, and the empty schedule converges verified on every
/// preset (i.e. the harness itself injects nothing).
#[test]
fn minimized_empty_schedule_is_fault_free() {
    let cfg = CampaignConfig::default();
    let schedule = pinned(FaultFamily::CorrelatedSpmvFlips, vec![], vec![]);
    assert!(schedule.is_empty());
    for preset in CampaignPreset::ALL {
        let base = clean_baseline(schedule.family, 0, preset, &cfg).unwrap();
        let report = run_schedule(&schedule, preset, &cfg, &base).unwrap();
        assert_eq!(
            report.outcome,
            CaseOutcome::ConvergedVerified,
            "{}: empty schedule must be a clean run",
            preset.name()
        );
        assert_eq!(report.injections, 0);
    }
}
