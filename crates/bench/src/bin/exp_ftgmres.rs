//! Experiment E6 — FT-GMRES via selective reliability (SRP, §III-D):
//! convergence probability and cost-weighted work versus the fault rate of
//! the unreliable tier, against all-unreliable and all-reliable baselines.

use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_faults::memory::ReliabilityModel;
use resilient_linalg::poisson2d;

fn main() {
    let a = poisson2d(16, 16);
    let n = a.nrows();
    let b = vec![1.0; n];
    let tol = 1e-8;
    let trials = 5u64;
    let model = ReliabilityModel {
        reliable_cost_factor: 2.0,
        ..ReliabilityModel::default()
    };

    let mut table = Table::new(
        "E6: FT-GMRES vs baselines, 2-D Poisson n=256 (5 trials/rate, cost in unreliable-FLOP equivalents)",
        &["fault rate/elem", "FT-GMRES conv%", "FT cost", "unreliable GMRES conv%", "unreliable cost", "reliable GMRES cost", "FT reliable-flop frac"],
    );
    let (rel_out, rel_ledger) = reliable_gmres(
        &a,
        &b,
        &SolveOptions::default()
            .with_tol(tol)
            .with_max_iters(600)
            .with_restart(40),
    );
    assert!(rel_out.converged());
    let reliable_cost = rel_ledger.weighted_cost(&model);

    for &rate in &[0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut ft_conv = 0u64;
        let mut ft_cost = 0.0;
        let mut ft_rel_frac = 0.0;
        let mut un_conv = 0u64;
        let mut un_cost = 0.0;
        for t in 0..trials {
            let cfg = FtGmresConfig {
                outer: SolveOptions::default()
                    .with_tol(tol)
                    .with_max_iters(60)
                    .with_restart(30),
                inner_iters: 20,
                inner_tol: 1e-2,
                fault_rate: rate,
                reliability: model,
                seed: 100 + t,
            };
            let (out, report) = ft_gmres(&a, &b, &cfg);
            let err = true_relative_residual(&a, &b, &out.x);
            if out.converged() && err < tol * 100.0 {
                ft_conv += 1;
            }
            ft_cost += report.ledger.weighted_cost(&model);
            ft_rel_frac += report.ledger.reliable_fraction();

            let (uout, uledger, _) = unreliable_gmres(
                &a,
                &b,
                &SolveOptions::default()
                    .with_tol(tol)
                    .with_max_iters(600)
                    .with_restart(40),
                rate,
                200 + t,
            );
            let uerr = true_relative_residual(&a, &b, &uout.x);
            if uout.converged() && uerr < tol * 100.0 {
                un_conv += 1;
            }
            un_cost += uledger.weighted_cost(&model);
        }
        let pct = |x: u64| format!("{:.0}%", 100.0 * x as f64 / trials as f64);
        table.row(vec![
            format!("{rate:.0e}"),
            pct(ft_conv),
            fmt_g(ft_cost / trials as f64),
            pct(un_conv),
            fmt_g(un_cost / trials as f64),
            fmt_g(reliable_cost),
            format!("{:.2}", ft_rel_frac / trials as f64),
        ]);
    }
    table.emit("e6_ftgmres");
}
