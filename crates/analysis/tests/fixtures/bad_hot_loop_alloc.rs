// analysis-as: crates/core/src/rbsp/fixture_apply.rs
// Fixture: per-iteration heap allocation in a designated hot-loop module.
// All four allocation forms must fire `hot-loop-alloc`; the constructor
// below is exempt by function name.

pub fn apply(x: &[f64], out: &mut Vec<f64>) {
    let mut scratch = Vec::new();
    scratch.extend_from_slice(x);
    let copy = x.to_vec();
    let again = copy.clone();
    let z = vec![0.0; x.len()];
    out.extend(z);
    out.extend(again);
}

pub fn new(n: usize) -> Vec<f64> {
    // Exempt: `new` is a sanctioned allocation site.
    vec![0.0; n]
}
