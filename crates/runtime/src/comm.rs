//! The per-rank communicator handle.
//!
//! A [`Comm`] is the single object an SPMD "rank function" receives. It
//! bundles:
//!
//! * the rank's identity (rank, size, incarnation),
//! * its [`VirtualClock`] and noise/failure injection state,
//! * point-to-point messaging ([`send_f64`](Comm::send_f64) etc.),
//! * blocking and nonblocking collectives (see the [`collective`](crate::collective)
//!   and [`nonblocking`](crate::nonblocking) modules),
//! * ULFM-style recovery ([`recovery_rendezvous`](Comm::recovery_rendezvous),
//!   [`shrink`](Comm::shrink) in the [`ulfm`](crate::ulfm) module),
//! * access to the persistent per-rank store (LFLR) and the stable store
//!   (checkpoint/restart).

use std::panic;
use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::clock::VirtualClock;
use crate::error::{Result, RuntimeError};
use crate::failure::FailureSchedule;
use crate::mailbox::PollOutcome;
use crate::message::{Message, Payload, ANY_SOURCE};
use crate::noise::NoiseModel;
use crate::persistent::{StableStore, Stored};
use crate::stats::RankStats;
use crate::world::World;

/// Panic payload used to terminate a rank thread when failure injection
/// kills it. The launcher recognises this payload, treats the thread as a
/// failed process, and (under the `ReplaceRank` policy) spawns a
/// replacement.
#[derive(Debug, Clone, Copy)]
pub struct RankKilled {
    /// Rank that was killed.
    pub rank: usize,
    /// Incarnation that was killed.
    pub incarnation: u64,
    /// Virtual time of death.
    pub time: f64,
    /// Failure generation assigned to the event.
    pub generation: u64,
}

/// How long a blocked receive sleeps between polls. Purely a real-time
/// implementation detail; virtual time is unaffected.
const WAIT_SLICE: Duration = Duration::from_millis(10);

/// The communicator handle owned by one rank incarnation.
pub struct Comm {
    pub(crate) world: Arc<World>,
    /// World rank (position in the original job).
    pub(crate) world_rank: usize,
    pub(crate) incarnation: u64,
    pub(crate) clock: VirtualClock,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) noise: NoiseModel,
    pub(crate) failure_schedule: FailureSchedule,
    /// Collective sequence counter (reset at each recovery).
    pub(crate) seq: u64,
    /// Communication epoch this rank has acknowledged.
    pub(crate) epoch: u64,
    /// Failure generation this rank has acknowledged (recovered from).
    pub(crate) acked_generation: u64,
    /// Communicator id (0 = the world communicator; shrunk communicators get
    /// fresh ids derived from the failure generation).
    pub(crate) comm_id: u64,
    /// For shrunk communicators: mapping from group rank to world rank.
    /// `None` means the identity mapping over all world ranks.
    pub(crate) group: Option<Vec<usize>>,
    // -- statistics --
    pub(crate) messages_sent: u64,
    pub(crate) bytes_sent: u64,
    pub(crate) collectives: u64,
    pub(crate) recoveries: u64,
    pub(crate) checkpoint_bytes: u64,
    pub(crate) check_flops: u64,
}

impl Comm {
    /// Create the communicator for `rank` (incarnation `incarnation`),
    /// starting its virtual clock at `start_time`.
    pub(crate) fn new(world: Arc<World>, rank: usize, incarnation: u64, start_time: f64) -> Self {
        let mut seed_rng = ChaCha8Rng::seed_from_u64(
            world.config.seed
                ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ incarnation.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let failure_schedule =
            FailureSchedule::for_rank(&world.config.failures, rank, start_time, &mut seed_rng);
        let mut clock = VirtualClock::new();
        clock.fast_forward(start_time);
        let epoch = world.health.epoch();
        let acked_generation = world.health.generation();
        Self {
            noise: NoiseModel::new(world.config.noise),
            rng: seed_rng,
            clock,
            failure_schedule,
            seq: 0,
            epoch,
            acked_generation,
            comm_id: 0,
            group: None,
            messages_sent: 0,
            bytes_sent: 0,
            collectives: 0,
            recoveries: 0,
            checkpoint_bytes: 0,
            check_flops: 0,
            world,
            world_rank: rank,
            incarnation,
        }
    }

    // ------------------------------------------------------------------
    // Identity
    // ------------------------------------------------------------------

    /// Rank within the current communicator (group rank after a shrink).
    pub fn rank(&self) -> usize {
        match &self.group {
            None => self.world_rank,
            Some(g) => g
                .iter()
                .position(|&r| r == self.world_rank)
                .unwrap_or(usize::MAX),
        }
    }

    /// Size of the current communicator (group size after a shrink).
    pub fn size(&self) -> usize {
        match &self.group {
            None => self.world.size,
            Some(g) => g.len(),
        }
    }

    /// Rank within the original (world) job, regardless of shrinks.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Size of the original (world) job.
    pub fn world_size(&self) -> usize {
        self.world.size
    }

    /// Incarnation number: 0 for the original process, >0 for replacements
    /// spawned after failures. LFLR applications branch on this to decide
    /// whether to initialise fresh state or run their recovery function.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Is this rank a replacement spawned after a failure?
    pub fn is_replacement(&self) -> bool {
        self.incarnation > 0
    }

    /// Map a group rank to a world rank.
    pub(crate) fn to_world(&self, rank: usize) -> Result<usize> {
        if rank == ANY_SOURCE {
            return Ok(ANY_SOURCE);
        }
        match &self.group {
            None => {
                if rank < self.world.size {
                    Ok(rank)
                } else {
                    Err(RuntimeError::InvalidRank {
                        rank,
                        size: self.world.size,
                    })
                }
            }
            Some(g) => g.get(rank).copied().ok_or(RuntimeError::InvalidRank {
                rank,
                size: g.len(),
            }),
        }
    }

    /// Map a world rank back to a group rank (world rank itself for the
    /// world communicator).
    pub(crate) fn to_group(&self, world_rank: usize) -> usize {
        match &self.group {
            None => world_rank,
            Some(g) => g
                .iter()
                .position(|&r| r == world_rank)
                .unwrap_or(usize::MAX),
        }
    }

    // ------------------------------------------------------------------
    // Virtual time, noise and failure points
    // ------------------------------------------------------------------

    /// Current virtual time of this rank, in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charge `seconds` of local computation to the virtual clock. Noise
    /// events are sampled over the interval and failure injection is
    /// checked afterwards; this is therefore also a failure point.
    pub fn advance(&mut self, seconds: f64) {
        self.clock.advance(seconds);
        let extra = self.noise.sample(seconds, &mut self.rng);
        if extra > 0.0 {
            self.clock.advance_noise(extra);
        }
        self.maybe_die();
    }

    /// Charge the cost of `flops` floating-point operations (using the
    /// configured `seconds_per_flop`).
    pub fn charge_flops(&mut self, flops: usize) {
        let dt = self.world.config.seconds_per_flop * flops as f64;
        self.advance(dt);
    }

    /// Attribute `flops` floating-point operations to resilience checks
    /// (invariant tests, checksums, redundant residual evaluations) in
    /// [`RankStats::check_flops`]. This is an attribution ledger only — it
    /// does **not** advance virtual time, because the operations that
    /// perform the check (dots, norms, operator applications) charge their
    /// own time through [`Comm::charge_flops`]; charging here too would
    /// double-bill the check work.
    pub fn record_check_flops(&mut self, flops: usize) {
        self.check_flops += flops as u64;
    }

    /// An explicit failure point: checks whether this rank is scheduled to
    /// die now and whether the job has been interrupted. Resilient drivers
    /// call this at step boundaries.
    pub fn failure_point(&mut self) -> Result<()> {
        self.maybe_die();
        self.check_health()
    }

    /// Access this rank's deterministic random-number generator (useful for
    /// applications that want reproducible rank-decorrelated randomness).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Check the health board: returns an error if the job aborted or if a
    /// failure this rank has not yet recovered from has been detected.
    pub fn check_health(&self) -> Result<()> {
        self.world.health.check(self.acked_generation)
    }

    /// If the failure schedule says this rank should die now, terminate the
    /// rank thread (never returns in that case).
    fn maybe_die(&mut self) {
        if !self.failure_schedule.enabled() {
            return;
        }
        if self.world.health.failure_count() >= self.world.config.failures.max_failures {
            return;
        }
        let now = self.clock.now();
        if let Some(t) = self.failure_schedule.due(now, &mut self.rng) {
            self.die(t.max(0.0));
        }
    }

    /// Kill this rank: record the failure, stash partial statistics, wake all
    /// waiters and unwind the thread with a [`RankKilled`] payload.
    fn die(&mut self, time: f64) -> ! {
        self.clock.fast_forward(time);
        let generation =
            self.world
                .health
                .record_failure(self.world_rank, self.incarnation, self.clock.now());
        self.world.lost_stats.lock().push(self.snapshot_stats());
        self.world.interrupt_all();
        panic::panic_any(RankKilled {
            rank: self.world_rank,
            incarnation: self.incarnation,
            time: self.clock.now(),
            generation,
        });
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    fn send_payload(&mut self, dest: usize, tag: i32, payload: Payload) -> Result<()> {
        self.maybe_die();
        self.check_health()?;
        let dest_world = self.to_world(dest)?;
        if !self.world.health.is_alive(dest_world) {
            return Err(RuntimeError::ProcFailed {
                rank: dest_world,
                generation: self.world.health.generation(),
            });
        }
        let bytes = payload.byte_len();
        let msg = Message {
            source: self.world_rank,
            dest: dest_world,
            tag,
            epoch: self.epoch,
            sent_at: self.clock.now(),
            payload,
        };
        self.world.mailboxes[dest_world].deposit(msg);
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        Ok(())
    }

    fn recv_payload(&mut self, source: usize, tag: i32) -> Result<(usize, Payload)> {
        self.maybe_die();
        let source_world = self.to_world(source)?;
        loop {
            self.check_health()?;
            match self.world.mailboxes[self.world_rank].poll(source_world, tag, self.epoch) {
                PollOutcome::Found(msg) => {
                    let arrival = msg.sent_at + self.world.config.latency.p2p_cost(msg.byte_len());
                    self.clock.wait_until(arrival);
                    return Ok((self.to_group(msg.source), msg.payload));
                }
                PollOutcome::Empty => {
                    if source_world != ANY_SOURCE && !self.world.health.is_alive(source_world) {
                        return Err(RuntimeError::ProcFailed {
                            rank: source_world,
                            generation: self.world.health.generation(),
                        });
                    }
                    self.world.mailboxes[self.world_rank].wait(WAIT_SLICE);
                }
            }
        }
    }

    /// Send a slice of `f64` values to `dest` with the given tag.
    pub fn send_f64(&mut self, dest: usize, tag: i32, data: &[f64]) -> Result<()> {
        self.send_payload(dest, tag, Payload::F64(data.to_vec()))
    }

    /// Receive an `f64` vector from `source` (or [`ANY_SOURCE`]) with the
    /// given tag (or [`ANY_TAG`](crate::message::ANY_TAG)). Returns
    /// `(source_rank, data)`.
    pub fn recv_f64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<f64>)> {
        let (src, payload) = self.recv_payload(source, tag)?;
        Ok((src, payload.into_f64()?))
    }

    /// Send a slice of `u64` values.
    pub fn send_u64(&mut self, dest: usize, tag: i32, data: &[u64]) -> Result<()> {
        self.send_payload(dest, tag, Payload::U64(data.to_vec()))
    }

    /// Receive a `u64` vector.
    pub fn recv_u64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<u64>)> {
        let (src, payload) = self.recv_payload(source, tag)?;
        Ok((src, payload.into_u64()?))
    }

    /// Send raw bytes.
    pub fn send_bytes(&mut self, dest: usize, tag: i32, data: &[u8]) -> Result<()> {
        self.send_payload(dest, tag, Payload::Bytes(data.to_vec()))
    }

    /// Receive raw bytes.
    pub fn recv_bytes(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<u8>)> {
        let (src, payload) = self.recv_payload(source, tag)?;
        Ok((src, payload.into_bytes()?))
    }

    /// Send an empty (synchronisation-only) message.
    pub fn send_empty(&mut self, dest: usize, tag: i32) -> Result<()> {
        self.send_payload(dest, tag, Payload::Empty)
    }

    /// Receive an empty message (any payload is accepted and discarded).
    pub fn recv_empty(&mut self, source: usize, tag: i32) -> Result<usize> {
        let (src, _) = self.recv_payload(source, tag)?;
        Ok(src)
    }

    /// Combined send to `dest` and receive from `source` of `f64` data,
    /// ordered to avoid deadlock regardless of rank ordering.
    pub fn sendrecv_f64(
        &mut self,
        dest: usize,
        source: usize,
        tag: i32,
        data: &[f64],
    ) -> Result<Vec<f64>> {
        self.send_f64(dest, tag, data)?;
        let (_, received) = self.recv_f64(source, tag)?;
        Ok(received)
    }

    // ------------------------------------------------------------------
    // Persistent store (LFLR) and stable store (checkpoint/restart)
    // ------------------------------------------------------------------

    /// Store a value in this rank's persistent partition. The data survives
    /// the failure of this rank and can be read by its replacement and by
    /// neighbouring ranks assisting in recovery. The write is charged
    /// virtual time at the configured checkpoint bandwidth.
    pub fn persist(&mut self, key: &str, value: impl Into<Stored>) -> Result<()> {
        let value = value.into();
        let bytes = value.byte_len();
        self.world.persistent.put(self.world_rank, key, value)?;
        self.clock
            .advance(self.world.config.checkpoint_seconds_per_byte * bytes as f64);
        Ok(())
    }

    /// Read a value from `rank`'s persistent partition (a rank may read its
    /// own entries or a neighbour's during recovery). `rank` is a rank of
    /// the current communicator.
    pub fn restore(&mut self, rank: usize, key: &str) -> Result<Stored> {
        let world_rank = self.to_world(rank)?;
        let value = self.world.persistent.get(world_rank, key)?;
        self.clock
            .advance(self.world.config.checkpoint_seconds_per_byte * value.byte_len() as f64);
        Ok(value)
    }

    /// Remove a key from this rank's persistent partition (no-op if absent).
    /// Lets applications that keep a history of persisted states (e.g.
    /// step-keyed LFLR snapshots) bound the store's footprint. Deletion is a
    /// metadata operation and is charged no virtual time.
    pub fn unpersist(&mut self, key: &str) {
        self.world.persistent.remove(self.world_rank, key);
    }

    /// Does `rank`'s persistent partition contain `key`?
    pub fn persisted(&self, rank: usize, key: &str) -> bool {
        match self.to_world(rank) {
            Ok(world_rank) => self.world.persistent.contains(world_rank, key),
            Err(_) => false,
        }
    }

    /// Write a checkpoint record for this rank to the job-global stable
    /// store (the simulated parallel file system). Charged at the configured
    /// checkpoint bandwidth; the bytes are also counted in the rank's
    /// statistics.
    pub fn checkpoint(&mut self, key: &str, value: impl Into<Stored>) -> Result<()> {
        self.check_health()?;
        let value = value.into();
        let bytes = self
            .world
            .stable
            .put(&format!("r{}/{}", self.world_rank, key), value);
        self.clock
            .advance(self.world.config.checkpoint_seconds_per_byte * bytes as f64);
        self.checkpoint_bytes += bytes as u64;
        Ok(())
    }

    /// Read this rank's checkpoint record from the stable store, if present.
    pub fn restore_checkpoint(&mut self, key: &str) -> Option<Stored> {
        let value = self
            .world
            .stable
            .get(&format!("r{}/{}", self.world_rank, key));
        if let Some(v) = &value {
            self.clock
                .advance(self.world.config.checkpoint_seconds_per_byte * v.byte_len() as f64);
        }
        value
    }

    /// Direct access to the stable store (drivers use this for job-level
    /// metadata such as the last completed checkpoint index).
    pub fn stable_store(&self) -> &StableStore {
        &self.world.stable
    }

    /// The runtime configuration this job runs under.
    pub fn config(&self) -> &crate::config::RuntimeConfig {
        &self.world.config
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Snapshot of this rank's statistics.
    pub fn snapshot_stats(&self) -> RankStats {
        RankStats {
            rank: self.world_rank,
            incarnation: self.incarnation,
            virtual_time: self.clock.now(),
            compute_time: self.clock.compute_time(),
            comm_wait_time: self.clock.comm_wait_time(),
            noise_time: self.clock.noise_time(),
            recovery_time: self.clock.recovery_time(),
            messages_sent: self.messages_sent,
            bytes_sent: self.bytes_sent,
            collectives: self.collectives,
            recoveries: self.recoveries,
            checkpoint_bytes: self.checkpoint_bytes,
            check_flops: self.check_flops,
        }
    }
}

/// Re-export of the wildcard constants for convenience.
pub use crate::message::{ANY_SOURCE as ANY_SRC, ANY_TAG as ANY};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NoiseConfig, RuntimeConfig};
    use crate::persistent::StableStore;

    fn solo_comm(config: RuntimeConfig) -> Comm {
        let world = World::new(config, 1, StableStore::new());
        Comm::new(world, 0, 0, 0.0)
    }

    #[test]
    fn identity_accessors() {
        let c = solo_comm(RuntimeConfig::fast());
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.world_rank(), 0);
        assert_eq!(c.world_size(), 1);
        assert_eq!(c.incarnation(), 0);
        assert!(!c.is_replacement());
    }

    #[test]
    fn advance_and_charge_flops() {
        let mut cfg = RuntimeConfig::fast();
        cfg.seconds_per_flop = 1e-6;
        let mut c = solo_comm(cfg);
        c.advance(1.0);
        c.charge_flops(1000);
        assert!((c.now() - 1.001).abs() < 1e-12);
    }

    #[test]
    fn noise_adds_time() {
        let cfg = RuntimeConfig::fast().with_noise(NoiseConfig::fixed(1000.0, 0.01));
        let mut c = solo_comm(cfg);
        c.advance(1.0);
        assert!(c.now() > 1.0, "noise should add to the clock");
        let stats = c.snapshot_stats();
        assert!(stats.noise_time > 0.0);
        assert!((stats.compute_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_send_recv_roundtrip() {
        let mut c = solo_comm(RuntimeConfig::fast());
        c.send_f64(0, 7, &[1.0, 2.0, 3.0]).unwrap();
        let (src, data) = c.recv_f64(0, 7).unwrap();
        assert_eq!(src, 0);
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        let s = c.snapshot_stats();
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.bytes_sent, 24);
    }

    #[test]
    fn typed_send_recv_u64_bytes_empty() {
        let mut c = solo_comm(RuntimeConfig::fast());
        c.send_u64(0, 1, &[9, 8]).unwrap();
        assert_eq!(c.recv_u64(0, 1).unwrap().1, vec![9, 8]);
        c.send_bytes(0, 2, &[1, 2, 3]).unwrap();
        assert_eq!(c.recv_bytes(0, 2).unwrap().1, vec![1, 2, 3]);
        c.send_empty(0, 3).unwrap();
        assert_eq!(c.recv_empty(0, 3).unwrap(), 0);
    }

    #[test]
    fn recv_charges_latency() {
        let mut cfg = RuntimeConfig::default();
        cfg.latency.alpha = 1.0;
        cfg.latency.beta = 0.0;
        let mut c = solo_comm(cfg);
        c.send_f64(0, 0, &[5.0]).unwrap();
        let _ = c.recv_f64(0, 0).unwrap();
        assert!((c.now() - 1.0).abs() < 1e-12, "receiver should pay alpha");
        assert!(c.snapshot_stats().comm_wait_time > 0.0);
    }

    #[test]
    fn invalid_rank_errors() {
        let mut c = solo_comm(RuntimeConfig::fast());
        assert!(matches!(
            c.send_f64(3, 0, &[1.0]),
            Err(RuntimeError::InvalidRank { rank: 3, size: 1 })
        ));
        assert!(c.recv_f64(9, 0).is_err());
    }

    #[test]
    fn type_mismatch_on_recv() {
        let mut c = solo_comm(RuntimeConfig::fast());
        c.send_u64(0, 0, &[1]).unwrap();
        assert!(matches!(
            c.recv_f64(0, 0),
            Err(RuntimeError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn persist_and_restore() {
        let mut c = solo_comm(RuntimeConfig::fast());
        c.persist("state", vec![1.0, 2.0]).unwrap();
        assert!(c.persisted(0, "state"));
        assert!(!c.persisted(0, "other"));
        let v = c.restore(0, "state").unwrap().into_f64().unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert!(matches!(
            c.restore(0, "missing"),
            Err(RuntimeError::MissingPersistentKey { .. })
        ));
    }

    #[test]
    fn checkpoint_restore_roundtrip_and_cost() {
        let mut cfg = RuntimeConfig::fast();
        cfg.checkpoint_seconds_per_byte = 0.5;
        let mut c = solo_comm(cfg);
        c.checkpoint("u", vec![1.0, 2.0]).unwrap(); // 16 bytes -> 8 s
        assert!((c.now() - 8.0).abs() < 1e-12);
        let v = c.restore_checkpoint("u").unwrap().into_f64().unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        assert!(c.restore_checkpoint("missing").is_none());
        assert_eq!(c.snapshot_stats().checkpoint_bytes, 16);
    }

    #[test]
    fn rng_is_reproducible_per_rank() {
        use rand::Rng;
        let w1 = World::new(RuntimeConfig::fast().with_seed(7), 2, StableStore::new());
        let w2 = World::new(RuntimeConfig::fast().with_seed(7), 2, StableStore::new());
        let mut a = Comm::new(w1.clone(), 0, 0, 0.0);
        let mut b = Comm::new(w2.clone(), 0, 0, 0.0);
        let mut c = Comm::new(w1, 1, 0, 0.0);
        let x: f64 = a.rng().gen();
        let y: f64 = b.rng().gen();
        let z: f64 = c.rng().gen();
        assert_eq!(x, y, "same rank + seed must reproduce");
        assert_ne!(x, z, "different ranks should be decorrelated");
    }

    #[test]
    fn sendrecv_self() {
        let mut c = solo_comm(RuntimeConfig::fast());
        let got = c.sendrecv_f64(0, 0, 4, &[2.5]).unwrap();
        assert_eq!(got, vec![2.5]);
    }
}
