//! Experiment K1 — surviving process failure mid-Krylov (LFLR × kernel):
//! mid-solve resume from persisted per-rank state vs. restart-from-zero,
//! across failure times and rank counts.
//!
//! A rank is killed partway through a distributed block-Jacobi
//! preconditioned solve running under the `kernel::lflr` protocol: the
//! `IterateRollbackPolicy` persists the iterate through `Comm::persist` on
//! a cadence, the replacement rank proposes the newest snapshot recoverable
//! from the dead incarnation's inherited partition at the recovery
//! rendezvous, survivors roll back in lockstep to the agreed step, and the
//! solve re-enters `run_cg`/`run_gmres` warm-started from the snapshot with
//! the block-Jacobi factors rebuilt locally (zero extra collectives). The
//! baseline pays the same failure, rendezvous and replacement cost but
//! restarts the solve from iteration zero with no persistence overhead —
//! the columns show the trade: a small checkpoint-bandwidth tax on the
//! clean path buys back the entire re-execution cost, growing with how
//! late the failure strikes.
//!
//! One caveat on reproducibility, faithful to ULFM: clean-run columns are
//! byte-deterministic, but a *survivor* observes a peer's death at its
//! next health check, whose position in the survivor's virtual timeline
//! depends on real thread scheduling — so the failure-mode columns can
//! vary between a small set of values (one persist-cadence point of
//! agreed-step wobble). The asserted claims hold across the whole set.
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::kernel::{lflr_pipelined_pcg, lflr_pipelined_pgmres, KrylovLflrConfig};
use resilience::prelude::*;
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_linalg::poisson2d;
use resilient_runtime::{
    Comm, FailureConfig, FailurePolicy, LatencyModel, Result, Runtime, RuntimeConfig,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Solver {
    PipelinedPcg,
    PipelinedPgmres,
}

impl Solver {
    fn name(self) -> &'static str {
        match self {
            Solver::PipelinedPcg => "pipelined BJ-PCG",
            Solver::PipelinedPgmres => "pipelined BJ-PGMRES",
        }
    }
}

fn base_config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::fast().with_seed(23);
    cfg.latency = LatencyModel {
        alpha: 5.0e-6,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.checkpoint_seconds_per_byte = 2.0e-8;
    cfg.replacement_cost = 0.05;
    cfg
}

fn solve_opts() -> DistSolveOptions {
    // The restart length is also the GMRES presets' persistence
    // granularity: snapshots are labelled with the cycle-base step, the
    // only iterate GMRES commits.
    let mut o = DistSolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(2000)
        .with_restart(10);
    // Application work each iteration overlaps (a nonlinear residual, say):
    // spreads the solve's virtual time across the iteration stream so
    // "failure at 60% of the solve" is meaningful.
    o.extra_work_per_iter = 5.0e-3;
    o
}

/// One job: returns (makespan, failures seen, max resumed_from,
/// snapshots on rank 0, all converged).
fn run_once(
    solver: Solver,
    n: usize,
    ranks: usize,
    lflr: KrylovLflrConfig,
    failures: Vec<(usize, f64)>,
) -> (f64, usize, usize, usize, bool) {
    let mut cfg = base_config();
    if !failures.is_empty() {
        cfg = cfg.with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            failures,
        ));
    }
    let rt = Runtime::new(cfg);
    let run = move |comm: &mut Comm| -> Result<(bool, usize, usize)> {
        let a = poisson2d(n, n);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
        let (out, report) = match solver {
            Solver::PipelinedPcg => lflr_pipelined_pcg(comm, &a, &b, &solve_opts(), &lflr)?,
            Solver::PipelinedPgmres => lflr_pipelined_pgmres(comm, &a, &b, &solve_opts(), &lflr)?,
        };
        Ok((
            out.converged,
            report.resumed_from,
            report.snapshots_persisted,
        ))
    };
    let r = rt.run(ranks, run);
    assert!(r.all_ok(), "{} failed: {:?}", solver.name(), r.errors);
    let failures_seen = r.failures.len();
    let makespan = r.job.makespan;
    let results = r.unwrap_all();
    let converged = results.iter().all(|(c, _, _)| *c);
    let resumed = results.iter().map(|(_, s, _)| *s).max().unwrap_or(0);
    let snapshots = results.first().map(|(_, _, s)| *s).unwrap_or(0);
    (makespan, failures_seen, resumed, snapshots, converged)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 32 } else { 40 };
    let rank_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let fractions: &[f64] = if smoke { &[0.6] } else { &[0.3, 0.6, 0.85] };
    let lflr = KrylovLflrConfig::default().with_persist_every(3);

    let mut table = Table::new(
        "K1: rank killed mid-Krylov — mid-solve resume (persisted rollback) vs restart-from-zero (virtual s)",
        &[
            "solver",
            "ranks",
            "fail@",
            "clean",
            "resume",
            "restart",
            "resume ovh",
            "restart ovh",
            "resumed@it",
            "snaps",
        ],
    );

    for &solver in &[Solver::PipelinedPcg, Solver::PipelinedPgmres] {
        for &ranks in rank_counts {
            let (clean, _, _, _, ok) = run_once(solver, n, ranks, lflr, vec![]);
            assert!(ok, "clean run must converge");
            for &frac in fractions {
                let fail = vec![(ranks / 2, frac * clean)];
                let (resume, f1, resumed_at, snaps, ok1) =
                    run_once(solver, n, ranks, lflr, fail.clone());
                let (restart, f2, _, _, ok2) =
                    run_once(solver, n, ranks, lflr.restart_from_zero(), fail);
                assert_eq!(f1, 1, "the failure must be injected");
                assert_eq!(f2, 1, "the failure must be injected");
                assert!(ok1, "resumed solve must converge");
                assert!(ok2, "restarted solve must converge");
                // The headline claim, machine-checked where the iteration
                // stream dominates the one-time factorization charge (at 2
                // ranks the per-rank LU setup swallows early failure times,
                // and a failure landing inside setup predates the first
                // snapshot — restart-from-scratch is then the correct and
                // honest outcome).
                if ranks >= 4 && frac >= 0.5 {
                    assert!(
                        resumed_at > 0,
                        "the resumed solve must re-enter mid-stream (failure at {frac} of clean)"
                    );
                    assert!(
                        resume < restart,
                        "mid-solve resume ({resume:.4}s) must beat restart-from-zero \
                         ({restart:.4}s) at {ranks} ranks, failure at {frac}"
                    );
                }
                table.row(vec![
                    solver.name().to_string(),
                    ranks.to_string(),
                    format!("{:.0}%", frac * 100.0),
                    fmt_g(clean),
                    fmt_g(resume),
                    fmt_g(restart),
                    fmt_ratio(resume / clean),
                    fmt_ratio(restart / clean),
                    resumed_at.to_string(),
                    snaps.to_string(),
                ]);
            }
        }
    }
    table.emit("k1_krylov_lflr");

    // The headline claim, machine-checked on every run: late failures are
    // where mid-solve resume pays — compare the latest-failure rows.
    println!(
        "\nmid-solve resume re-enters at the persisted step; restart-from-zero re-executes the full prefix."
    );
}
