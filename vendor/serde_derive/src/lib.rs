//! Offline vendored `serde_derive`: the derive macros are accepted anywhere
//! the real ones are, and expand to nothing. No trait impls are generated —
//! nothing in this workspace takes `T: Serialize` bounds, the derives exist
//! so the real serde can be swapped in as a manifest-only change later.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
