//! Runtime configuration: machine model, noise model and failure policy.

use serde::{Deserialize, Serialize};

/// The α–β (latency–bandwidth) communication cost model used to charge
/// virtual time for messages and collectives.
///
/// * A point-to-point message of `b` bytes costs `alpha + beta * b` seconds.
/// * A tree-based collective over `p` ranks costs
///   `ceil(log2(p)) * (alpha + beta * b)` seconds plus the reduction
///   arithmetic charged at `gamma` seconds per element.
///
/// Defaults loosely follow published interconnect numbers for a capability
/// machine of the paper's era (a few microseconds of latency, a few GB/s of
/// per-link bandwidth); the experiments sweep `alpha` so the absolute values
/// only set the scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-byte transfer time in seconds.
    pub beta: f64,
    /// Per-element reduction arithmetic time in seconds.
    pub gamma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            alpha: 2.0e-6,
            beta: 1.0e-9,
            gamma: 1.0e-9,
        }
    }
}

impl LatencyModel {
    /// A model with zero communication cost (useful in unit tests where only
    /// message ordering matters).
    pub fn zero() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            gamma: 0.0,
        }
    }

    /// Cost of a point-to-point message of `bytes` bytes.
    pub fn p2p_cost(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Number of tree stages for a collective over `p` ranks.
    pub fn tree_depth(p: usize) -> u32 {
        if p <= 1 {
            0
        } else {
            usize::BITS - (p - 1).leading_zeros()
        }
    }

    /// Cost of a tree-based collective moving `bytes` bytes per stage over
    /// `p` ranks, with `elems` elements of reduction arithmetic.
    pub fn collective_cost(&self, p: usize, bytes: usize, elems: usize) -> f64 {
        let depth = Self::tree_depth(p) as f64;
        depth * (self.alpha + self.beta * bytes as f64) + self.gamma * elems as f64 * depth
    }
}

/// Distribution of the duration of a single noise (performance-variability)
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseDistribution {
    /// Every event lasts exactly the given number of seconds.
    Fixed(f64),
    /// Exponentially distributed durations with the given mean (seconds).
    Exponential(f64),
    /// Uniformly distributed durations in `[lo, hi]` seconds.
    Uniform(f64, f64),
}

/// Configuration of per-rank performance-variability ("OS/ECC noise")
/// injection, the phenomenon §II-B of the paper identifies as the first
/// visible impact of declining hardware reliability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Whether noise is injected at all.
    pub enabled: bool,
    /// Mean number of noise events per second of virtual compute time.
    pub rate_hz: f64,
    /// Duration distribution of each event.
    pub duration: NoiseDistribution,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            rate_hz: 0.0,
            duration: NoiseDistribution::Fixed(0.0),
        }
    }
}

impl NoiseConfig {
    /// Disabled noise.
    pub fn off() -> Self {
        Self::default()
    }

    /// Exponentially distributed events: `rate_hz` events per virtual second,
    /// each with the given mean duration in seconds.
    pub fn exponential(rate_hz: f64, mean_duration: f64) -> Self {
        Self {
            enabled: true,
            rate_hz,
            duration: NoiseDistribution::Exponential(mean_duration),
        }
    }

    /// Fixed-duration events.
    pub fn fixed(rate_hz: f64, duration: f64) -> Self {
        Self {
            enabled: true,
            rate_hz,
            duration: NoiseDistribution::Fixed(duration),
        }
    }
}

/// What the runtime should do when a rank fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Classic MPI semantics: the whole job is torn down. The launcher
    /// reports the abort so a checkpoint/restart driver can restart it.
    AbortJob,
    /// ULFM/LFLR semantics: surviving ranks receive
    /// [`ProcFailed`](crate::error::RuntimeError::ProcFailed) notices, and a
    /// replacement rank is spawned to take over the failed rank's position.
    ReplaceRank,
    /// ULFM shrink semantics: surviving ranks receive failure notices and are
    /// expected to rebuild a smaller communicator via `shrink`; no
    /// replacement is spawned.
    Shrink,
}

/// Per-rank failure injection configuration.
///
/// Failure *times* are expressed in virtual seconds; the runtime checks them
/// at failure points (communication calls and explicit
/// [`failure_point`](crate::comm::Comm::failure_point) calls), which models
/// the fail-stop behaviour the LFLR model assumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Whether process-failure injection is enabled.
    pub enabled: bool,
    /// Policy applied when a rank fails.
    pub policy: FailurePolicy,
    /// Mean time between failures for a *single rank*, in virtual seconds
    /// (exponentially distributed). `f64::INFINITY` disables random failures.
    pub mtbf_per_rank: f64,
    /// Explicit failure schedule: `(rank, virtual_time)` pairs. Deterministic
    /// failures fire in addition to random ones and are what the integration
    /// tests use.
    pub scheduled: Vec<(usize, f64)>,
    /// Maximum number of failures to inject over the whole job
    /// (`usize::MAX` = unlimited).
    pub max_failures: usize,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            policy: FailurePolicy::AbortJob,
            mtbf_per_rank: f64::INFINITY,
            scheduled: Vec::new(),
            max_failures: usize::MAX,
        }
    }
}

impl FailureConfig {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Deterministic schedule of `(rank, virtual_time)` failures with the
    /// given policy.
    pub fn scheduled(policy: FailurePolicy, schedule: Vec<(usize, f64)>) -> Self {
        Self {
            enabled: true,
            policy,
            scheduled: schedule,
            ..Self::default()
        }
    }

    /// Random failures with exponential inter-arrival per rank.
    pub fn random(policy: FailurePolicy, mtbf_per_rank: f64, max_failures: usize) -> Self {
        Self {
            enabled: true,
            policy,
            mtbf_per_rank,
            max_failures,
            ..Self::default()
        }
    }
}

/// Top-level runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Communication cost model.
    pub latency: LatencyModel,
    /// Performance-variability injection.
    pub noise: NoiseConfig,
    /// Process-failure injection.
    pub failures: FailureConfig,
    /// Seconds of virtual compute time charged per floating-point operation
    /// by [`charge_flops`](crate::comm::Comm::charge_flops). The default
    /// corresponds to a 1 GFLOP/s per-core rate, deliberately modest so that
    /// communication and computation costs are comparable at the problem
    /// sizes the experiments use.
    pub seconds_per_flop: f64,
    /// Base RNG seed; each rank derives its stream from this and its rank id
    /// so runs are reproducible and rank-decorrelated.
    pub seed: u64,
    /// Virtual seconds charged for writing one byte to the stable store used
    /// by checkpoint/restart (models parallel-filesystem bandwidth).
    pub checkpoint_seconds_per_byte: f64,
    /// Fixed virtual seconds charged for a job restart under the
    /// checkpoint/restart policy (job relaunch + requeue cost).
    pub restart_cost: f64,
    /// Fixed virtual seconds charged for spawning a replacement rank under
    /// the LFLR policy.
    pub replacement_cost: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            noise: NoiseConfig::off(),
            failures: FailureConfig::none(),
            seconds_per_flop: 1.0e-9,
            seed: 0x5EED_5EED,
            checkpoint_seconds_per_byte: 1.0e-9,
            restart_cost: 1.0,
            replacement_cost: 0.05,
        }
    }
}

impl RuntimeConfig {
    /// Configuration with zero communication cost, no noise and no failures:
    /// the runtime then behaves as a deterministic message-passing library,
    /// which is what most unit tests want.
    pub fn fast() -> Self {
        Self {
            latency: LatencyModel::zero(),
            ..Self::default()
        }
    }

    /// Builder-style: set the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style: set the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Builder-style: set the failure model.
    pub fn with_failures(mut self, failures: FailureConfig) -> Self {
        self.failures = failures;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(LatencyModel::tree_depth(1), 0);
        assert_eq!(LatencyModel::tree_depth(2), 1);
        assert_eq!(LatencyModel::tree_depth(3), 2);
        assert_eq!(LatencyModel::tree_depth(4), 2);
        assert_eq!(LatencyModel::tree_depth(5), 3);
        assert_eq!(LatencyModel::tree_depth(8), 3);
        assert_eq!(LatencyModel::tree_depth(9), 4);
        assert_eq!(LatencyModel::tree_depth(1024), 10);
    }

    #[test]
    fn p2p_cost_is_affine_in_bytes() {
        let m = LatencyModel {
            alpha: 1.0,
            beta: 0.5,
            gamma: 0.0,
        };
        assert!((m.p2p_cost(0) - 1.0).abs() < 1e-15);
        assert!((m.p2p_cost(10) - 6.0).abs() < 1e-15);
    }

    #[test]
    fn collective_cost_grows_logarithmically() {
        let m = LatencyModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        };
        let c4 = m.collective_cost(4, 8, 1);
        let c16 = m.collective_cost(16, 8, 1);
        let c256 = m.collective_cost(256, 8, 1);
        assert!((c4 - 2.0).abs() < 1e-12);
        assert!((c16 - 4.0).abs() < 1e-12);
        assert!((c256 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_model_costs_nothing() {
        let m = LatencyModel::zero();
        assert_eq!(m.p2p_cost(1_000_000), 0.0);
        assert_eq!(m.collective_cost(1024, 1_000_000, 1_000), 0.0);
    }

    #[test]
    fn default_configs_are_benign() {
        let c = RuntimeConfig::default();
        assert!(!c.noise.enabled);
        assert!(!c.failures.enabled);
        let f = FailureConfig::none();
        assert_eq!(f.policy, FailurePolicy::AbortJob);
    }

    #[test]
    fn builders_apply() {
        let c = RuntimeConfig::fast()
            .with_seed(42)
            .with_noise(NoiseConfig::fixed(10.0, 0.001))
            .with_failures(FailureConfig::scheduled(
                FailurePolicy::ReplaceRank,
                vec![(1, 0.5)],
            ));
        assert_eq!(c.seed, 42);
        assert!(c.noise.enabled);
        assert!(c.failures.enabled);
        assert_eq!(c.failures.policy, FailurePolicy::ReplaceRank);
        assert_eq!(c.latency, LatencyModel::zero());
    }

    #[test]
    fn noise_constructors() {
        let n = NoiseConfig::exponential(100.0, 0.002);
        assert!(n.enabled);
        assert!(matches!(n.duration, NoiseDistribution::Exponential(d) if d == 0.002));
        let n = NoiseConfig::off();
        assert!(!n.enabled);
    }
}
