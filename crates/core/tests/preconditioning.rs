//! Tests for the preconditioner axis (space-generic preconditioning with
//! distributed block-Jacobi).
//!
//! Four pins:
//!
//! 1. **Identity is free** — every preconditioned preset run with
//!    [`IdentityPrecond`] produces bit-identical iterates, iteration counts
//!    and convergence decisions to its unpreconditioned counterpart, at
//!    every rank count.
//! 2. **Correctness** — the block-Jacobi preconditioned presets agree with
//!    a dense partial-pivot reference across 1–8 ranks on random SPD /
//!    nonsymmetric systems (property tests).
//! 3. **Zero added collectives** — block-Jacobi preconditioning leaves each
//!    preset's exact allreduce-per-iteration count unchanged (fused CG: 2,
//!    pipelined CG: 1, CGS GMRES: 2, p(1) GMRES: 1).
//! 4. **It actually preconditions** — on the ill-conditioned
//!    anisotropic/jumpy-coefficient problem, block-Jacobi reduces
//!    iterations-to-tolerance at every tested rank count.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilience::prelude::*;
use resilient_linalg::{anisotropic2d, diag_dominant_random, random_vector, spd_random, CsrMatrix};
use resilient_runtime::{Runtime, RuntimeConfig};

/// Dense reference solve: Gaussian elimination with partial pivoting.
fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let d = a.to_dense();
    let mut m = vec![vec![0.0f64; n + 1]; n];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, mij) in row.iter_mut().take(n).enumerate() {
            *mij = d.get(i, j);
        }
        row[n] = b[i];
    }
    for k in 0..n {
        let piv = (k..n)
            .max_by(|&i, &j| m[i][k].abs().partial_cmp(&m[j][k].abs()).unwrap())
            .unwrap();
        m.swap(k, piv);
        let pivot = m[k][k];
        assert!(pivot.abs() > 0.0, "reference solve: singular matrix");
        let pivot_row = m[k].clone();
        for row in m.iter_mut().skip(k + 1) {
            let f = row[k] / pivot;
            for (rj, pj) in row[k..].iter_mut().zip(&pivot_row[k..]) {
                *rj -= f * pj;
            }
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = m[i][n];
        for j in i + 1..n {
            s -= m[i][j] * x[j];
        }
        x[i] = s / m[i][i];
    }
    x
}

fn rel_err(x: &[f64], reference: &[f64]) -> f64 {
    let num: f64 = x
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(f64::EPSILON)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// 1. Identity-preconditioned presets are bit-identical to the existing ones
// ---------------------------------------------------------------------------

#[test]
fn identity_preconditioned_presets_are_bit_identical() {
    for ranks in [1usize, 2, 3, 5, 8] {
        let rt = Runtime::new(RuntimeConfig::fast());
        let rows = rt
            .run(ranks, move |comm| {
                let a = resilient_linalg::poisson2d(9, 9);
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(400)
                    .with_restart(30);
                let gmres_opts = opts;
                let pgm_opts = opts.with_tol(1e-7);

                let plain_cg = dist_cg(comm, &da, &b, &opts)?;
                let mut id = IdentityPrecond;
                let pre_cg = dist_pcg(comm, &da, &b, &mut id, &opts)?;

                let plain_pcg = pipelined_cg(comm, &da, &b, &opts)?;
                let mut id = IdentityPrecond;
                let pre_pcg = pipelined_pcg(comm, &da, &b, &mut id, &opts)?;

                let plain_gm = dist_gmres(comm, &da, &b, &gmres_opts)?;
                let mut id = IdentityPrecond;
                let pre_gm = dist_pgmres(comm, &da, &b, &mut id, &gmres_opts)?;

                let plain_pg = pipelined_gmres(comm, &da, &b, &pgm_opts)?;
                let mut id = IdentityPrecond;
                let pre_pg = pipelined_pgmres(comm, &da, &b, &mut id, &pgm_opts)?;

                Ok(vec![
                    (
                        "fused CG",
                        plain_cg.iterations,
                        pre_cg.iterations,
                        plain_cg.converged,
                        pre_cg.converged,
                        plain_cg.x.gather_global(comm)?,
                        pre_cg.x.gather_global(comm)?,
                    ),
                    (
                        "pipelined CG",
                        plain_pcg.iterations,
                        pre_pcg.iterations,
                        plain_pcg.converged,
                        pre_pcg.converged,
                        plain_pcg.x.gather_global(comm)?,
                        pre_pcg.x.gather_global(comm)?,
                    ),
                    (
                        "CGS GMRES",
                        plain_gm.iterations,
                        pre_gm.iterations,
                        plain_gm.converged,
                        pre_gm.converged,
                        plain_gm.x.gather_global(comm)?,
                        pre_gm.x.gather_global(comm)?,
                    ),
                    (
                        "p(1) GMRES",
                        plain_pg.iterations,
                        pre_pg.iterations,
                        plain_pg.converged,
                        pre_pg.converged,
                        plain_pg.x.gather_global(comm)?,
                        pre_pg.x.gather_global(comm)?,
                    ),
                ])
            })
            .unwrap_all();
        for row in rows {
            for (name, it_plain, it_pre, conv_plain, conv_pre, x_plain, x_pre) in row {
                assert_eq!(
                    it_plain, it_pre,
                    "{name} on {ranks} ranks: identity must not change iterations"
                );
                assert_eq!(conv_plain, conv_pre, "{name} on {ranks} ranks: convergence");
                assert_eq!(
                    bits(&x_plain),
                    bits(&x_pre),
                    "{name} on {ranks} ranks: identity-preconditioned iterate must be bit-identical"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Block-Jacobi presets vs the dense reference (property tests)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The four block-Jacobi preconditioned presets agree with the dense
    /// reference on every rank count from 1 to 8. Pipelined GMRES is
    /// checked in its stable regime (tol 1e-7 / error 1e-5), matching the
    /// unpreconditioned property test: the p(1) residual estimate is
    /// unreliable below √ε regardless of preconditioning.
    #[test]
    fn block_jacobi_presets_match_dense_reference(seed in 0u64..500, ranks in 1usize..=8) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 30;
        let spd = spd_random(n, &mut rng);
        let spd_b = random_vector(n, &mut rng);
        let gen = diag_dominant_random(n, 4, &mut rng);
        let gen_b = random_vector(n, &mut rng);
        let spd_ref = dense_solve(&spd, &spd_b);
        let gen_ref = dense_solve(&gen, &gen_b);
        let (spd2, spd_b2) = (spd.clone(), spd_b.clone());
        let (gen2, gen_b2) = (gen.clone(), gen_b.clone());
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(ranks, move |comm| {
                let opts = DistSolveOptions::default()
                    .with_tol(1e-11)
                    .with_max_iters(60 * n)
                    .with_restart(30);
                let da = DistCsr::from_global(comm, &spd2)?;
                let db = DistVector::from_global(comm, &spd_b2);
                let mut bj = BlockJacobi::new(&da);
                let fused = dist_pcg(comm, &da, &db, &mut bj, &opts)?;
                let mut bj = BlockJacobi::new(&da);
                let piped = pipelined_pcg(comm, &da, &db, &mut bj, &opts)?;
                let dg = DistCsr::from_global(comm, &gen2)?;
                let dgb = DistVector::from_global(comm, &gen_b2);
                let mut bj = BlockJacobi::new(&dg);
                let gm = dist_pgmres(comm, &dg, &dgb, &mut bj, &opts)?;
                let mut bj = BlockJacobi::new(&dg);
                let pgm = pipelined_pgmres(comm, &dg, &dgb, &mut bj, &opts.with_tol(1e-7))?;
                Ok((
                    (fused.converged, fused.x.gather_global(comm)?),
                    (piped.converged, piped.x.gather_global(comm)?),
                    (gm.converged, gm.x.gather_global(comm)?),
                    (pgm.converged, pgm.x.gather_global(comm)?),
                ))
            })
            .unwrap_all();
        for (fused, piped, gm, pgm) in results {
            for (name, reference, bound, (conv, x)) in [
                ("bj-pcg", &spd_ref, 1e-8, fused),
                ("bj-pipelined-pcg", &spd_ref, 1e-8, piped),
                ("bj-pgmres", &gen_ref, 1e-8, gm),
                ("bj-pipelined-pgmres", &gen_ref, 1e-5, pgm),
            ] {
                prop_assert!(conv, "{} did not converge on {} ranks", name, ranks);
                let err = rel_err(&x, reference);
                prop_assert!(err < bound, "{} error {} on {} ranks", name, err, ranks);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Block-Jacobi adds zero allreduces per iteration
// ---------------------------------------------------------------------------

/// Options that never converge (iteration counts exactly `max_iters`).
fn pinned_opts(max_iters: usize) -> DistSolveOptions {
    DistSolveOptions::default()
        .with_tol(1e-30)
        .with_max_iters(max_iters)
        .with_restart(30)
}

/// Collectives and iterations of one solver run on 4 ranks (rank 0's view;
/// counts are symmetric). `which`: 0 = fused CG, 1 = pipelined CG,
/// 2 = CGS GMRES, 3 = p(1) GMRES; `bj` switches block-Jacobi on.
fn collectives(which: usize, bj: bool, max_iters: usize) -> (u64, usize) {
    let rt = Runtime::new(RuntimeConfig::fast());
    let rows = rt
        .run(4, move |comm| {
            let a = anisotropic2d(8, 8, 0.05, 1000.0, 2);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
            let opts = pinned_opts(max_iters);
            let before = comm.snapshot_stats().collectives;
            let out = match (which, bj) {
                (0, false) => dist_cg(comm, &da, &b, &opts)?,
                (0, true) => {
                    let mut m = BlockJacobi::new(&da);
                    dist_pcg(comm, &da, &b, &mut m, &opts)?
                }
                (1, false) => pipelined_cg(comm, &da, &b, &opts)?,
                (1, true) => {
                    let mut m = BlockJacobi::new(&da);
                    pipelined_pcg(comm, &da, &b, &mut m, &opts)?
                }
                (2, false) => dist_gmres(comm, &da, &b, &opts)?,
                (2, true) => {
                    let mut m = BlockJacobi::new(&da);
                    dist_pgmres(comm, &da, &b, &mut m, &opts)?
                }
                (3, false) => pipelined_gmres(comm, &da, &b, &opts)?,
                (3, true) => {
                    let mut m = BlockJacobi::new(&da);
                    pipelined_pgmres(comm, &da, &b, &mut m, &opts)?
                }
                _ => unreachable!(),
            };
            let after = comm.snapshot_stats().collectives;
            Ok((after - before, out.iterations))
        })
        .unwrap_all();
    rows[0]
}

/// The acceptance pin: block-Jacobi preconditioning leaves every preset's
/// exact allreduce-per-iteration count unchanged — 2 for the blocking
/// schedules, 1 for the pipelined ones.
#[test]
fn block_jacobi_adds_zero_allreduces_per_iteration() {
    for (which, name, per_iter) in [
        (0usize, "fused CG", 2u64),
        (1, "pipelined CG", 1),
        (2, "CGS GMRES", 2),
        (3, "p(1) GMRES", 1),
    ] {
        let (plain_short, i1) = collectives(which, false, 5);
        let (plain_long, i2) = collectives(which, false, 12);
        assert_eq!((i1, i2), (5, 12), "{name}: plain runs must hit the cap");
        let (bj_short, i1) = collectives(which, true, 5);
        let (bj_long, i2) = collectives(which, true, 12);
        assert_eq!((i1, i2), (5, 12), "{name}: bj runs must hit the cap");
        let plain_delta = plain_long - plain_short;
        let bj_delta = bj_long - bj_short;
        assert_eq!(
            plain_delta,
            7 * per_iter,
            "{name}: expected {per_iter} allreduces per unpreconditioned iteration"
        );
        assert_eq!(
            bj_delta, plain_delta,
            "{name}: block-Jacobi must add zero allreduces per iteration"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Block-Jacobi reduces iterations on the ill-conditioned problem
// ---------------------------------------------------------------------------

#[test]
fn block_jacobi_reduces_iterations_at_every_rank_count() {
    for ranks in [1usize, 2, 4, 8] {
        let rt = Runtime::new(RuntimeConfig::fast());
        let rows = rt
            .run(ranks, move |comm| {
                let a = anisotropic2d(16, 16, 0.1, 100.0, 4);
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 5) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(2000)
                    .with_restart(60);
                let plain_cg = dist_cg(comm, &da, &b, &opts)?;
                let mut bj = BlockJacobi::new(&da);
                let pre_cg = dist_pcg(comm, &da, &b, &mut bj, &opts)?;
                let plain_gm = dist_gmres(comm, &da, &b, &opts)?;
                let mut bj = BlockJacobi::new(&da);
                let pre_gm = dist_pgmres(comm, &da, &b, &mut bj, &opts)?;
                assert!(plain_cg.converged && pre_cg.converged);
                assert!(plain_gm.converged && pre_gm.converged);
                Ok((
                    plain_cg.iterations,
                    pre_cg.iterations,
                    plain_gm.iterations,
                    pre_gm.iterations,
                ))
            })
            .unwrap_all();
        for (cg_plain, cg_bj, gm_plain, gm_bj) in rows {
            assert!(
                cg_bj < cg_plain,
                "{ranks} ranks: block-Jacobi CG must reduce iterations ({cg_bj} vs {cg_plain})"
            );
            assert!(
                gm_bj < gm_plain,
                "{ranks} ranks: block-Jacobi GMRES must reduce iterations ({gm_bj} vs {gm_plain})"
            );
        }
        if ranks == 1 {
            // One rank owns the whole matrix: block-Jacobi is a direct solve.
            let rt = Runtime::new(RuntimeConfig::fast());
            let iters = rt
                .run(1, move |comm| {
                    let a = anisotropic2d(16, 16, 0.1, 100.0, 4);
                    let da = DistCsr::from_global(comm, &a)?;
                    let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 5) as f64);
                    let mut bj = BlockJacobi::new(&da);
                    let opts = DistSolveOptions::default()
                        .with_tol(1e-8)
                        .with_max_iters(50);
                    let out = dist_pcg(comm, &da, &b, &mut bj, &opts)?;
                    assert!(out.converged);
                    Ok(out.iterations)
                })
                .unwrap_all();
            assert!(
                iters[0] <= 2,
                "single-rank block-Jacobi is an exact solve, took {}",
                iters[0]
            );
        }
    }
}
