//! Skeptical Programming (SkP, §II-A / §III-A): cheap mathematical checks
//! that detect silent data corruption, plus ABFT checksum kernels and a
//! bit-flip-resilient GMRES.

pub mod abft;
pub mod faulty;
pub mod sdc_gmres;

pub use abft::{abft_gemm_trial, abft_spmv_trial, encode_spmv, AbftOutcome, AbftStats};
pub use faulty::{FaultTarget, FaultyOperator, InjectionDone, InjectionPlan};
pub use sdc_gmres::{skeptical_gmres, SkepticalConfig, SkepticalReport, SkepticalResponse};
