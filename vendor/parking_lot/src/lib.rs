//! Offline vendored `parking_lot` API subset backed by `std::sync`.
//!
//! Provides `Mutex` (whose `lock()` returns the guard directly), `RwLock`
//! (`read()`/`write()`), and `Condvar` (`wait`/`wait_for`/`notify_*`) with
//! parking_lot's poison-free signatures. Lock poisoning is handled the way
//! parking_lot effectively behaves: a panic while holding a lock does not
//! poison it for later users (we recover the inner guard).

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the inner value (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get a mutable reference to the inner value (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with this crate's [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the guard by value: std's condvar API consumes and returns the
/// guard, parking_lot's takes it by `&mut`.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            // An unwind out of `f` would leave `guard` pointing at a
            // moved-out-of slot and double-drop it; `f` (a condvar wait)
            // cannot panic, but make the consequence abort, not UB.
            std::process::abort();
        }
    }
    // SAFETY: the guard is moved out of `*guard` and a valid replacement is
    // written back before returning; the abort bomb guarantees no path
    // (including unwinding) observes or re-drops the moved-out slot.
    unsafe {
        let bomb = AbortOnUnwind;
        let owned = std::ptr::read(guard);
        let new_guard = f(owned);
        std::ptr::write(guard, new_guard);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
