//! Process-failure recovery for distributed Krylov solves (LFLR × kernel).
//!
//! Pins for `kernel::lflr` (persisted `IterateRollbackPolicy` over
//! `Comm::persist`):
//!
//! 1. **Persistence is free arithmetic** — a failure-free LFLR solve runs
//!    the same iterations to the same bitwise solution as the plain preset
//!    (snapshots cost checkpoint bandwidth, never numerics).
//! 2. **Mid-solve survival** — with a rank killed mid-solve, the CG and
//!    GMRES presets converge to the same tolerance as the failure-free run
//!    across 2–8 ranks, resuming from a persisted step > 0 rather than
//!    iteration 0.
//! 3. **Resume beats restart** — mid-solve resume finishes in less virtual
//!    time than the restart-from-zero baseline under the same failure.
//! 4. **Skew-safe pruning** — even at the minimal window (`keep_last = 3`,
//!    cadence 2) no rank ever needs a snapshot a skew-ahead survivor
//!    pruned: every recovery restores the agreed step (`fallback_restores
//!    == 0`), and the store footprint stays bounded by the window.

use resilience::prelude::*;
use resilient_linalg::{poisson2d, CsrMatrix};
use resilient_runtime::{FailureConfig, FailurePolicy, Runtime, RuntimeConfig};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let a = poisson2d(24, 24);
    let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
    (a, b)
}

fn opts() -> DistSolveOptions {
    // Short restart cycles: GMRES snapshots are labelled with the cycle-base
    // step (the only iterate it commits), so the restart length is the
    // effective persistence granularity for the GMRES presets.
    let mut o = DistSolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(600)
        .with_restart(6);
    // Per-iteration application work so the solve's virtual time is spread
    // across iterations (rather than dominated by the one-time block-Jacobi
    // factorization charge) — failure times at makespan fractions then land
    // genuinely mid-iteration-stream.
    o.extra_work_per_iter = 2e-3;
    o
}

/// Which preset a scenario drives (the closure must be `Fn`, so pick by
/// value instead of capturing a function pointer with lifetimes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Preset {
    DistPcg,
    PipelinedPcg,
    DistPgmres,
    PipelinedPgmres,
}

impl Preset {
    fn run(
        self,
        comm: &mut resilient_runtime::Comm,
        a: &CsrMatrix,
        b: &[f64],
        o: &DistSolveOptions,
        cfg: &KrylovLflrConfig,
    ) -> resilient_runtime::Result<(DistSolveOutcome, KrylovLflrReport)> {
        match self {
            Preset::DistPcg => lflr_dist_pcg(comm, a, b, o, cfg),
            Preset::PipelinedPcg => lflr_pipelined_pcg(comm, a, b, o, cfg),
            Preset::DistPgmres => lflr_dist_pgmres(comm, a, b, o, cfg),
            Preset::PipelinedPgmres => lflr_pipelined_pgmres(comm, a, b, o, cfg),
        }
    }
}

/// Per-rank scenario observation: `(converged, x_global, report)`.
type RankResult = (bool, Vec<f64>, KrylovLflrReport);

/// Run a preset on `ranks` ranks under `failures`, returning the makespan,
/// failures seen, and the per-rank results.
fn run_scenario(
    ranks: usize,
    preset: Preset,
    cfg: KrylovLflrConfig,
    failures: Vec<(usize, f64)>,
) -> (f64, usize, Vec<RankResult>) {
    let mut rc = RuntimeConfig::fast().with_seed(11);
    if !failures.is_empty() {
        rc = rc.with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            failures,
        ));
    }
    let rt = Runtime::new(rc);
    let r = rt.run(ranks, move |comm| {
        let (a, b) = problem();
        let (out, report) = preset.run(comm, &a, &b, &opts(), &cfg)?;
        Ok((out.converged, out.x.gather_global(comm)?, report))
    });
    assert!(r.all_ok(), "{preset:?} on {ranks} ranks: {:?}", r.errors);
    let failures_seen = r.failures.len();
    (r.job.makespan, failures_seen, r.unwrap_all())
}

#[test]
fn failure_free_lflr_solve_matches_plain_preset() {
    // Persistence must be arithmetically invisible: same iterations, same
    // bitwise solution as the plain preconditioned preset.
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(11));
    let plain = rt
        .run(4, move |comm| {
            let (a, b) = problem();
            let da = DistCsr::from_global(comm, &a)?;
            let bv = DistVector::from_global(comm, &b);
            let mut bj = BlockJacobi::new(&da);
            let out = pipelined_pcg(comm, &da, &bv, &mut bj, &opts())?;
            Ok((out.iterations, out.x.gather_global(comm)?))
        })
        .unwrap_all();

    let (_, failures, lflr) =
        run_scenario(4, Preset::PipelinedPcg, KrylovLflrConfig::default(), vec![]);
    assert_eq!(failures, 0);
    let (a, b) = problem();
    for ((plain_iters, plain_x), (converged, x, report)) in plain.iter().zip(&lflr) {
        assert!(converged, "failure-free LFLR solve must converge");
        assert_eq!(report.recoveries, 0);
        assert!(report.snapshots_persisted > 0, "snapshots must be written");
        assert_eq!(report.fallback_restores, 0);
        assert_eq!(
            report.iterations, *plain_iters,
            "persistence must not change the iteration count"
        );
        assert_eq!(
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain_x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "persistence must not change the arithmetic"
        );
        assert!(true_relative_residual(&a, &b, x) < 1e-7);
    }
}

#[test]
fn rank_killed_mid_solve_resumes_cg_across_rank_counts() {
    let (a, b) = problem();
    for ranks in [2usize, 4, 8] {
        let (clean_time, _, _) = run_scenario(
            ranks,
            Preset::PipelinedPcg,
            KrylovLflrConfig::default(),
            vec![],
        );
        let cfg = KrylovLflrConfig::default().with_persist_every(3);
        let (_, failures, results) = run_scenario(
            ranks,
            Preset::PipelinedPcg,
            cfg,
            vec![(ranks / 2, 0.5 * clean_time)],
        );
        assert_eq!(failures, 1, "{ranks} ranks: the failure must be injected");
        let mut max_resumed = 0usize;
        for (converged, x, report) in &results {
            assert!(converged, "{ranks} ranks: solve must survive the failure");
            assert!(
                true_relative_residual(&a, &b, x) < 1e-7,
                "{ranks} ranks: resumed solve must hit the failure-free tolerance"
            );
            assert!(report.recoveries >= 1, "{ranks} ranks: recovery must run");
            assert_eq!(
                report.fallback_restores, 0,
                "{ranks} ranks: agreed snapshot present"
            );
            max_resumed = max_resumed.max(report.resumed_from);
        }
        assert!(
            max_resumed > 0,
            "{ranks} ranks: the solve must resume mid-stream, not from iteration 0"
        );
    }
}

#[test]
fn rank_killed_mid_solve_resumes_gmres_across_rank_counts() {
    let (a, b) = problem();
    for ranks in [2usize, 4, 8] {
        let (clean_time, _, _) = run_scenario(
            ranks,
            Preset::PipelinedPgmres,
            KrylovLflrConfig::default(),
            vec![],
        );
        let cfg = KrylovLflrConfig::default().with_persist_every(3);
        let (_, failures, results) = run_scenario(
            ranks,
            Preset::PipelinedPgmres,
            cfg,
            vec![(ranks / 2, 0.5 * clean_time)],
        );
        assert_eq!(failures, 1, "{ranks} ranks: the failure must be injected");
        let mut max_resumed = 0usize;
        for (converged, x, report) in &results {
            assert!(converged, "{ranks} ranks: GMRES must survive the failure");
            assert!(true_relative_residual(&a, &b, x) < 1e-7);
            assert!(report.recoveries >= 1);
            assert_eq!(report.fallback_restores, 0);
            max_resumed = max_resumed.max(report.resumed_from);
        }
        assert!(
            max_resumed > 0,
            "{ranks} ranks: GMRES must resume mid-stream"
        );
    }
}

#[test]
fn bulk_synchronous_presets_survive_failures_too() {
    // The fused-CG and CGS-GMRES variants share the driver; one mid-solve
    // failure each at 4 ranks.
    let (a, b) = problem();
    for preset in [Preset::DistPcg, Preset::DistPgmres] {
        let (clean_time, _, _) = run_scenario(4, preset, KrylovLflrConfig::default(), vec![]);
        let cfg = KrylovLflrConfig::default().with_persist_every(3);
        let (_, failures, results) = run_scenario(4, preset, cfg, vec![(1, 0.5 * clean_time)]);
        assert_eq!(failures, 1);
        for (converged, x, report) in &results {
            assert!(converged, "{preset:?} must survive the failure");
            assert!(true_relative_residual(&a, &b, x) < 1e-7);
            assert!(report.recoveries >= 1);
            assert_eq!(report.fallback_restores, 0);
        }
    }
}

#[test]
fn mid_solve_resume_beats_restart_from_zero() {
    // Same failure, two recovery modes: warm-starting from the persisted
    // snapshot must cost less virtual time than redoing the whole solve.
    let ranks = 4;
    let (clean_time, _, _) = run_scenario(
        ranks,
        Preset::PipelinedPcg,
        KrylovLflrConfig::default(),
        vec![],
    );
    let fail = vec![(1usize, 0.7 * clean_time)];
    let cfg = KrylovLflrConfig::default().with_persist_every(3);
    let (resume_time, f1, resumed) = run_scenario(ranks, Preset::PipelinedPcg, cfg, fail.clone());
    let (restart_time, f2, restarted) =
        run_scenario(ranks, Preset::PipelinedPcg, cfg.restart_from_zero(), fail);
    assert_eq!(f1, 1);
    assert_eq!(f2, 1);
    for (converged, _, report) in &resumed {
        assert!(converged);
        assert!(report.resumed_from > 0, "resume mode must warm-start");
    }
    for (converged, _, report) in &restarted {
        assert!(converged);
        assert_eq!(report.resumed_from, 0, "baseline must restart from zero");
        assert_eq!(
            report.snapshots_persisted, 0,
            "baseline writes no snapshots"
        );
    }
    assert!(
        resume_time < restart_time,
        "mid-solve resume ({resume_time:.4}s) must beat restart-from-zero ({restart_time:.4}s)"
    );
}

#[test]
fn minimal_pruning_window_never_loses_the_agreed_snapshot() {
    // Regression for persist-window pruning × replacement fetch: at the
    // proven-floor window (keep_last = 3) and an aggressive cadence, a
    // skew-ahead survivor must never have pruned the snapshot the
    // just-spawned replacement proposes — every rank restores the agreed
    // step (fallback_restores == 0) — and the per-rank store footprint
    // stays bounded by the window.
    let ranks = 4;
    let cfg = KrylovLflrConfig::default()
        .with_persist_every(2)
        .with_keep_last(3);
    let (clean_time, _, _) = run_scenario(ranks, Preset::PipelinedPcg, cfg, vec![]);
    let mut rc = RuntimeConfig::fast().with_seed(11);
    rc = rc.with_failures(FailureConfig::scheduled(
        FailurePolicy::ReplaceRank,
        vec![(2, 0.6 * clean_time)],
    ));
    let rt = Runtime::new(rc);
    let r = rt.run(ranks, move |comm| {
        let (a, b) = problem();
        let (out, report) = lflr_pipelined_pcg(comm, &a, &b, &opts(), &cfg)?;
        // Count the snapshots still in this rank's partition after the
        // solve: pruning must have kept the footprint at the window.
        let me = comm.rank();
        let retained = (0..=opts().max_iters)
            .filter(|&s| comm.persisted(me, &resilience::kernel::snapshot_key(s)))
            .count();
        Ok((out.converged, report, retained))
    });
    assert!(r.all_ok(), "errors: {:?}", r.errors);
    assert_eq!(r.failures.len(), 1);
    let mut max_resumed = 0usize;
    for (converged, report, retained) in r.unwrap_all() {
        assert!(converged);
        assert_eq!(
            report.fallback_restores, 0,
            "the agreed snapshot must never have been pruned"
        );
        assert!(report.recoveries >= 1);
        // The resumed attempt prunes its own window (3); each recovery can
        // additionally strand at most one pre-failure window behind, so the
        // footprint stays bounded by 2 windows per failure event.
        assert!(
            retained <= 6,
            "store footprint must stay bounded by the window (retained {retained})"
        );
        // The write counter is total writes, not the pruned ring: at
        // cadence 2 over dozens of iterations it must exceed what pruning
        // retains.
        assert!(
            report.snapshots_persisted > retained,
            "snapshots_persisted must count all writes ({} vs retained {retained})",
            report.snapshots_persisted
        );
        max_resumed = max_resumed.max(report.resumed_from);
    }
    assert!(
        max_resumed > 0,
        "the recovery must actually resume mid-stream"
    );
}
