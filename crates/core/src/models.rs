//! The four resilience-enabling programming models (§II of the paper) and
//! where each one lives in this crate.
//!
//! | Model | Paper section | Implemented by |
//! |---|---|---|
//! | Skeptical Programming (SkP) | §II-A | [`crate::skeptical`] — invariant checks, ABFT kernels, bit-flip-resilient GMRES |
//! | Relaxed Bulk-Synchronous Programming (RBSP) | §II-B | [`crate::rbsp`] — pipelined CG / p(1)-GMRES over nonblocking collectives |
//! | Local-Failure Local-Recovery (LFLR) | §II-C | [`crate::lflr`] — LFLR step driver, persistent store protocol, CPR baseline |
//! | Selective Reliability Programming (SRP) | §II-D | [`crate::srp`] — reliable/unreliable tiers, FT-GMRES, TMR ablation |

use serde::{Deserialize, Serialize};

/// The four programming models, as an enumeration usable in experiment
/// records and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgrammingModel {
    /// Skeptical Programming: cheap invariant checks against silent data
    /// corruption. "Requires nothing more than a change in attitude on the
    /// part of the programmer."
    Skeptical,
    /// Relaxed Bulk-Synchronous Programming: asynchronous collectives and
    /// latency-tolerant algorithm variants. "Already possible with the
    /// introduction of MPI 3.0."
    RelaxedBulkSynchronous,
    /// Local-Failure Local-Recovery: persistent local state, registered
    /// recovery, replacement processes. "Requires more support from the
    /// underlying system layers" (ULFM is one approach).
    LocalFailureLocalRecovery,
    /// Selective Reliability: reliable and unreliable data/compute tiers.
    /// "The most challenging model, but also firmly addresses … silent
    /// errors."
    SelectiveReliability,
}

impl ProgrammingModel {
    /// All four models, in the paper's order (easiest to hardest to deploy).
    pub const ALL: [ProgrammingModel; 4] = [
        ProgrammingModel::Skeptical,
        ProgrammingModel::RelaxedBulkSynchronous,
        ProgrammingModel::LocalFailureLocalRecovery,
        ProgrammingModel::SelectiveReliability,
    ];

    /// The abbreviation used in the paper.
    pub fn abbreviation(&self) -> &'static str {
        match self {
            ProgrammingModel::Skeptical => "SkP",
            ProgrammingModel::RelaxedBulkSynchronous => "RBSP",
            ProgrammingModel::LocalFailureLocalRecovery => "LFLR",
            ProgrammingModel::SelectiveReliability => "SRP",
        }
    }

    /// The failure class the model primarily addresses.
    pub fn addresses(&self) -> &'static str {
        match self {
            ProgrammingModel::Skeptical => "silent data corruption (detection)",
            ProgrammingModel::RelaxedBulkSynchronous => "performance variability / latency",
            ProgrammingModel::LocalFailureLocalRecovery => "process (node) loss",
            ProgrammingModel::SelectiveReliability => "silent data corruption (containment)",
        }
    }

    /// Relative deployment difficulty per the paper's ordering (1 = easiest).
    pub fn difficulty_rank(&self) -> u8 {
        match self {
            ProgrammingModel::Skeptical => 1,
            ProgrammingModel::RelaxedBulkSynchronous => 2,
            ProgrammingModel::LocalFailureLocalRecovery => 3,
            ProgrammingModel::SelectiveReliability => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        let abbrs: Vec<&str> = ProgrammingModel::ALL
            .iter()
            .map(|m| m.abbreviation())
            .collect();
        assert_eq!(abbrs, vec!["SkP", "RBSP", "LFLR", "SRP"]);
    }

    #[test]
    fn difficulty_is_strictly_increasing_in_paper_order() {
        let d: Vec<u8> = ProgrammingModel::ALL
            .iter()
            .map(|m| m.difficulty_rank())
            .collect();
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn every_model_addresses_something() {
        for m in ProgrammingModel::ALL {
            assert!(!m.addresses().is_empty());
        }
    }
}
