//! Local-Failure Local-Recovery (LFLR) and the global checkpoint/restart
//! baseline (§II-C, §III-C).
//!
//! * [`run_lflr`] drives a step-structured application under the
//!   `ReplaceRank` failure policy: when a rank dies, a replacement is
//!   spawned, all ranks meet in a recovery rendezvous, agree on the last
//!   globally persisted step, locally restore their state (the replacement
//!   restores the dead rank's state from the persistent store / its
//!   neighbours) and resume. Only the failed rank's state is rebuilt; the
//!   survivors keep working data they already have.
//! * [`run_cpr`] drives the same kind of application under the classic
//!   `AbortJob` policy: every failure kills the whole job, which the driver
//!   restarts from the last global checkpoint on the stable store, paying
//!   the full restart and re-execution cost. This is the baseline the paper
//!   argues stops scaling.

pub mod cpr;
pub mod driver;

pub use cpr::{run_cpr, CprApp, CprConfig, CprReport};
pub use driver::{run_lflr, LflrApp, LflrReport};
