//! Device-op layer throughput: scalar vs SIMD backends on the level-1
//! kernels and CSR vs SELL-C-σ on SpMV, across cache-resident and
//! memory-bound sizes.
//!
//! The interesting comparisons: `dot` (SIMD wins while data fits in
//! cache, converges to the memory wall at 1M), `dot_pairs` (the fused
//! multi-dot reads shared vectors once, so it beats separate dots even
//! when bandwidth-bound), and SELL vs CSR SpMV (gather-vectorisable
//! layout on ragged rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilient_linalg::{poisson2d, scalar_ops, simd_ops, LocalOps, SellMatrix};
use std::time::Duration;

const SIZES: [usize; 3] = [1_000, 100_000, 1_000_000];

fn vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect();
    let y: Vec<f64> = (0..n).map(|i| 0.5 - (i % 13) as f64 * 0.125).collect();
    (x, y)
}

fn backends() -> [(&'static str, &'static dyn LocalOps); 2] {
    [("scalar", scalar_ops()), ("simd", simd_ops())]
}

fn bench_level1(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ops/dot");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &SIZES {
        let (x, y) = vectors(n);
        for (name, ops) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| std::hint::black_box(ops.dot(&x, &y)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("local_ops/dot_pairs3");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &SIZES {
        // The pipelined-CG shape: three dots over two shared vectors.
        let (r, u) = vectors(n);
        let w = r.clone();
        for (name, ops) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let pairs: [(&[f64], &[f64]); 3] = [(&r, &u), (&w, &u), (&r, &r)];
                let mut out = [0.0; 3];
                b.iter(|| {
                    ops.dot_pairs(&pairs, &mut out);
                    std::hint::black_box(out[2])
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("local_ops/dot_blocks");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &k in &[1usize, 4, 8] {
        // The block fused-CG shape: the (r·z, r·r) pair batch over k
        // columns of 100k rows each — one call per batched reduction.
        let n = 100_000;
        let (r, z) = vectors(k * n);
        for (name, ops) in backends() {
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
                let pairs: [(&[f64], &[f64]); 2] = [(&r, &z), (&r, &r)];
                let mut out = vec![0.0; 2 * k];
                b.iter(|| {
                    ops.dot_blocks(k, &pairs, &mut out);
                    std::hint::black_box(out[k - 1])
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("local_ops/axpy");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &SIZES {
        let (x, y) = vectors(n);
        for (name, ops) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut yb = y.clone();
                b.iter(|| {
                    ops.axpy(1.0000001, &x, &mut yb);
                    std::hint::black_box(yb[n / 2])
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("local_ops/nrm2");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &SIZES {
        let (x, _) = vectors(n);
        for (name, ops) in backends() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| std::hint::black_box(ops.nrm2(&x)))
            });
        }
    }
    group.finish();
}

fn bench_spmv_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_ops/spmv");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &side in &[32usize, 180, 512] {
        let a = poisson2d(side, side);
        let sell = SellMatrix::from_csr(&a, resilient_linalg::SELL_DEFAULT_SIGMA);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut y = vec![0.0; n];
        for (name, ops) in backends() {
            let csr_id = format!("csr/{name}");
            group.bench_with_input(BenchmarkId::new(&csr_id, n), &n, |b, _| {
                b.iter(|| {
                    ops.spmv_csr(&a, &x, &mut y);
                    std::hint::black_box(y[n / 2])
                })
            });
            let sell_id = format!("sell/{name}");
            group.bench_with_input(BenchmarkId::new(&sell_id, n), &n, |b, _| {
                b.iter(|| {
                    ops.spmv_sell(&sell, &x, &mut y);
                    std::hint::black_box(y[n / 2])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_level1, bench_spmv_layouts);
criterion_main!(benches);
