//! Experiment E3 — latency-tolerant Krylov solvers (RBSP, §III-B): classic
//! vs. pipelined CG and GMRES under sweeps of rank count and collective
//! latency, with and without per-rank noise — and, since preconditioning
//! became a kernel axis, the same blocking-vs-pipelined comparison for the
//! block-Jacobi preconditioned CG presets (`dist_pcg` vs `pipelined_pcg`):
//! the preconditioner's local work is overlap-friendly, so latency hiding
//! keeps paying off at production-like iteration counts.

use resilience::prelude::*;
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, NoiseConfig, Runtime, RuntimeConfig};

/// Virtual solve times for (CG, pipelined CG, GMRES, pipelined GMRES,
/// block-Jacobi PCG, block-Jacobi pipelined PCG).
type SolveTimes = (f64, f64, f64, f64, f64, f64);

fn solve_times(ranks: usize, alpha: f64, noise: bool) -> SolveTimes {
    let mut cfg = RuntimeConfig::fast().with_seed(11);
    cfg.latency = LatencyModel {
        alpha,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.seconds_per_flop = 1e-9;
    if noise {
        cfg.noise = NoiseConfig::exponential(2000.0, 2.0e-4);
    }
    let rt = Runtime::new(cfg);
    let result = rt.run(ranks, move |comm| {
        let a = poisson2d(24, 24);
        let n = a.nrows();
        let da = DistCsr::from_global(comm, &a)?;
        let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
        let mut opts = DistSolveOptions::default()
            .with_tol(1e-7)
            .with_max_iters(250);
        opts.restart = 40;
        opts.extra_work_per_iter = 5.0e-5;
        let t0 = comm.now();
        let c = dist_cg(comm, &da, &b, &opts)?;
        let t1 = comm.now();
        let p = pipelined_cg(comm, &da, &b, &opts)?;
        let t2 = comm.now();
        let g = dist_gmres(comm, &da, &b, &opts)?;
        let t3 = comm.now();
        let pg = pipelined_gmres(comm, &da, &b, &opts)?;
        let t4 = comm.now();
        let mut bj = BlockJacobi::new(&da);
        let bc = dist_pcg(comm, &da, &b, &mut bj, &opts)?;
        let t5 = comm.now();
        let mut bj = BlockJacobi::new(&da);
        let bp = pipelined_pcg(comm, &da, &b, &mut bj, &opts)?;
        let t6 = comm.now();
        assert!(c.converged && p.converged && g.converged && pg.converged);
        assert!(bc.converged && bp.converged);
        Ok((t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, t6 - t5))
    });
    let per_rank = result.unwrap_all();
    let max = |f: &dyn Fn(&SolveTimes) -> f64| per_rank.iter().map(f).fold(0.0f64, f64::max);
    (
        max(&|r| r.0),
        max(&|r| r.1),
        max(&|r| r.2),
        max(&|r| r.3),
        max(&|r| r.4),
        max(&|r| r.5),
    )
}

fn main() {
    let mut table = Table::new(
        "E3: time-to-solution (virtual s), classic vs pipelined, 2-D Poisson n=576",
        &[
            "ranks",
            "alpha",
            "noise",
            "CG",
            "pipelined CG",
            "CG speedup",
            "GMRES",
            "p(1)-GMRES",
            "GMRES speedup",
            "PCG(bj)",
            "p-PCG(bj)",
            "PCG(bj) speedup",
        ],
    );
    for &ranks in &[4usize, 8, 16, 32] {
        for &alpha in &[2.0e-6, 1.0e-4, 5.0e-4] {
            for &noise in &[false, true] {
                let (cg_t, pcg_t, g_t, pg_t, bj_t, bjp_t) = solve_times(ranks, alpha, noise);
                table.row(vec![
                    ranks.to_string(),
                    format!("{alpha:.0e}"),
                    if noise { "yes".into() } else { "no".into() },
                    fmt_g(cg_t),
                    fmt_g(pcg_t),
                    fmt_ratio(cg_t / pcg_t.max(1e-12)),
                    fmt_g(g_t),
                    fmt_g(pg_t),
                    fmt_ratio(g_t / pg_t.max(1e-12)),
                    fmt_g(bj_t),
                    fmt_g(bjp_t),
                    fmt_ratio(bj_t / bjp_t.max(1e-12)),
                ]);
            }
        }
    }
    table.emit("e3_latency");
}
