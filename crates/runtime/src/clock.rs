//! Per-rank virtual clocks.
//!
//! The *simulator* backend does not measure wall-clock time for its
//! performance model (wall time on an oversubscribed test machine tells us
//! nothing about a million-rank machine). Instead every simulated rank owns
//! a [`VirtualClock`] whose value advances when the application *charges*
//! work to it:
//!
//! * explicit compute cost via [`VirtualClock::advance`], usually through
//!   [`Comm::advance`](crate::comm::Comm::advance) or
//!   [`Comm::charge_flops`](crate::comm::Comm::charge_flops);
//! * communication cost, charged by the point-to-point and collective
//!   implementations according to the configured
//!   [`LatencyModel`](crate::config::LatencyModel);
//! * performance-variability noise injected by the
//!   [`NoiseModel`](crate::noise::NoiseModel).
//!
//! Virtual time is the quantity reported by all latency-tolerance and
//! recovery experiments (E3, E4, E8, E9 in DESIGN.md). It is no longer the
//! *only* timeline in the repo: the real-threads backend
//! ([`threads`](crate::threads)) measures the same algorithms under
//! wall-clock time, and `exp_backend_parity` checks the virtual-time
//! predictions against those measurements.

/// A monotonically non-decreasing virtual clock, measured in seconds.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: f64,
    /// Total time attributed to local computation.
    compute: f64,
    /// Total time attributed to waiting on communication (latency that was
    /// *not* hidden by local work).
    comm_wait: f64,
    /// Total time attributed to injected noise events.
    noise: f64,
    /// Total time attributed to recovery work after failures.
    recovery: f64,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the clock by `dt` seconds of computation. Negative or
    /// non-finite increments are ignored.
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        if dt.is_finite() && dt > 0.0 {
            self.now += dt;
            self.compute += dt;
        }
    }

    /// Advance the clock by `dt` seconds of injected noise.
    #[inline]
    pub fn advance_noise(&mut self, dt: f64) {
        if dt.is_finite() && dt > 0.0 {
            self.now += dt;
            self.noise += dt;
        }
    }

    /// Advance the clock by `dt` seconds of recovery work.
    #[inline]
    pub fn advance_recovery(&mut self, dt: f64) {
        if dt.is_finite() && dt > 0.0 {
            self.now += dt;
            self.recovery += dt;
        }
    }

    /// Move the clock forward to `t` (if `t` is in the future), attributing
    /// the gap to communication wait. Returns the amount of time waited.
    #[inline]
    pub fn wait_until(&mut self, t: f64) -> f64 {
        if t > self.now {
            let waited = t - self.now;
            self.comm_wait += waited;
            self.now = t;
            waited
        } else {
            0.0
        }
    }

    /// Force the clock to at least `t` without attributing the gap to any
    /// category (used when a replacement rank inherits the failure time of
    /// its predecessor).
    #[inline]
    pub fn fast_forward(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Seconds spent in local computation.
    pub fn compute_time(&self) -> f64 {
        self.compute
    }

    /// Seconds spent waiting on communication.
    pub fn comm_wait_time(&self) -> f64 {
        self.comm_wait
    }

    /// Seconds added by noise injection.
    pub fn noise_time(&self) -> f64 {
        self.noise
    }

    /// Seconds spent in recovery.
    pub fn recovery_time(&self) -> f64 {
        self.recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.compute_time(), 0.0);
    }

    #[test]
    fn advance_accumulates_compute() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-15);
        assert!((c.compute_time() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn ignores_negative_and_nan() {
        let mut c = VirtualClock::new();
        c.advance(-1.0);
        c.advance(f64::NAN);
        c.advance(f64::INFINITY);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = VirtualClock::new();
        c.advance(5.0);
        let waited = c.wait_until(3.0);
        assert_eq!(waited, 0.0);
        assert_eq!(c.now(), 5.0);
        let waited = c.wait_until(8.0);
        assert!((waited - 3.0).abs() < 1e-15);
        assert!((c.comm_wait_time() - 3.0).abs() < 1e-15);
        assert_eq!(c.now(), 8.0);
    }

    #[test]
    fn categories_are_separate() {
        let mut c = VirtualClock::new();
        c.advance(1.0);
        c.advance_noise(2.0);
        c.advance_recovery(3.0);
        c.wait_until(7.0);
        assert!((c.compute_time() - 1.0).abs() < 1e-15);
        assert!((c.noise_time() - 2.0).abs() < 1e-15);
        assert!((c.recovery_time() - 3.0).abs() < 1e-15);
        assert!((c.comm_wait_time() - 1.0).abs() < 1e-15);
        assert!((c.now() - 7.0).abs() < 1e-15);
    }

    #[test]
    fn fast_forward_does_not_attribute() {
        let mut c = VirtualClock::new();
        c.fast_forward(10.0);
        assert_eq!(c.now(), 10.0);
        assert_eq!(c.comm_wait_time(), 0.0);
        assert_eq!(c.compute_time(), 0.0);
        c.fast_forward(5.0);
        assert_eq!(c.now(), 10.0);
    }
}
