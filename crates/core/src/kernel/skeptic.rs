//! The skeptical checks of §III-A as a composable [`ResiliencePolicy`].
//!
//! [`SkepticalPolicy`] reimplements the invariant tests of the legacy
//! `skeptical_gmres` silo — finiteness/norm-bound on every product,
//! orthogonality of the newest basis pair, periodic residual-consistency —
//! generically over any [`KrylovSpace`], so the same checks now also guard
//! pipelined/distributed solves (every decision quantity is a *global* norm
//! or dot, keeping rank control flow symmetric).
//!
//! ## Wants-dots fusion
//!
//! Detection that adds synchronization negates the latency-hiding it guards
//! (Agullo et al.), so on strategies with a fused reduction the policy does
//! not post its own collectives: it requests its check pairs through
//! [`check_dots`](ResiliencePolicy::check_dots), receives the globally
//! reduced scalars through
//! [`consume_check_dots`](ResiliencePolicy::consume_check_dots) before the
//! detection hooks run, and decides from those. On pipelined schedules the
//! fused scalars refer to the most recent *completed* product/basis pair,
//! so detection lags one step — still recovered by a corrective restart,
//! since the iterate is only committed at cycle boundaries (GMRES) or can
//! be re-seeded (CG). Immediate-dot strategies (`MgsOrtho`, `PcgStep`)
//! never negotiate; there the policy keeps the legacy direct reductions,
//! charging exactly the reductions that actually run.

use super::policy::{
    CheckDot, DetectionResponse, IterCtx, PolicyAction, PolicyOverhead, ResiliencePolicy,
    SolutionProbe,
};
use super::space::KrylovSpace;
use crate::skeptical::sdc_gmres::{SkepticalConfig, SkepticalReport, SkepticalResponse};
use resilient_runtime::Result;

/// Globally reduced check scalars delivered by the current wants-dots round
/// (cleared at each negotiation; `take`n by the detection hooks).
#[derive(Debug, Clone, Default)]
struct FusedCheckState {
    /// True once a fusing strategy has negotiated with this policy; the
    /// detection hooks then consume fused globals and never post their own
    /// reductions.
    active: bool,
    product_norm_sq: Option<f64>,
    input_norm_sq: Option<f64>,
    basis_pair_dot: Option<f64>,
    new_basis_norm_sq: Option<f64>,
    prev_basis_norm_sq: Option<f64>,
}

/// Skeptical invariant checks as a policy. Build from the legacy
/// [`SkepticalConfig`]; after the solve, [`SkepticalPolicy::report`] returns
/// the legacy [`SkepticalReport`].
#[derive(Debug, Clone)]
pub struct SkepticalPolicy {
    cfg: SkepticalConfig,
    report: SkepticalReport,
    /// Operator ∞-norm estimate, captured at solve start from the space.
    norm_a: f64,
    fused: FusedCheckState,
}

impl SkepticalPolicy {
    /// Build the policy from a skeptical configuration.
    pub fn new(cfg: SkepticalConfig) -> Self {
        Self {
            cfg,
            report: SkepticalReport::default(),
            norm_a: f64::INFINITY,
            fused: FusedCheckState::default(),
        }
    }

    /// The accumulated legacy-format report.
    pub fn report(&self) -> SkepticalReport {
        self.report.clone()
    }
}

impl<S: KrylovSpace> ResiliencePolicy<S> for SkepticalPolicy {
    fn name(&self) -> &'static str {
        "skeptical"
    }

    fn response(&self) -> DetectionResponse {
        match self.cfg.response {
            SkepticalResponse::RecordOnly => DetectionResponse::RecordOnly,
            SkepticalResponse::Restart => DetectionResponse::Restart,
            SkepticalResponse::Abort => DetectionResponse::Abort,
        }
    }

    fn on_solve_start(&mut self, space: &mut S, _b: &S::Vector) -> Result<()> {
        self.norm_a = space.operator_norm_estimate();
        Ok(())
    }

    fn check_dots(&mut self, _ctx: &IterCtx) -> Vec<CheckDot> {
        if !self.cfg.fuse_checks {
            return Vec::new();
        }
        self.fused = FusedCheckState {
            active: true,
            ..FusedCheckState::default()
        };
        if !self.cfg.local_checks {
            return Vec::new();
        }
        let mut reqs = vec![CheckDot::ProductNormSq];
        if self.norm_a.is_finite() {
            // The norm-bound test needs ‖v‖; without a finite ‖A‖ estimate
            // only the finiteness test can fire, so don't reduce it.
            reqs.push(CheckDot::InputNormSq);
        }
        reqs.push(CheckDot::BasisPairDot);
        if self.cfg.orthogonality_tol.is_finite() {
            reqs.push(CheckDot::NewBasisNormSq);
            reqs.push(CheckDot::PrevBasisNormSq);
        }
        reqs
    }

    fn consume_check_dots(&mut self, _ctx: &IterCtx, local_n: usize, values: &[(CheckDot, f64)]) {
        // The tagged reduction already attributed these FLOPs in the space's
        // check ledger; mirror them into the legacy-format report.
        self.report.check_flops += 2 * local_n * values.len();
        for (which, v) in values {
            let slot = match which {
                CheckDot::ProductNormSq => &mut self.fused.product_norm_sq,
                CheckDot::InputNormSq => &mut self.fused.input_norm_sq,
                CheckDot::BasisPairDot => &mut self.fused.basis_pair_dot,
                CheckDot::NewBasisNormSq => &mut self.fused.new_basis_norm_sq,
                CheckDot::PrevBasisNormSq => &mut self.fused.prev_basis_norm_sq,
                // This policy never supplies its own pairs.
                CheckDot::PolicyPair(_) => continue,
            };
            *slot = Some(*v);
        }
    }

    /// Finiteness / norm bound on the raw product: for `w = A·v`,
    /// `‖w‖ ≤ factor·‖A‖∞·max(‖v‖, 1)`; a high-exponent-bit flip violates
    /// this by many orders of magnitude.
    fn after_spmv(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        v: &S::Vector,
        w: &S::Vector,
    ) -> Result<PolicyAction> {
        if !self.cfg.local_checks {
            return Ok(PolicyAction::Continue);
        }
        let suspicious = if self.fused.active {
            // Fused path: decide from the scalars that rode the strategy's
            // reduction — zero collectives posted here. (`(w,w)` is a sum of
            // squares, so a global NaN/Inf is the symmetric finiteness test.)
            let wn2 = match self.fused.product_norm_sq.take() {
                Some(wn2) => wn2,
                None => return Ok(PolicyAction::Continue),
            };
            self.report.local_checks_run += 1;
            let mut bad = !wn2.is_finite();
            if !bad && self.norm_a.is_finite() {
                let vn = self
                    .fused
                    .input_norm_sq
                    .take()
                    .map(|v2| v2.max(0.0).sqrt())
                    .unwrap_or(1.0);
                let wn = wn2.max(0.0).sqrt();
                bad = wn > self.cfg.norm_bound_factor * self.norm_a * vn.max(1.0);
            }
            bad
        } else {
            // Direct path (immediate-dot strategies): post the reductions
            // here, charging exactly the ones that run.
            self.report.local_checks_run += 1;
            let n = space.local_len(w);
            self.report.check_flops += 2 * n;
            space.record_check_flops(2 * n);
            let wn = space.norm(w)?;
            let mut bad = space.local_has_non_finite(w) || !wn.is_finite();
            if !bad && self.norm_a.is_finite() {
                // ‖v‖ is only reduced when the norm-bound test can fire.
                // (When any rank holds a non-finite local value the *global*
                // ‖w‖ is non-finite on every rank, so this branch stays
                // rank-symmetric.)
                self.report.check_flops += 2 * n;
                space.record_check_flops(2 * n);
                let vn = space.norm(v)?;
                bad = wn > self.cfg.norm_bound_factor * self.norm_a * vn.max(1.0);
            }
            bad
        };
        if suspicious {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    /// Orthogonality of the newest basis pair (Gram–Schmidt should make
    /// them orthogonal to machine precision).
    fn after_orthogonalization(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        new_v: &S::Vector,
        prev_v: Option<&S::Vector>,
    ) -> Result<PolicyAction> {
        if !self.cfg.local_checks {
            return Ok(PolicyAction::Continue);
        }
        let suspicious = if self.fused.active {
            // Fused path: the pair dot (and scale norms, when the tolerance
            // is finite) rode the strategy's reduction; on pipelined
            // schedules they refer to the pair formed by the previous step.
            let inner = match self.fused.basis_pair_dot.take() {
                Some(d) => d.abs(),
                None => return Ok(PolicyAction::Continue),
            };
            self.report.local_checks_run += 1;
            match (
                self.cfg.orthogonality_tol.is_finite(),
                self.fused.new_basis_norm_sq.take(),
                self.fused.prev_basis_norm_sq.take(),
            ) {
                (true, Some(nn2), Some(pn2)) => {
                    let scale = nn2.max(0.0).sqrt() * pn2.max(0.0).sqrt();
                    !inner.is_finite()
                        || inner > self.cfg.orthogonality_tol * scale.max(f64::MIN_POSITIVE)
                }
                _ => !inner.is_finite(),
            }
        } else {
            let prev = match prev_v {
                Some(p) => p,
                None => return Ok(PolicyAction::Continue),
            };
            self.report.local_checks_run += 1;
            let n = space.local_len(new_v);
            self.report.check_flops += 2 * n;
            space.record_check_flops(2 * n);
            let inner = space.dot(new_v, prev)?.abs();
            // With an infinite tolerance (how presets disable the test for
            // bases that are legitimately non-orthogonal, e.g. the
            // p(1)-pipelined one) only the NaN test below can fire, so skip
            // the two norm reductions — and their cost.
            if self.cfg.orthogonality_tol.is_finite() {
                self.report.check_flops += 4 * n;
                space.record_check_flops(4 * n);
                let scale = space.norm(new_v)? * space.norm(prev)?;
                !inner.is_finite()
                    || inner > self.cfg.orthogonality_tol * scale.max(f64::MIN_POSITIVE)
            } else {
                !inner.is_finite()
            }
        };
        if suspicious {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    /// Periodic residual-consistency check: the recurrence estimate is
    /// compared against the explicitly computed true residual of the trial
    /// solution. Corruption that slipped past the local checks makes the
    /// recurrence lie *low*, so only a large one-sided discrepancy fires.
    fn on_iteration(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        probe: &mut dyn SolutionProbe<S>,
    ) -> Result<PolicyAction> {
        if self.cfg.residual_check_interval == 0
            || ctx.iteration % self.cfg.residual_check_interval != 0
        {
            return Ok(PolicyAction::Continue);
        }
        self.report.residual_checks_run += 1;
        // Cost against the *live* local length: a shrink recovery rebuilds
        // the communicator and changes local vector lengths mid-solve.
        let check_cost = space.flops_per_apply() + 4 * probe.local_len(space);
        self.report.check_flops += check_cost;
        space.record_check_flops(check_cost);
        let true_rr = probe.trial_true_relres(space)?;
        let allowed = ctx.relres * (1.0 + self.cfg.residual_mismatch_tol) + 10.0 * ctx.tol;
        if !true_rr.is_finite() || true_rr > allowed {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    fn overhead(&self) -> PolicyOverhead {
        PolicyOverhead {
            name: "skeptical",
            checks_run: self.report.local_checks_run + self.report.residual_checks_run,
            detections: self.report.detections,
            restarts: self.report.corrective_restarts,
            check_flops: self.report.check_flops,
            persist_bytes: 0,
        }
    }

    fn note_restart(&mut self) {
        self.report.corrective_restarts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::space::SerialSpace;
    use crate::solvers::common::Operator;
    use resilient_linalg::{poisson2d, CsrMatrix};

    type CsrSpace<'a> = SerialSpace<'a, CsrMatrix>;

    fn ctx() -> IterCtx {
        IterCtx {
            iteration: 1,
            cycle_step: 1,
            cycle: 0,
            relres: 1.0,
            tol: 1e-9,
        }
    }

    /// Satellite regression: the direct (unfused) after-SpMV check must
    /// charge exactly the reductions that ran — `2n` when only ‖w‖ is
    /// reduced (no finite ‖A‖ estimate), `4n` when ‖v‖ is reduced too.
    #[test]
    fn after_spmv_charges_exactly_what_ran() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        let v = vec![1.0; n];
        let w = a.apply(&v);
        let mut space = SerialSpace::new(&a);

        // Without a finite operator-norm estimate only ‖w‖ runs.
        let mut p = SkepticalPolicy::new(SkepticalConfig::default());
        assert!(!p.norm_a.is_finite());
        let out = <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_spmv(
            &mut p,
            &mut space,
            &ctx(),
            &v,
            &w,
        )
        .unwrap();
        assert_eq!(out, PolicyAction::Continue);
        assert_eq!(p.report.check_flops, 2 * n);

        // With a finite estimate the bound test reduces ‖v‖ as well.
        let mut p = SkepticalPolicy::new(SkepticalConfig::default());
        p.norm_a = 8.0;
        <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_spmv(
            &mut p,
            &mut space,
            &ctx(),
            &v,
            &w,
        )
        .unwrap();
        assert_eq!(p.report.check_flops, 4 * n);
    }

    /// Satellite regression: the finite-tolerance orthogonality path runs
    /// one dot plus two norms (`6n`); the infinite-tolerance path only the
    /// dot (`2n`).
    #[test]
    fn orthogonality_check_charges_by_tolerance() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        let new_v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let prev_v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut space = SerialSpace::new(&a);

        let mut finite = SkepticalPolicy::new(SkepticalConfig {
            orthogonality_tol: 1e30, // finite but never fires on this pair
            ..SkepticalConfig::default()
        });
        <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_orthogonalization(
            &mut finite,
            &mut space,
            &ctx(),
            &new_v,
            Some(&prev_v),
        )
        .unwrap();
        assert_eq!(finite.report.check_flops, 6 * n);

        let mut infinite = SkepticalPolicy::new(SkepticalConfig {
            orthogonality_tol: f64::INFINITY,
            ..SkepticalConfig::default()
        });
        <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_orthogonalization(
            &mut infinite,
            &mut space,
            &ctx(),
            &new_v,
            Some(&prev_v),
        )
        .unwrap();
        assert_eq!(infinite.report.check_flops, 2 * n);
    }

    /// The fused after-SpMV decision consumes already-global scalars and
    /// detects a norm-bound violation without touching the space.
    #[test]
    fn fused_norm_bound_detects_from_consumed_scalars() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        let v = vec![1.0; n];
        let mut space = SerialSpace::new(&a);
        let mut p = SkepticalPolicy::new(SkepticalConfig::default());
        p.norm_a = 8.0;

        let reqs = <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::check_dots(&mut p, &ctx());
        assert!(reqs.contains(&CheckDot::ProductNormSq));
        assert!(reqs.contains(&CheckDot::InputNormSq));
        // A product norm far beyond factor·‖A‖·max(‖v‖,1) must trip it.
        <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::consume_check_dots(
            &mut p,
            &ctx(),
            n,
            &[
                (CheckDot::ProductNormSq, 1.0e40),
                (CheckDot::InputNormSq, 1.0),
            ],
        );
        let out = <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_spmv(
            &mut p,
            &mut space,
            &ctx(),
            &v,
            &v,
        )
        .unwrap();
        assert_eq!(out, PolicyAction::Detected);
        // The fused pairs' cost was mirrored into the report (2n each).
        assert_eq!(p.report.check_flops, 4 * n);

        // Once consumed, a second hook invocation has nothing to check.
        let out = <SkepticalPolicy as ResiliencePolicy<CsrSpace<'_>>>::after_spmv(
            &mut p,
            &mut space,
            &ctx(),
            &v,
            &v,
        )
        .unwrap();
        assert_eq!(out, PolicyAction::Continue);
    }

    /// `fuse_checks: false` keeps the policy on the direct path even when a
    /// fusing strategy negotiates (the comparison-experiment escape hatch).
    #[test]
    fn unfused_config_declines_negotiation() {
        let mut p = SkepticalPolicy::new(SkepticalConfig {
            fuse_checks: false,
            ..SkepticalConfig::default()
        });
        let reqs = <SkepticalPolicy as ResiliencePolicy<
            SerialSpace<'_, resilient_linalg::CsrMatrix>,
        >>::check_dots(&mut p, &ctx());
        assert!(reqs.is_empty());
        assert!(!p.fused.active);
    }
}
