//! Offline vendored mini property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace's
//! `tests/properties.rs` files use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range/tuple/collection/sample strategies,
//! `any::<T>()`, and the `prop_assert*` macros. Unlike the real proptest
//! there is **no shrinking**: a failing case panics immediately and prints
//! the case number and the generated inputs are reproducible from the fixed
//! per-case seed.

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating random values.

    /// The RNG all strategies draw from (deterministic per test case).
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }

    use rand::Rng as _;

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields clones of one value (`Just` in proptest).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng as _;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let m: f64 = rng.gen_range(-1.0..1.0);
            let e: i32 = rng.gen_range(-300..300);
            m * 10f64.powi(e)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies: `prop::collection::vec`.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng as _;

    /// Size specifications accepted by [`vec`]: `a..b`, `a..=b`, or `n`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod num {
    //! Numeric strategies: `prop::num::f64::NORMAL` etc.

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::{Strategy, TestRng};
        use rand::{Rng as _, RngCore as _};

        /// Strategy yielding normal (finite, non-zero, non-subnormal) `f64`s
        /// of either sign across the full exponent range.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct Normal;

        /// Normal `f64` values: both signs, full exponent range.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn sample_value(&self, rng: &mut TestRng) -> f64 {
                let sign = (rng.next_u64() & 1) << 63;
                // Biased exponent in [1, 2046]: excludes zero/subnormal (0)
                // and inf/NaN (2047).
                let exponent = rng.gen_range(1u64..=2046) << 52;
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                f64::from_bits(sign | exponent | mantissa)
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies: `prop::sample::select`.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod test_runner {
    //! Test-runner configuration and per-case RNG derivation.

    use crate::strategy::TestRng;
    use rand::SeedableRng as _;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Derive the deterministic RNG for one test case. Mixing in the test
    /// name keeps sibling properties' streams decorrelated.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5eed))
    }
}

/// Everything a property test needs, glob-imported.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module hierarchy from the real proptest prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Assert a condition inside a property; failure panics with case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` deterministic
/// random cases.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng =
                    $crate::test_runner::case_rng(stringify!($name), case);
                $crate::proptest!(@bind proptest_case_rng, $($params)*);
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    // Parameter munching: `name in strategy` separated by commas, with or
    // without a trailing comma.
    (@bind $rng:ident,) => {};
    (@bind $rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Entry: no config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10, b in any::<bool>()) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(b || !b);
        }

        /// Vec strategies honor the size range, including degenerate `n..=n`.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..100, 3..7), w in prop::collection::vec(0.0f64..1.0, 4..=4)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        /// NORMAL yields finite, non-zero, normal floats.
        #[test]
        fn normal_floats_are_normal(v in prop::num::f64::NORMAL) {
            prop_assert!(v.is_finite());
            prop_assert!(v.is_normal());
            prop_assert_ne!(v, 0.0);
        }

        /// Select only ever yields listed options, and tuples compose.
        #[test]
        fn select_and_tuples(
            pick in prop::sample::select(vec![2u32, 4, 8]),
            pair in (0usize..3, -1.0f64..1.0)
        ) {
            prop_assert!([2u32, 4, 8].contains(&pick));
            prop_assert!(pair.0 < 3);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy as _;
        let s = 0.0f64..1.0;
        let mut r1 = crate::test_runner::case_rng("t", 3);
        let mut r2 = crate::test_runner::case_rng("t", 3);
        assert_eq!(s.sample_value(&mut r1), s.sample_value(&mut r2));
        let mut r3 = crate::test_runner::case_rng("t", 4);
        assert_ne!(s.sample_value(&mut r1), s.sample_value(&mut r3));
    }
}
