//! Fault-injecting operator wrappers: the "unreliable machine" the skeptical
//! algorithms are tested against.

use std::cell::RefCell;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilient_faults::bitflip::flip_bit_f64;

use crate::solvers::common::Operator;

/// Where, within the output vector of one operator application, a fault
/// strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTarget {
    /// A specific element index.
    Element(usize),
    /// A uniformly random element.
    RandomElement,
}

/// A plan for injecting a single bit flip into one operator application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionPlan {
    /// Which application (0-based count of `apply` calls) to corrupt.
    pub at_application: usize,
    /// Which element of the output to corrupt.
    pub target: FaultTarget,
    /// Which bit to flip; `None` = uniformly random bit.
    pub bit: Option<u32>,
}

/// Record of an injection that actually happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionDone {
    /// Application index at which the flip occurred.
    pub application: usize,
    /// Element that was corrupted.
    pub element: usize,
    /// Bit that was flipped.
    pub bit: u32,
    /// Value before the flip.
    pub old_value: f64,
    /// Value after the flip.
    pub new_value: f64,
}

struct FaultyState {
    applications: usize,
    plan: Option<InjectionPlan>,
    done: Option<InjectionDone>,
    rng: ChaCha8Rng,
}

/// Wraps an operator and injects (at most) one bit flip into the output of a
/// chosen application — the single-event-upset model used by the E1
/// experiment and by the literature the paper cites (Elliott/Hoemmen's
/// bit-flip-resilient GMRES).
pub struct FaultyOperator<'a, O: Operator + ?Sized> {
    inner: &'a O,
    state: RefCell<FaultyState>,
}

impl<'a, O: Operator + ?Sized> FaultyOperator<'a, O> {
    /// Wrap `inner`, injecting according to `plan` (or never, if `None`).
    pub fn new(inner: &'a O, plan: Option<InjectionPlan>, seed: u64) -> Self {
        Self {
            inner,
            state: RefCell::new(FaultyState {
                applications: 0,
                plan,
                done: None,
                rng: ChaCha8Rng::seed_from_u64(seed),
            }),
        }
    }

    /// The injection that occurred, if any.
    pub fn injection(&self) -> Option<InjectionDone> {
        self.state.borrow().done
    }

    /// Number of operator applications so far.
    pub fn applications(&self) -> usize {
        self.state.borrow().applications
    }
}

impl<'a, O: Operator + ?Sized> Operator for FaultyOperator<'a, O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply(x);
        let mut st = self.state.borrow_mut();
        let app = st.applications;
        st.applications += 1;
        if st.done.is_none() {
            if let Some(plan) = st.plan {
                if plan.at_application == app && !y.is_empty() {
                    let element = match plan.target {
                        FaultTarget::Element(i) => i.min(y.len() - 1),
                        FaultTarget::RandomElement => st.rng.gen_range(0..y.len()),
                    };
                    let bit = plan.bit.unwrap_or_else(|| st.rng.gen_range(0..64));
                    let old_value = y[element];
                    let new_value = flip_bit_f64(old_value, bit);
                    y[element] = new_value;
                    st.done = Some(InjectionDone {
                        application: app,
                        element,
                        bit,
                        old_value,
                        new_value,
                    });
                }
            }
        }
        y
    }

    fn flops_per_apply(&self) -> usize {
        self.inner.flops_per_apply()
    }

    fn norm_estimate(&self) -> f64 {
        self.inner.norm_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson1d;

    #[test]
    fn no_plan_is_transparent() {
        let a = poisson1d(6);
        let f = FaultyOperator::new(&a, None, 1);
        let x = vec![1.0; 6];
        assert_eq!(f.apply(&x), a.spmv(&x));
        assert_eq!(f.injection(), None);
        assert_eq!(f.applications(), 1);
        assert_eq!(f.dim(), 6);
        assert_eq!(Operator::flops_per_apply(&f), a.spmv_flops());
    }

    #[test]
    fn injects_exactly_once_at_planned_application() {
        let a = poisson1d(8);
        let plan = InjectionPlan {
            at_application: 2,
            target: FaultTarget::Element(3),
            bit: Some(52),
        };
        let f = FaultyOperator::new(&a, Some(plan), 7);
        let x = vec![1.0; 8];
        let clean = a.spmv(&x);
        assert_eq!(f.apply(&x), clean, "application 0 is clean");
        assert_eq!(f.apply(&x), clean, "application 1 is clean");
        let corrupted = f.apply(&x);
        assert_ne!(
            corrupted[3].to_bits(),
            clean[3].to_bits(),
            "application 2 is corrupted"
        );
        let done = f.injection().expect("injection recorded");
        assert_eq!(done.application, 2);
        assert_eq!(done.element, 3);
        assert_eq!(done.bit, 52);
        assert_eq!(done.old_value, clean[3]);
        // Subsequent applications are clean again (single-event upset).
        assert_eq!(f.apply(&x), clean);
        assert_eq!(f.applications(), 4);
    }

    #[test]
    fn random_target_stays_in_bounds() {
        let a = poisson1d(5);
        let plan = InjectionPlan {
            at_application: 0,
            target: FaultTarget::RandomElement,
            bit: None,
        };
        let f = FaultyOperator::new(&a, Some(plan), 99);
        let _ = f.apply(&[1.0; 5]);
        let done = f.injection().unwrap();
        assert!(done.element < 5);
        assert!(done.bit < 64);
    }

    #[test]
    fn element_target_is_clamped() {
        let a = poisson1d(4);
        let plan = InjectionPlan {
            at_application: 0,
            target: FaultTarget::Element(100),
            bit: Some(1),
        };
        let f = FaultyOperator::new(&a, Some(plan), 1);
        let _ = f.apply(&[1.0; 4]);
        assert_eq!(f.injection().unwrap().element, 3);
    }
}
