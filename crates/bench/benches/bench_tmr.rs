//! E7 bench: raw cost of TMR-protected SpMV vs a single application.

use criterion::{criterion_group, criterion_main, Criterion};
use resilience::srp::{tmr_apply, UnreliableOperator};
use resilient_faults::tmr::TmrStats;
use resilient_linalg::poisson2d;
use std::time::Duration;

fn bench_tmr(c: &mut Criterion) {
    let a = poisson2d(24, 24);
    let x = vec![1.0; a.nrows()];
    let mut group = c.benchmark_group("tmr_spmv");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    group.bench_function("single", |b| b.iter(|| std::hint::black_box(a.spmv(&x))));
    group.bench_function("tmr_vote", |b| {
        let op = UnreliableOperator::new(&a, 1e-4, 9);
        let mut stats = TmrStats::default();
        b.iter(|| std::hint::black_box(tmr_apply(&op, &x, 1e-12, &mut stats)))
    });
    group.finish();
}

criterion_group!(benches, bench_tmr);
criterion_main!(benches);
