//! Backend parity: the real-threads backend and the virtual-time simulator
//! must be two views of the *same* algorithms.
//!
//! Pins for the `CommBackend` boundary under `kernel::space`:
//!
//! 1. **Bit-parity** — failure-free `dist_pcg` and `pipelined_pgmres`
//!    produce bit-identical solutions and identical iteration counts on the
//!    threaded backend and the simulator across 1–8 ranks. Both backends
//!    share the rendezvous engine's ascending-rank reduction fold, so this
//!    holds exactly, not approximately.
//! 2. **Kill-mid-solve** — the LFLR presets survive a *real* rank death on
//!    the threaded backend (a `catch_unwind`-isolated panic injected by
//!    `resilient_faults::ThreadDeathPlan`), converge to the failure-free
//!    tolerance, and resume from a persisted step > 0 — the same recovery
//!    path (`kernel::lflr` + shrink/rendezvous) the simulator exercises,
//!    with zero simulator-specific code in the kernels.

use std::sync::Arc;

use resilience::prelude::*;
use resilient_faults::ThreadDeathPlan;
use resilient_linalg::{poisson2d, CsrMatrix};
use resilient_runtime::{Result, Runtime, RuntimeConfig, ThreadConfig, ThreadRuntime};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let a = poisson2d(16, 16);
    let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
    (a, b)
}

fn opts() -> DistSolveOptions {
    DistSolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(600)
        .with_restart(8)
}

/// Which failure-free preset a parity scenario drives.
#[derive(Clone, Copy, Debug)]
enum Preset {
    DistPcg,
    PipelinedPgmres,
}

/// `(iterations, bitwise solution)` — the full observable outcome of a
/// failure-free distributed solve.
type Observation = (usize, Vec<u64>);

/// One rank's body, generic over the backend: assemble, solve, gather.
fn solve_on<C: resilient_runtime::CommBackend>(
    comm: &mut C,
    preset: Preset,
) -> Result<Observation> {
    let (a, b) = problem();
    let da = DistCsr::from_global(comm, &a)?;
    let bv = DistVector::from_global(comm, &b);
    let mut bj = BlockJacobi::new(&da);
    let out = match preset {
        Preset::DistPcg => dist_pcg(comm, &da, &bv, &mut bj, &opts())?,
        Preset::PipelinedPgmres => pipelined_pgmres(comm, &da, &bv, &mut bj, &opts())?,
    };
    assert!(out.converged, "{preset:?} must converge");
    let bits = out
        .x
        .gather_global(comm)?
        .iter()
        .map(|v| v.to_bits())
        .collect();
    Ok((out.iterations, bits))
}

fn simulator_observations(ranks: usize, preset: Preset) -> Vec<Observation> {
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(7));
    let r = rt.run(ranks, move |comm| solve_on(comm, preset));
    assert!(r.all_ok(), "simulator {preset:?}@{ranks}: {:?}", r.errors);
    r.unwrap_all()
}

fn threaded_observations(ranks: usize, preset: Preset) -> Vec<Observation> {
    let rt = ThreadRuntime::new(ThreadConfig::fast());
    let r = rt.run(ranks, move |comm| solve_on(comm, preset));
    assert!(r.all_ok(), "threads {preset:?}@{ranks}: {:?}", r.errors);
    r.unwrap_all()
}

#[test]
fn failure_free_solves_are_bit_identical_across_backends() {
    for preset in [Preset::DistPcg, Preset::PipelinedPgmres] {
        for ranks in [1usize, 2, 3, 4, 8] {
            let sim = simulator_observations(ranks, preset);
            let thr = threaded_observations(ranks, preset);
            // Every rank of each backend observes the same outcome...
            for obs in sim.iter().chain(&thr) {
                assert_eq!(
                    obs.0, sim[0].0,
                    "{preset:?}@{ranks}: iteration counts must agree on every rank"
                );
            }
            // ...and the two backends' outcomes are bitwise equal.
            assert_eq!(
                sim, thr,
                "{preset:?}@{ranks}: threaded solve must be bit-identical to the simulator"
            );
        }
    }
}

/// Per-rank observation of an LFLR scenario: `(converged, x, report)`.
type LflrResult = (bool, Vec<f64>, KrylovLflrReport);

/// Run a threaded LFLR scenario, optionally killing `kill_rank` at roughly
/// the middle of the clean run's collective stream.
fn run_threaded_lflr(
    ranks: usize,
    pipelined: bool,
    cfg: KrylovLflrConfig,
    kill: Option<(usize, u64)>,
) -> (usize, Vec<LflrResult>, u64) {
    let mut rt = ThreadRuntime::new(ThreadConfig::fast());
    if let Some((rank, at)) = kill {
        let plan = Arc::new(ThreadDeathPlan::new().kill_at_collective(rank, at));
        rt = rt.with_injector(plan as _);
    }
    let r = rt.run(ranks, move |comm| {
        let (a, b) = problem();
        let (out, report) = if pipelined {
            lflr_pipelined_pcg(comm, &a, &b, &opts(), &cfg)?
        } else {
            lflr_dist_pgmres(comm, &a, &b, &opts(), &cfg)?
        };
        let collectives = comm.snapshot_stats().collectives;
        Ok((
            out.converged,
            out.x.gather_global(comm)?,
            report,
            collectives,
        ))
    });
    assert!(r.all_ok(), "threaded lflr@{ranks}: {:?}", r.errors);
    let failures = r.failures.len();
    let mut max_collectives = 0;
    let results = r
        .unwrap_all()
        .into_iter()
        .map(|(converged, x, report, c)| {
            max_collectives = max_collectives.max(c);
            (converged, x, report)
        })
        .collect();
    (failures, results, max_collectives)
}

#[test]
fn threaded_rank_death_is_survived_by_lflr_cg_across_rank_counts() {
    let (a, b) = problem();
    for ranks in [2usize, 4, 8] {
        // Clean run: learn how many collectives a full solve takes, then
        // panic a mid-index rank halfway through that stream.
        let (f0, _, clean_collectives) =
            run_threaded_lflr(ranks, true, KrylovLflrConfig::default(), None);
        assert_eq!(f0, 0);
        let cfg = KrylovLflrConfig::default().with_persist_every(3);
        let (failures, results, _) =
            run_threaded_lflr(ranks, true, cfg, Some((ranks / 2, clean_collectives / 2)));
        assert_eq!(
            failures, 1,
            "{ranks} ranks: exactly one real panic injected"
        );
        let mut max_resumed = 0usize;
        for (converged, x, report) in &results {
            assert!(converged, "{ranks} ranks: solve must survive the panic");
            assert!(
                true_relative_residual(&a, &b, x) < 1e-7,
                "{ranks} ranks: must reach the failure-free tolerance"
            );
            assert!(report.recoveries >= 1, "{ranks} ranks: recovery must run");
            assert_eq!(report.fallback_restores, 0);
            max_resumed = max_resumed.max(report.resumed_from);
        }
        assert!(
            max_resumed > 0,
            "{ranks} ranks: the threaded solve must resume mid-stream"
        );
    }
}

#[test]
fn threaded_rank_death_is_survived_by_lflr_gmres() {
    let (a, b) = problem();
    let ranks = 4;
    let (_, _, clean_collectives) =
        run_threaded_lflr(ranks, false, KrylovLflrConfig::default(), None);
    let cfg = KrylovLflrConfig::default().with_persist_every(3);
    let (failures, results, _) =
        run_threaded_lflr(ranks, false, cfg, Some((1, clean_collectives / 2)));
    assert_eq!(failures, 1);
    let mut max_resumed = 0usize;
    for (converged, x, report) in &results {
        assert!(converged, "GMRES must survive the real panic");
        assert!(true_relative_residual(&a, &b, x) < 1e-7);
        assert!(report.recoveries >= 1);
        max_resumed = max_resumed.max(report.resumed_from);
    }
    assert!(max_resumed > 0, "GMRES must resume mid-stream");
}
