//! Flexible GMRES (FGMRES): the reliable *outer* iteration of the paper's
//! §III-D "reliable outer iterations" pattern.
//!
//! FGMRES allows the preconditioner to change from iteration to iteration —
//! which is exactly what is needed when the "preconditioner" is an entire
//! inner solve executed in unreliable (cheap) mode: whatever the inner solve
//! returns, correct or corrupted, is treated as just another subspace vector
//! by the outer iteration, which is what makes the combination robust.

use crate::kernel::{run_gmres, FlexibleRight, GmresFlavor, MgsOrtho, PolicyStack, SerialSpace};
use resilient_runtime::Result;

use super::common::{Operator, SolveOptions, SolveOutcome};

/// A possibly nonlinear, possibly *unreliable* preconditioner application
/// `z ≈ A⁻¹·v` that may differ on every call. The flexible outer iteration
/// only requires that the returned vector is finite to make progress; even
/// that is checked skeptically by [`fgmres`].
pub trait FlexiblePreconditioner {
    /// Apply the (inner) solver to `v`.
    fn apply(&mut self, v: &[f64]) -> Vec<f64>;
    /// Name for reporting.
    fn name(&self) -> &'static str {
        "flexible-preconditioner"
    }
}

/// The trivial flexible preconditioner: identity (turns FGMRES into GMRES).
pub struct IdentityFlexible;

impl FlexiblePreconditioner for IdentityFlexible {
    fn apply(&mut self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Statistics of one FGMRES run beyond the generic outcome.
#[derive(Debug, Clone, Default)]
pub struct FgmresReport {
    /// Number of inner (preconditioner) applications.
    pub inner_applications: usize,
    /// Number of inner applications whose result was rejected by the outer
    /// skeptical check (non-finite values) and replaced by the unpreconditioned
    /// residual direction.
    pub rejected_inner_results: usize,
}

/// Adapter presenting a [`FlexiblePreconditioner`] to the unified kernel as
/// a flexible right preconditioner over a serial space.
struct FlexAdapter<'m, M: FlexiblePreconditioner + ?Sized>(&'m mut M);

impl<'a, 'm, O, M> FlexibleRight<SerialSpace<'a, O>> for FlexAdapter<'m, M>
where
    O: Operator + ?Sized,
    M: FlexiblePreconditioner + ?Sized,
{
    fn apply(&mut self, _space: &mut SerialSpace<'a, O>, v: &Vec<f64>) -> Result<Vec<f64>> {
        Ok(self.0.apply(v))
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Flexible GMRES with restart, applying `m` as a (possibly varying,
/// possibly unreliable) right preconditioner.
///
/// Preset: unified kernel × [`MgsOrtho`] in flexible mode × empty policy
/// stack over a [`SerialSpace`]. The outer iteration skeptically validates
/// every inner result and falls back to the unpreconditioned direction on
/// garbage, so convergence degrades gracefully instead of being destroyed.
pub fn fgmres<O: Operator + ?Sized, M: FlexiblePreconditioner + ?Sized>(
    a: &O,
    m: &mut M,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> (SolveOutcome, FgmresReport) {
    fgmres_with_policies(a, m, b, x0, opts, &mut PolicyStack::empty()).0
}

/// Flexible GMRES with an explicit resilience-policy stack — the composable
/// form used by `kernel::compose` presets (e.g. FT-GMRES with ABFT-checked
/// outer products). Returns the outcome/report pair plus the number of
/// policy-triggered cycle restarts.
pub fn fgmres_with_policies<'a, O: Operator + ?Sized, M: FlexiblePreconditioner + ?Sized>(
    a: &'a O,
    m: &mut M,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    policies: &mut PolicyStack<'_, SerialSpace<'a, O>>,
) -> ((SolveOutcome, FgmresReport), usize) {
    assert_eq!(b.len(), a.dim(), "rhs dimension mismatch");
    let mut space = SerialSpace::new(a);
    let b = b.to_vec();
    let mut adapter = FlexAdapter(m);
    let (outcome, report) = run_gmres(
        &mut space,
        &b,
        x0.map(|v| v.to_vec()),
        opts,
        &mut MgsOrtho::flexible(),
        policies,
        Some(&mut adapter),
        &GmresFlavor::serial_flexible(),
    )
    .expect("serial spaces are infallible");
    (
        (
            outcome.into_solve_outcome(),
            FgmresReport {
                inner_applications: report.inner_applications,
                rejected_inner_results: report.rejected_inner_results,
            },
        ),
        report.policy_restarts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::cg::cg;
    use crate::solvers::common::true_relative_residual;
    use resilient_linalg::{poisson2d, CsrMatrix};

    #[test]
    fn identity_preconditioner_reduces_to_gmres() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let (out, report) = fgmres(
            &a,
            &mut IdentityFlexible,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-9).with_max_iters(400),
        );
        assert!(out.converged());
        assert!(report.inner_applications >= out.iterations);
        assert_eq!(report.rejected_inner_results, 0);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }

    /// An inner preconditioner that runs a few CG iterations — a realistic
    /// inner-outer configuration.
    struct InnerCg {
        a: CsrMatrix,
        iters: usize,
    }
    impl FlexiblePreconditioner for InnerCg {
        fn apply(&mut self, v: &[f64]) -> Vec<f64> {
            cg(
                &self.a,
                v,
                None,
                &SolveOptions::default()
                    .with_tol(1e-2)
                    .with_max_iters(self.iters),
            )
            .x
        }
    }

    #[test]
    fn inner_solver_accelerates_outer() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(300)
            .with_restart(30);
        let (plain, _) = fgmres(&a, &mut IdentityFlexible, &b, None, &opts);
        let mut inner = InnerCg {
            a: a.clone(),
            iters: 8,
        };
        let (accel, report) = fgmres(&a, &mut inner, &b, None, &opts);
        assert!(plain.converged() && accel.converged());
        assert!(
            accel.iterations < plain.iterations,
            "inner CG must reduce outer iterations: {} vs {}",
            accel.iterations,
            plain.iterations
        );
        assert_eq!(report.rejected_inner_results, 0);
    }

    /// An inner "solver" that sometimes returns garbage (NaNs) — the outer
    /// iteration must survive it.
    struct FlakyInner {
        calls: usize,
    }
    impl FlexiblePreconditioner for FlakyInner {
        fn apply(&mut self, v: &[f64]) -> Vec<f64> {
            self.calls += 1;
            if self.calls % 3 == 0 {
                vec![f64::NAN; v.len()]
            } else {
                v.to_vec()
            }
        }
    }

    #[test]
    fn garbage_inner_results_are_rejected_not_fatal() {
        let a = poisson2d(7, 7);
        let b = vec![1.0; a.nrows()];
        let (out, report) = fgmres(
            &a,
            &mut FlakyInner { calls: 0 },
            &b,
            None,
            &SolveOptions::default().with_tol(1e-8).with_max_iters(400),
        );
        assert!(
            out.converged(),
            "outer iteration must absorb garbage inner results"
        );
        assert!(report.rejected_inner_results > 0);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-7);
    }

    #[test]
    fn exact_guess_short_circuits() {
        let a = poisson2d(5, 5);
        let x_true = vec![1.5; a.nrows()];
        let b = a.spmv(&x_true);
        let (out, _) = fgmres(
            &a,
            &mut IdentityFlexible,
            &b,
            Some(&x_true),
            &SolveOptions::default(),
        );
        assert_eq!(out.iterations, 0);
        assert!(out.converged());
    }
}
