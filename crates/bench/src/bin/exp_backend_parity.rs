//! Experiment B1 — backend parity: does the virtual-time simulator predict
//! what the real-threads backend *measures*?
//!
//! Every headline in this suite so far is a virtual-time number. The
//! `CommBackend` boundary makes the same kernels run on real worker
//! threads with emulated latency (actual sleeps) and real panics for rank
//! death, so the predictions become checkable. Three scenarios, each run
//! on both backends with the same latency/compute/checkpoint cost model:
//!
//! * **latency** (E3 analogue) — blocking vs p(1)-pipelined block-Jacobi
//!   PCG. The simulator predicts the pipelined speedup in virtual seconds;
//!   the threaded backend measures it in wall-clock seconds.
//! * **LFLR** (K1 analogue) — rank death mid-solve, resume-from-snapshot
//!   vs restart-from-zero. On the threaded backend the death is a real
//!   `catch_unwind`-isolated panic injected by `ThreadDeathPlan` and the
//!   re-execution cost is real elapsed time.
//! * **SDC** (C1 analogue) — pipelined skeptical GMRES with one injected
//!   exponent-bit flip. No timing claim: the two backends must agree
//!   *exactly* (same detections, same corrective restarts, same iteration
//!   count) because they share the reduction fold.
//!
//! The headline, asserted in code: each measured threaded speedup is
//! within 2x of its virtual-time prediction, and the SDC outcomes are
//! identical.
//!
//! Pass `--smoke` for a CI-sized run.

use std::sync::Arc;

use resilience::kernel::compose::pipelined_skeptical_gmres;
use resilience::kernel::{lflr_pipelined_pcg, KrylovLflrConfig};
use resilience::prelude::*;
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_faults::ThreadDeathPlan;
use resilient_linalg::poisson2d;
use resilient_runtime::{
    CommBackend, FailureConfig, FailurePolicy, LatencyModel, Result, Runtime, RuntimeConfig,
    ThreadConfig, ThreadRuntime,
};

/// The shared cost model: chosen so emulated latencies are large enough for
/// the threaded backend to sleep honestly (>= 100us) yet the whole
/// experiment stays CI-sized.
fn latency_model() -> LatencyModel {
    LatencyModel {
        alpha: 4.0e-4,
        beta: 1e-9,
        gamma: 1e-9,
    }
}

const SECONDS_PER_FLOP: f64 = 1.0e-9;

fn sim_config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::fast().with_seed(29);
    cfg.latency = latency_model();
    cfg.seconds_per_flop = SECONDS_PER_FLOP;
    cfg
}

fn thread_config() -> ThreadConfig {
    ThreadConfig::default()
        .with_latency(latency_model())
        .with_seconds_per_flop(SECONDS_PER_FLOP)
}

// ---------------------------------------------------------------- latency

/// Per-rank body: time blocking then pipelined block-Jacobi PCG, returning
/// `(t_blocking, t_pipelined)` in the backend's own clock.
fn latency_body<C: CommBackend>(
    comm: &mut C,
    nx: usize,
    opts: DistSolveOptions,
) -> Result<(f64, f64)> {
    let a = poisson2d(nx, nx);
    let n = a.nrows();
    let da = DistCsr::from_global(comm, &a)?;
    let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
    let t0 = comm.now();
    let mut bj = BlockJacobi::new(&da);
    let blocking = dist_pcg(comm, &da, &b, &mut bj, &opts)?;
    let t1 = comm.now();
    let mut bj = BlockJacobi::new(&da);
    let pipelined = pipelined_pcg(comm, &da, &b, &mut bj, &opts)?;
    let t2 = comm.now();
    assert!(blocking.converged && pipelined.converged);
    Ok((t1 - t0, t2 - t1))
}

/// `(blocking, pipelined, speedup)` on one backend.
fn latency_scenario(ranks: usize, nx: usize, threaded: bool) -> (f64, f64, f64) {
    let mut opts = DistSolveOptions::default()
        .with_tol(1e-7)
        .with_max_iters(300)
        .with_restart(30);
    // Overlappable application work each iteration: what the pipelined
    // reduction hides behind.
    opts.extra_work_per_iter = 1.0e-3;
    let times: Vec<(f64, f64)> = if threaded {
        let rt = ThreadRuntime::new(thread_config());
        rt.run(ranks, move |comm| latency_body(comm, nx, opts))
            .unwrap_all()
    } else {
        let rt = Runtime::new(sim_config());
        rt.run(ranks, move |comm| latency_body(comm, nx, opts))
            .unwrap_all()
    };
    let blocking = times.iter().map(|t| t.0).fold(0.0f64, f64::max);
    let pipelined = times.iter().map(|t| t.1).fold(0.0f64, f64::max);
    (blocking, pipelined, blocking / pipelined.max(1e-12))
}

// ------------------------------------------------------------------- lflr

/// One threaded LFLR job. Returns `(makespan, max resumed_from, max
/// per-rank collectives, failures seen)`.
fn lflr_threaded(
    ranks: usize,
    nx: usize,
    lflr: KrylovLflrConfig,
    kill_at: Option<u64>,
) -> (f64, usize, u64, usize) {
    let mut rt = ThreadRuntime::new(thread_config());
    if let Some(at) = kill_at {
        rt = rt
            .with_injector(Arc::new(ThreadDeathPlan::new().kill_at_collective(ranks / 2, at)) as _);
    }
    let r = rt.run(ranks, move |comm| {
        let (out, report) =
            lflr_pipelined_pcg(comm, &poisson2d(nx, nx), &lflr_rhs(nx), &lflr_opts(), &lflr)?;
        assert!(out.converged, "threaded LFLR solve must converge");
        Ok((report.resumed_from, comm.snapshot_stats().collectives))
    });
    assert!(r.all_ok(), "threaded LFLR: {:?}", r.errors);
    let failures = r.failures.len();
    let makespan = r.job.makespan;
    let per_rank = r.unwrap_all();
    let resumed = per_rank.iter().map(|x| x.0).max().unwrap_or(0);
    let collectives = per_rank.iter().map(|x| x.1).max().unwrap_or(0);
    (makespan, resumed, collectives, failures)
}

/// One simulator LFLR job with a scheduled failure. Returns `(makespan,
/// max resumed_from, failures seen)`.
fn lflr_simulated(
    ranks: usize,
    nx: usize,
    lflr: KrylovLflrConfig,
    fail_at: Option<f64>,
) -> (f64, usize, usize) {
    let mut cfg = sim_config();
    cfg.checkpoint_seconds_per_byte = CHECKPOINT_SECONDS_PER_BYTE;
    cfg.replacement_cost = REPLACEMENT_COST;
    if let Some(t) = fail_at {
        cfg = cfg.with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(ranks / 2, t)],
        ));
    }
    let rt = Runtime::new(cfg);
    let r = rt.run(ranks, move |comm| {
        let (out, report) =
            lflr_pipelined_pcg(comm, &poisson2d(nx, nx), &lflr_rhs(nx), &lflr_opts(), &lflr)?;
        assert!(out.converged, "simulated LFLR solve must converge");
        Ok(report.resumed_from)
    });
    assert!(r.all_ok(), "simulated LFLR: {:?}", r.errors);
    let failures = r.failures.len();
    let makespan = r.job.makespan;
    let resumed = r.unwrap_all().into_iter().max().unwrap_or(0);
    (makespan, resumed, failures)
}

const CHECKPOINT_SECONDS_PER_BYTE: f64 = 2.0e-8;
const REPLACEMENT_COST: f64 = 0.05;

fn lflr_rhs(nx: usize) -> Vec<f64> {
    (0..nx * nx).map(|i| 1.0 + (i % 5) as f64).collect()
}

fn lflr_opts() -> DistSolveOptions {
    let mut o = DistSolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(1000)
        .with_restart(10);
    o.extra_work_per_iter = 2.0e-3;
    o
}

// -------------------------------------------------------------------- sdc

/// `(converged, iterations, detections, corrective_restarts)` for the
/// pipelined skeptical GMRES under one injected bit flip.
fn sdc_body<C: CommBackend>(
    comm: &mut C,
    nx: usize,
    opts: DistSolveOptions,
    fault: SpmvFault,
) -> Result<(bool, usize, usize, usize)> {
    let a = poisson2d(nx, nx);
    let n = a.nrows();
    let da = DistCsr::from_global(comm, &a)?;
    let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
    let (out, report) = pipelined_skeptical_gmres(
        comm,
        &da,
        &b,
        &opts,
        &SkepticalConfig::default(),
        Some(fault),
    )?;
    Ok((
        out.converged,
        out.iterations,
        report.skeptical.detections,
        report.skeptical.corrective_restarts,
    ))
}

fn sdc_scenario(ranks: usize, nx: usize, threaded: bool) -> (bool, usize, usize, usize) {
    let opts = DistSolveOptions::default()
        .with_tol(1e-7)
        .with_max_iters(300)
        .with_restart(30);
    let fault = SpmvFault {
        rank: ranks - 1,
        at_application: 5,
        local_element: 2,
        bit: 62,
    };
    let per_rank = if threaded {
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        rt.run(ranks, move |comm| sdc_body(comm, nx, opts, fault))
            .unwrap_all()
    } else {
        let rt = Runtime::new(RuntimeConfig::fast().with_seed(29));
        rt.run(ranks, move |comm| sdc_body(comm, nx, opts, fault))
            .unwrap_all()
    };
    for obs in &per_rank {
        assert_eq!(
            obs, &per_rank[0],
            "every rank must observe the same SDC outcome"
        );
    }
    per_rank[0]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ranks = 4usize;
    let (lat_nx, lflr_nx, sdc_nx) = if smoke { (12, 12, 10) } else { (20, 20, 16) };

    let mut table = Table::new(
        "B1: virtual-time predictions vs wall-clock measurements (threaded backend), 4 ranks",
        &["scenario", "quantity", "simulator", "threads", "thr/sim"],
    );

    // --- latency: pipelined speedup, predicted vs measured. -------------
    let (sim_block, sim_pipe, predicted) = latency_scenario(ranks, lat_nx, false);
    let (thr_block, thr_pipe, measured) = latency_scenario(ranks, lat_nx, true);
    table.row(vec![
        "latency".into(),
        "blocking BJ-PCG (s)".into(),
        fmt_g(sim_block),
        fmt_g(thr_block),
        fmt_ratio(thr_block / sim_block.max(1e-12)),
    ]);
    table.row(vec![
        "latency".into(),
        "pipelined BJ-PCG (s)".into(),
        fmt_g(sim_pipe),
        fmt_g(thr_pipe),
        fmt_ratio(thr_pipe / sim_pipe.max(1e-12)),
    ]);
    table.row(vec![
        "latency".into(),
        "pipelined speedup".into(),
        fmt_ratio(predicted),
        fmt_ratio(measured),
        fmt_ratio(measured / predicted),
    ]);
    assert!(
        predicted > 1.0 && measured > 1.0,
        "latency hiding must pay on both backends (predicted {predicted:.2}, measured {measured:.2})"
    );
    assert!(
        (0.5..=2.0).contains(&(measured / predicted)),
        "measured pipelined speedup ({measured:.2}x) must be within 2x of the virtual-time \
         prediction ({predicted:.2}x)"
    );

    // --- LFLR: resume-vs-restart speedup, predicted vs measured. --------
    let lflr = KrylovLflrConfig::default().with_persist_every(3);
    let (sim_clean, _, f0) = lflr_simulated(ranks, lflr_nx, lflr, None);
    assert_eq!(f0, 0);
    let fail_at = 0.6 * sim_clean;
    let (sim_resume, sim_resumed, f1) = lflr_simulated(ranks, lflr_nx, lflr, Some(fail_at));
    let (sim_restart, _, f2) =
        lflr_simulated(ranks, lflr_nx, lflr.restart_from_zero(), Some(fail_at));
    assert_eq!((f1, f2), (1, 1), "the simulated failure must be injected");
    assert!(
        sim_resumed > 0,
        "the simulated recovery must resume mid-stream"
    );
    let lflr_predicted = sim_restart / sim_resume.max(1e-12);

    let (thr_clean, _, clean_collectives, t0) = lflr_threaded(ranks, lflr_nx, lflr, None);
    assert_eq!(t0, 0);
    let kill_at = (6 * clean_collectives) / 10;
    let (thr_resume, thr_resumed, _, t1) = lflr_threaded(ranks, lflr_nx, lflr, Some(kill_at));
    let (thr_restart, _, _, t2) =
        lflr_threaded(ranks, lflr_nx, lflr.restart_from_zero(), Some(kill_at));
    assert_eq!((t1, t2), (1, 1), "the threaded panic must be injected");
    assert!(
        thr_resumed > 0,
        "the threaded recovery must resume mid-stream"
    );
    let lflr_measured = thr_restart / thr_resume.max(1e-12);

    table.row(vec![
        "lflr".into(),
        "clean solve (s)".into(),
        fmt_g(sim_clean),
        fmt_g(thr_clean),
        fmt_ratio(thr_clean / sim_clean.max(1e-12)),
    ]);
    table.row(vec![
        "lflr".into(),
        "resume after death (s)".into(),
        fmt_g(sim_resume),
        fmt_g(thr_resume),
        fmt_ratio(thr_resume / sim_resume.max(1e-12)),
    ]);
    table.row(vec![
        "lflr".into(),
        "restart-from-zero (s)".into(),
        fmt_g(sim_restart),
        fmt_g(thr_restart),
        fmt_ratio(thr_restart / sim_restart.max(1e-12)),
    ]);
    table.row(vec![
        "lflr".into(),
        "resume speedup".into(),
        fmt_ratio(lflr_predicted),
        fmt_ratio(lflr_measured),
        fmt_ratio(lflr_measured / lflr_predicted),
    ]);
    assert!(
        lflr_predicted > 1.0 && lflr_measured > 1.0,
        "mid-solve resume must beat restart-from-zero on both backends \
         (predicted {lflr_predicted:.2}, measured {lflr_measured:.2})"
    );
    assert!(
        (0.5..=2.0).contains(&(lflr_measured / lflr_predicted)),
        "measured resume speedup ({lflr_measured:.2}x) must be within 2x of the virtual-time \
         prediction ({lflr_predicted:.2}x)"
    );

    // --- SDC: detection outcome must agree exactly. ----------------------
    let sim_sdc = sdc_scenario(ranks, sdc_nx, false);
    let thr_sdc = sdc_scenario(ranks, sdc_nx, true);
    for (label, sim, thr) in [
        ("iterations", sim_sdc.1, thr_sdc.1),
        ("detections", sim_sdc.2, thr_sdc.2),
        ("corrective restarts", sim_sdc.3, thr_sdc.3),
    ] {
        table.row(vec![
            "sdc".into(),
            label.into(),
            sim.to_string(),
            thr.to_string(),
            "=".into(),
        ]);
    }
    assert_eq!(
        sim_sdc, thr_sdc,
        "the two backends share the reduction fold, so the bit-flip detection story must be \
         identical: {sim_sdc:?} vs {thr_sdc:?}"
    );
    assert!(sim_sdc.2 >= 1, "the injected flip must be detected");

    table.emit("b1_backend_parity");
    println!(
        "\nwall-clock measurements on the real-threads backend confirm the virtual-time \
         predictions: pipelined speedup {measured:.2}x (predicted {predicted:.2}x), \
         LFLR resume speedup {lflr_measured:.2}x (predicted {lflr_predicted:.2}x), \
         SDC outcome identical."
    );
}
