//! Experiment E10 — device-op kernel speed: measured wall-clock throughput
//! of the node-local op layer, scalar vs SIMD backend and CSR vs SELL-C-σ
//! SpMV layout, across cache-resident and memory-bound sizes.
//!
//! What the numbers mean (and why they are honest):
//!
//! * In cache (n ≈ 1e3–1e5) the AVX `dot` beats the scalar 4-accumulator
//!   reference by ~1.5× on this class of hardware — that is the headline
//!   this experiment asserts (in full mode, when AVX2 is present).
//! * At n = 1e6 every level-1 op is memory-bandwidth-bound: one f64 FMA
//!   per 16 bytes streamed leaves any instruction-level speedup under
//!   ~1.1×. The experiment records that number rather than hiding it.
//! * The *fused* `dot_pairs` is the legitimate memory-bound win: the
//!   pipelined-CG triple (r·u, w·u, r·r) reads two long vectors once
//!   instead of three times, so it beats three separate dots even at 1M.
//!
//! Output: a table plus one `JSON:` line per measurement (hand-rolled —
//! the workspace carries no JSON dependency) for downstream scraping.
//! Pass `--json` to emit a single machine-readable JSON array instead
//! (the stable bench-trajectory format; speedup assertions still apply),
//! `--smoke` for a CI-sized run (small sizes, no speedup assertions —
//! CI machines have unknown caches and neighbours).

use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_linalg::{auto_ops, poisson2d, scalar_ops, simd_ops, LocalOps, SellMatrix};
use std::time::Instant;

/// Best-of-`reps` average seconds per call of `f` (called `inner` times
/// per sample). Best-of filters scheduler noise without discarding the
/// cost of real cache misses.
fn time_best<F: FnMut()>(reps: usize, inner: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect();
    let y: Vec<f64> = (0..n).map(|i| 0.5 - (i % 13) as f64 * 0.125).collect();
    (x, y)
}

/// One record per measurement; keys are fixed, values numeric. In the
/// default mode each record is printed as a `JSON:` line as it is taken;
/// under `--json` they are collected into one JSON array document.
fn emit_json(
    records: &mut Vec<String>,
    json: bool,
    op: &str,
    n: usize,
    scalar_s: f64,
    simd_s: f64,
) {
    let record = format!(
        "{{\"experiment\":\"kernel_speed\",\"op\":\"{}\",\"n\":{},\"scalar_s\":{:.3e},\"simd_s\":{:.3e},\"speedup\":{:.3}}}",
        op,
        n,
        scalar_s,
        simd_s,
        scalar_s / simd_s
    );
    if !json {
        println!("JSON: {record}");
    }
    records.push(record);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<String> = Vec::new();
    let sizes: &[usize] = if smoke {
        &[1_000, 100_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    let (reps, inner_base) = if smoke {
        (3, 2_000_000)
    } else {
        (7, 20_000_000)
    };
    let backends: [(&str, &'static dyn LocalOps); 2] =
        [("scalar", scalar_ops()), ("simd", simd_ops())];
    let simd_is_real = backends[1].1.name() != backends[0].1.name();
    if !json {
        println!(
            "backends: scalar={}, simd={}, auto selects {}{}",
            backends[0].1.name(),
            backends[1].1.name(),
            auto_ops().name(),
            if simd_is_real {
                ""
            } else {
                " (no AVX2: SIMD backend fell back to scalar)"
            }
        );
    }

    let mut table = Table::new(
        "E10: device-op kernel speed (measured wall clock, best-of-reps)",
        &["op", "n", "scalar s/call", "simd s/call", "speedup"],
    );

    let mut dot_speedup_at_100k = 1.0;
    let mut fused_ratio_largest = 1.0;
    for &n in sizes {
        let inner = (inner_base / n).max(1);
        let (x, y) = vectors(n);

        // dot: the in-cache SIMD headline and the memory-wall record.
        let mut times = [0.0f64; 2];
        for (i, (_, ops)) in backends.iter().enumerate() {
            times[i] = time_best(reps, inner, || {
                std::hint::black_box(ops.dot(&x, &y));
            });
        }
        let speedup = times[0] / times[1];
        if n == 100_000 {
            dot_speedup_at_100k = speedup;
        }
        table.row(vec![
            "dot".into(),
            n.to_string(),
            fmt_g(times[0]),
            fmt_g(times[1]),
            fmt_ratio(speedup),
        ]);
        emit_json(&mut records, json, "dot", n, times[0], times[1]);

        // axpy: streaming write — memory-bound at every large size.
        let mut yb = y.clone();
        for (i, (_, ops)) in backends.iter().enumerate() {
            times[i] = time_best(reps, inner, || {
                ops.axpy(1.0000001, &x, &mut yb);
                std::hint::black_box(yb[n / 2]);
            });
        }
        table.row(vec![
            "axpy".into(),
            n.to_string(),
            fmt_g(times[0]),
            fmt_g(times[1]),
            fmt_ratio(times[0] / times[1]),
        ]);
        emit_json(&mut records, json, "axpy", n, times[0], times[1]);

        // Fused triple-dot vs three separate dots, on the SIMD backend:
        // the pipelined-CG reduction shape. This is a bandwidth win, so it
        // *grows* with n instead of dying at the memory wall.
        let ops = backends[1].1;
        let w = x.clone();
        let pairs: [(&[f64], &[f64]); 3] = [(&x, &y), (&w, &y), (&x, &x)];
        let mut out = [0.0f64; 3];
        let fused = time_best(reps, inner, || {
            ops.dot_pairs(&pairs, &mut out);
            std::hint::black_box(out[2]);
        });
        let separate = time_best(reps, inner, || {
            out[0] = ops.dot(&x, &y);
            out[1] = ops.dot(&w, &y);
            out[2] = ops.dot(&x, &x);
            std::hint::black_box(out[2]);
        });
        fused_ratio_largest = separate / fused;
        table.row(vec![
            "dot_pairs3 (vs 3 dots)".into(),
            n.to_string(),
            fmt_g(separate),
            fmt_g(fused),
            fmt_ratio(separate / fused),
        ]);
        emit_json(&mut records, json, "dot_pairs3", n, separate, fused);
    }

    // SpMV: CSR (sequential by spec) vs SELL-C-σ (gather-vectorisable).
    let spmv_sides: &[usize] = if smoke { &[32, 120] } else { &[32, 180, 512] };
    for &side in spmv_sides {
        let a = poisson2d(side, side);
        let sell = SellMatrix::from_csr(&a, resilient_linalg::SELL_DEFAULT_SIGMA);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut yv = vec![0.0; n];
        let inner = (inner_base / (5 * n)).max(1);
        let csr_scalar = time_best(reps, inner, || {
            scalar_ops().spmv_csr(&a, &x, &mut yv);
            std::hint::black_box(yv[n / 2]);
        });
        let sell_simd = time_best(reps, inner, || {
            simd_ops().spmv_sell(&sell, &x, &mut yv);
            std::hint::black_box(yv[n / 2]);
        });
        table.row(vec![
            "spmv csr(scalar) vs sell(simd)".into(),
            n.to_string(),
            fmt_g(csr_scalar),
            fmt_g(sell_simd),
            fmt_ratio(csr_scalar / sell_simd),
        ]);
        emit_json(
            &mut records,
            json,
            "spmv_csr_vs_sell",
            n,
            csr_scalar,
            sell_simd,
        );
    }

    if json {
        println!("[\n{}\n]", records.join(",\n"));
    } else {
        table.emit("kernel_speed");
    }

    if !smoke && simd_is_real {
        // The honest headline: SIMD pays in cache; the fused reduction
        // pays everywhere. Thresholds leave slack under co-tenancy.
        assert!(
            dot_speedup_at_100k >= 1.25,
            "in-cache SIMD dot speedup regressed: {dot_speedup_at_100k:.2}x < 1.25x"
        );
        assert!(
            fused_ratio_largest >= 1.15,
            "fused dot_pairs lost its bandwidth win: {fused_ratio_largest:.2}x < 1.15x"
        );
        if !json {
            println!(
                "headline: simd dot {:.2}x in cache (n=1e5); fused triple-dot {:.2}x at n=1e6",
                dot_speedup_at_100k, fused_ratio_largest
            );
        }
    }
}
