//! Kernel-level pins for the device-op layer: swapping the node-local
//! compute backend (scalar ↔ SIMD) or the local SpMV layout (CSR ↔
//! SELL-C-σ) must not perturb a single bit of any solver observable.
//!
//! This is the property that makes the op layer safe to deploy: the SIMD
//! backend is pinned to the scalar reference's reassociation spec and the
//! SELL kernel to CSR's per-row accumulation order, so convergence
//! histories, iteration counts and solutions are `to_bits`-identical — the
//! bitwise-reproducibility contract the resilience experiments rely on
//! (rollback snapshots replay to identical states) extends across
//! backends.

use proptest::prelude::*;
use resilience::kernel::FusedCgStep;
use resilience::prelude::*;
use resilient_linalg::{anisotropic2d, poisson2d, scalar_ops, simd_ops, CsrMatrix};
use resilient_runtime::{Comm, Result, Runtime, RuntimeConfig};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let a = poisson2d(12, 12);
    let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
    (a, b)
}

/// `(iterations, residual history bits, solution bits)` — everything a
/// caller can observe from a distributed solve.
type Observation = (usize, Vec<u64>, Vec<u64>);

#[derive(Clone, Copy, Debug, PartialEq)]
enum Preset {
    DistCg,
    DistPcg,
    PipelinedPcg,
    DistPgmres,
    PipelinedPgmres,
}

const PRESETS: [Preset; 5] = [
    Preset::DistCg,
    Preset::DistPcg,
    Preset::PipelinedPcg,
    Preset::DistPgmres,
    Preset::PipelinedPgmres,
];

/// Run one preset on the virtual-time simulator and capture the full
/// observable outcome. `sell_sigma` switches the local SpMV layout;
/// `opts` carries the backend choice.
fn observe(
    ranks: usize,
    preset: Preset,
    opts: DistSolveOptions,
    sell_sigma: Option<usize>,
) -> Vec<Observation> {
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(11));
    let r = rt.run(ranks, move |comm: &mut Comm| -> Result<Observation> {
        let (a, b) = problem();
        let mut da = DistCsr::from_global(comm, &a)?;
        if let Some(sigma) = sell_sigma {
            da = da.with_sell_layout(sigma);
        }
        let bv = DistVector::from_global(comm, &b);
        let out = match preset {
            Preset::DistCg => dist_cg(comm, &da, &bv, &opts)?,
            Preset::DistPcg => {
                let mut bj = BlockJacobi::new(&da);
                dist_pcg(comm, &da, &bv, &mut bj, &opts)?
            }
            Preset::PipelinedPcg => {
                let mut bj = BlockJacobi::new(&da);
                pipelined_pcg(comm, &da, &bv, &mut bj, &opts)?
            }
            Preset::DistPgmres => {
                let mut bj = BlockJacobi::new(&da);
                dist_pgmres(comm, &da, &bv, &mut bj, &opts)?
            }
            Preset::PipelinedPgmres => {
                let mut bj = BlockJacobi::new(&da);
                pipelined_pgmres(comm, &da, &bv, &mut bj, &opts)?
            }
        };
        assert!(out.converged, "{preset:?} must converge");
        let xbits = out
            .x
            .gather_global(comm)?
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let hbits = out.history.iter().map(|v| v.to_bits()).collect();
        Ok((out.iterations, hbits, xbits))
    });
    assert!(r.all_ok(), "{preset:?}@{ranks}: {:?}", r.errors);
    r.unwrap_all()
}

fn opts() -> DistSolveOptions {
    DistSolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(500)
        .with_restart(10)
}

/// Scalar-forced and auto-selected backends produce bit-identical solves
/// for every preset at 1, 2, 3 and 8 ranks. On AVX2 hardware this compares
/// genuinely different machine code paths; elsewhere it pins that the
/// `force_scalar_ops` knob is observation-free.
#[test]
fn backend_choice_is_bitwise_invisible() {
    for ranks in [1usize, 2, 3, 8] {
        for preset in PRESETS {
            let auto = observe(ranks, preset, opts(), None);
            let scalar = observe(ranks, preset, opts().with_scalar_ops(), None);
            assert_eq!(auto, scalar, "{preset:?} at {ranks} ranks");
        }
    }
}

/// Switching the local SpMV to the SELL-C-σ layout is bitwise invisible to
/// every preset (the SELL kernel reproduces CSR's per-row accumulation).
#[test]
fn sell_layout_is_bitwise_invisible() {
    for ranks in [1usize, 2, 3, 8] {
        for preset in PRESETS {
            let csr = observe(ranks, preset, opts(), None);
            let sell = observe(ranks, preset, opts(), Some(64));
            assert_eq!(csr, sell, "{preset:?} at {ranks} ranks");
        }
    }
}

/// The serial kernels, driven explicitly with each backend through
/// `SerialSpace::with_ops`, agree bitwise on iterations, history and
/// solution — PCG (BlockJacobi-free serial path uses the dense LU via the
/// dist presets above, so serial uses the fused and pipelined CG steps).
#[test]
fn serial_kernel_backends_agree_bitwise() {
    let (a, b) = problem();
    let solve_opts = SolveOptions::default().with_tol(1e-8).with_max_iters(500);
    let run = |ops: &'static dyn resilient_linalg::LocalOps| {
        let mut space = SerialSpace::new(&a).with_ops(ops);
        let mut strategy = FusedCgStep::new();
        let mut policies = PolicyStack::new(vec![]);
        let (out, _report) = resilience::kernel::run_cg(
            &mut space,
            &b,
            None,
            &solve_opts,
            &mut strategy,
            &mut policies,
        )
        .unwrap();
        assert_eq!(out.reason, StopReason::Converged);
        let xbits: Vec<u64> = out.x.iter().map(|v| v.to_bits()).collect();
        let hbits: Vec<u64> = out.history.iter().map(|v| v.to_bits()).collect();
        (out.iterations, hbits, xbits)
    };
    assert_eq!(run(scalar_ops()), run(simd_ops()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form on anisotropic problems: random shape, anisotropy and
    /// σ; backend and layout both bitwise invisible for preconditioned CG.
    #[test]
    fn random_problems_are_backend_and_layout_invariant(
        nx in 4usize..9,
        ny in 4usize..9,
        ranks in 1usize..5,
        sigma in prop::sample::select(vec![1usize, 4, 32, 256]),
        eps_exp in -2i32..2,
    ) {
        let eps = 10f64.powi(eps_exp);
        let run = |o: DistSolveOptions, sell: Option<usize>| {
            let rt = Runtime::new(RuntimeConfig::fast().with_seed(5));
            let r = rt.run(ranks, move |comm: &mut Comm| -> Result<Observation> {
                let a = anisotropic2d(nx, ny, eps, 1.0, 3);
                let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
                let mut da = DistCsr::from_global(comm, &a)?;
                if let Some(s) = sell {
                    da = da.with_sell_layout(s);
                }
                let bv = DistVector::from_global(comm, &b);
                let mut bj = BlockJacobi::new(&da);
                let out = dist_pcg(comm, &da, &bv, &mut bj, &o)?;
                let xbits = out
                    .x
                    .gather_global(comm)?
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let hbits = out.history.iter().map(|v| v.to_bits()).collect();
                Ok((out.iterations, hbits, xbits))
            });
            assert!(r.all_ok(), "{:?}", r.errors);
            r.unwrap_all()
        };
        let base = run(opts(), None);
        prop_assert_eq!(&base, &run(opts().with_scalar_ops(), None));
        prop_assert_eq!(&base, &run(opts(), Some(sigma)));
    }
}
