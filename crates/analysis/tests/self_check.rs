//! Self-tests for the analyzer: every fixture fires exactly its rule, the
//! waiver machinery behaves, the compiled binary's exit codes match the CI
//! contract, and — the point of the whole crate — the live tree is clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use resilient_analysis::{analyze_files, analyze_source, analyze_tree};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// The analyzer's reason to exist: the repository's own source obeys every
/// contract (modulo the documented, per-site-waived exceptions).
#[test]
fn live_tree_is_clean() {
    let analysis = analyze_tree(&repo_root());
    assert!(analysis.files > 50, "walked only {} files", analysis.files);
    assert!(
        analysis.findings.is_empty(),
        "live tree has findings:\n{}",
        analysis.report()
    );
}

#[test]
fn every_fixture_fires_exactly_its_rule() {
    let cases = [
        ("bad_collective_symmetry.rs", "collective-symmetry", 4),
        ("bad_safety_contract.rs", "safety-contract", 3),
        ("bad_virtual_time.rs", "virtual-time", 4),
        ("bad_charged_arithmetic.rs", "charged-arithmetic", 5),
        ("bad_hot_loop_alloc.rs", "hot-loop-alloc", 4),
    ];
    for (file, rule, expected) in cases {
        let analysis = analyze_files(&[fixture(file)]).expect("fixture readable");
        assert!(
            !analysis.findings.is_empty(),
            "{file}: fixture did not fire"
        );
        for d in &analysis.findings {
            assert_eq!(d.rule, rule, "{file}: unexpected cross-rule finding {d}");
        }
        assert_eq!(
            analysis.findings.len(),
            expected,
            "{file}: expected {expected} findings, got:\n{}",
            analysis.report()
        );
    }
}

#[test]
fn waiver_on_preceding_line_is_honored() {
    let src = "fn f() -> u128 {\n    \
               // lint:allow(virtual-time): test snippet exercising the waiver path\n    \
               Instant::now().elapsed().as_nanos()\n}\n";
    let (findings, waived) = analyze_source("crates/core/src/x.rs", src);
    assert!(findings.is_empty(), "waiver ignored: {findings:?}");
    assert_eq!(waived, 1);
}

#[test]
fn waiver_without_reason_does_not_silence() {
    let src = "fn f() -> u128 {\n    \
               // lint:allow(virtual-time)\n    \
               Instant::now().elapsed().as_nanos()\n}\n";
    let (findings, _) = analyze_source("crates/core/src/x.rs", src);
    let rules: Vec<&str> = findings.iter().map(|d| d.rule).collect();
    assert!(
        rules.contains(&"waiver-syntax") && rules.contains(&"virtual-time"),
        "expected both the malformed-waiver diagnostic and the original \
         finding, got {rules:?}"
    );
}

#[test]
fn waiver_for_a_different_rule_does_not_silence() {
    let src = "fn f() -> u128 {\n    \
               // lint:allow(hot-loop-alloc): wrong rule on purpose\n    \
               Instant::now().elapsed().as_nanos()\n}\n";
    let (findings, waived) = analyze_source("crates/core/src/x.rs", src);
    assert_eq!(waived, 0);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "virtual-time");
}

#[test]
fn binary_exit_codes_match_the_ci_contract() {
    let bin = env!("CARGO_BIN_EXE_resilient-analysis");

    let list = Command::new(bin).arg("--list-rules").output().expect("run");
    assert!(list.status.success());
    let stdout = String::from_utf8_lossy(&list.stdout);
    for rule in [
        "collective-symmetry",
        "safety-contract",
        "virtual-time",
        "charged-arithmetic",
        "hot-loop-alloc",
    ] {
        assert!(stdout.contains(rule), "--list-rules missing {rule}");
    }

    for file in [
        "bad_collective_symmetry.rs",
        "bad_safety_contract.rs",
        "bad_virtual_time.rs",
        "bad_charged_arithmetic.rs",
        "bad_hot_loop_alloc.rs",
    ] {
        let out = Command::new(bin).arg(fixture(file)).output().expect("run");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{file}: expected exit 1, stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    let clean = Command::new(bin)
        .arg("--root")
        .arg(repo_root())
        .output()
        .expect("run");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean-tree run failed, stdout:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
}
