//! Composable resilience policies.
//!
//! A [`ResiliencePolicy`] observes a Krylov solve through a fixed set of
//! hooks — [`before_spmv`](ResiliencePolicy::before_spmv),
//! [`after_spmv`](ResiliencePolicy::after_spmv),
//! [`after_orthogonalization`](ResiliencePolicy::after_orthogonalization),
//! [`on_iteration`](ResiliencePolicy::on_iteration) and
//! [`on_failure`](ResiliencePolicy::on_failure) — and reports detections.
//! Policies are stacked in a [`PolicyStack`]; the kernel consults the stack
//! at each hook point and reacts to the *first* detection according to the
//! detecting policy's [`DetectionResponse`]. Because every policy sees the
//! same hooks regardless of which iteration engine (CG or GMRES, blocking or
//! pipelined dots, serial or distributed) is running, resilience strategies
//! that used to live in separate solver silos now compose freely: a
//! pipelined GMRES can run skeptical SDC checks, an FT-GMRES outer iteration
//! can verify its SpMVs with ABFT checksums, and each policy's overhead is
//! accounted individually.
//!
//! # Example
//!
//! A policy is one `impl` with only the hooks it cares about — here a
//! minimal product-norm monitor stacked onto a serial GMRES solve:
//!
//! ```
//! use resilience::kernel::{
//!     run_gmres, GmresFlavor, IterCtx, KrylovSpace, MgsOrtho, PolicyAction, PolicyOverhead,
//!     PolicyStack, ResiliencePolicy, SerialSpace,
//! };
//! use resilience::solvers::SolveOptions;
//! use resilient_linalg::poisson2d;
//! use resilient_runtime::Result;
//!
//! #[derive(Default)]
//! struct NormMonitor {
//!     overhead: PolicyOverhead,
//! }
//!
//! impl<S: KrylovSpace> ResiliencePolicy<S> for NormMonitor {
//!     fn name(&self) -> &'static str {
//!         "norm-monitor"
//!     }
//!     fn after_spmv(
//!         &mut self,
//!         space: &mut S,
//!         _ctx: &IterCtx,
//!         _v: &S::Vector,
//!         w: &S::Vector,
//!     ) -> Result<PolicyAction> {
//!         self.overhead.checks_run += 1;
//!         // A real policy would test an invariant of `w` here (through
//!         // *global* quantities, so every rank takes the same branch).
//!         let _ = space.local_len(w);
//!         Ok(PolicyAction::Continue)
//!     }
//!     fn overhead(&self) -> PolicyOverhead {
//!         PolicyOverhead {
//!             name: "norm-monitor",
//!             ..self.overhead.clone()
//!         }
//!     }
//! }
//!
//! let a = poisson2d(6, 6);
//! let b = vec![1.0; a.nrows()];
//! let mut monitor = NormMonitor::default();
//! let mut stack = PolicyStack::new(vec![&mut monitor]);
//! let mut space = SerialSpace::new(&a);
//! let (out, report) = run_gmres(
//!     &mut space,
//!     &b,
//!     None,
//!     &SolveOptions::default().with_tol(1e-9),
//!     &mut MgsOrtho::new(),
//!     &mut stack,
//!     None,
//!     &GmresFlavor::serial(),
//! )
//! .unwrap();
//! assert!(out.relative_residual <= 1e-9);
//! let overhead = &report.policy_overhead[0];
//! assert_eq!(overhead.name, "norm-monitor");
//! assert!(overhead.checks_run > 0, "the hook observed every product");
//! ```
//!
//! The building blocks below ([`NoopPolicy`], [`IterateRollbackPolicy`])
//! follow the same shape; [`IterateRollbackPolicy::with_persistence`]
//! additionally writes its snapshots through the space's persistent store,
//! which is what the process-failure recovery presets in
//! [`kernel::lflr`](crate::kernel::lflr) build on.

use super::space::KrylovSpace;
use resilient_runtime::Result;

/// What a hook observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Nothing suspicious.
    Continue,
    /// The policy detected corruption in the quantity it inspected.
    Detected,
}

/// What the kernel should do when a policy detects corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionResponse {
    /// Record the detection but keep iterating (detection-coverage
    /// measurements).
    RecordOnly,
    /// Discard the current Arnoldi cycle / iteration and restart from the
    /// last consistent iterate (cheap local rollback).
    Restart,
    /// Stop the solve with
    /// [`StopReason::CorruptionDetected`](crate::solvers::StopReason::CorruptionDetected).
    Abort,
}

/// What a policy decided to do about a kernel-level failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Let the kernel terminate as it would have without the policy.
    Accept,
    /// The policy repaired the iterate (e.g. restored a checkpoint into
    /// `x`); the kernel should restart the current cycle from it.
    Restart,
}

/// A kernel-level failure the policy stack is consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// The iteration produced NaN/Inf residuals.
    Divergence,
}

/// Read-only per-iteration context passed to every hook.
#[derive(Debug, Clone, Copy)]
pub struct IterCtx {
    /// Total iterations performed so far (across restarts).
    pub iteration: usize,
    /// Steps completed within the current restart cycle.
    pub cycle_step: usize,
    /// Restart-cycle index.
    pub cycle: usize,
    /// Current relative residual (recurrence estimate).
    pub relres: f64,
    /// Solve tolerance.
    pub tol: f64,
}

/// Kernel state a policy may interrogate on demand (priced work it should
/// not trigger every iteration).
pub trait SolutionProbe<S: KrylovSpace> {
    /// True relative residual ‖b − A·x_trial‖/‖b‖ of the *trial* solution
    /// (current iterate plus the pending cycle correction). Charges one
    /// operator application to the solver.
    fn trial_true_relres(&mut self, space: &mut S) -> Result<f64>;

    /// *Live* local length of the iterate. Policies must cost their checks
    /// against this, not a length captured at solve start: a rank failure
    /// that shrinks and rebuilds the communicator changes local vector
    /// lengths mid-solve.
    fn local_len(&self, space: &S) -> usize;

    /// The current *committed* iterate (GMRES: the cycle-base iterate, which
    /// only changes at cycle boundaries; CG: the per-iteration iterate).
    /// Free to read — this is what persisting policies snapshot on their
    /// cadence.
    fn iterate(&self) -> &S::Vector;

    /// The kernel iteration [`iterate`](SolutionProbe::iterate) actually
    /// corresponds to: the current iteration for CG, the cycle-base
    /// iteration for GMRES (whose committed iterate embodies no mid-cycle
    /// progress). Persisting policies must label snapshots with *this* step
    /// — labelling a cycle-base iterate with the current step would make a
    /// resumed solve claim progress it does not hold.
    fn iterate_step(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Wants-dots negotiation
// ---------------------------------------------------------------------------

/// A check inner product a policy asks the dot strategy to fuse into the
/// reduction it already posts, identified by the *role* of its operands
/// rather than by reference. The strategy resolves roles against the
/// vectors it holds at its reduction point (see [`CheckVectors`]); requests
/// it cannot resolve are dropped, and the policy learns what resolved from
/// the `(CheckDot, value)` pairs handed back through
/// [`ResiliencePolicy::consume_check_dots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckDot {
    /// `(v, v)` — squared norm of the SpMV input.
    InputNormSq,
    /// `(w, w)` — squared norm of the SpMV product.
    ProductNormSq,
    /// `(v_new, v_prev)` — inner product of the newest resolved basis pair.
    BasisPairDot,
    /// `(v_new, v_new)` — squared norm of the newer basis-pair vector.
    NewBasisNormSq,
    /// `(v_prev, v_prev)` — squared norm of the older basis-pair vector.
    PrevBasisNormSq,
    /// The `k`-th pair the policy supplied through
    /// [`ResiliencePolicy::check_pairs`] this round (a policy-owned left
    /// vector dotted against a strategy operand) — never requested through
    /// [`ResiliencePolicy::check_dots`], only handed back through
    /// [`ResiliencePolicy::consume_check_dots`].
    PolicyPair(u8),
}

/// The strategy-side operand a policy-supplied check pair
/// ([`ResiliencePolicy::check_pairs`]) is dotted against, resolved from the
/// [`CheckVectors`] the strategy offers at its reduction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOperand {
    /// The input of the most recent resolved SpMV.
    SpmvInput,
    /// The product of the most recent resolved SpMV.
    SpmvProduct,
}

/// The iteration vectors a dot strategy offers for check-dot fusion at its
/// reduction point.
///
/// Pipelined schedules post their reduction *before* the overlapped
/// operator application, so the roles they can offer refer to the most
/// recent **completed** SpMV and basis extension — one step behind the
/// detection hooks. Decisions made from fused scalars therefore lag one
/// iteration on pipelined strategies, which a corrective cycle restart
/// still recovers (the iterate only changes at cycle boundaries in GMRES,
/// and CG restarts rebuild the recurrence from the current iterate).
pub struct CheckVectors<'v, V> {
    /// Input of the most recent resolved SpMV.
    pub spmv_input: Option<&'v V>,
    /// Product of the most recent resolved SpMV.
    pub spmv_product: Option<&'v V>,
    /// Newest resolved basis pair, `(newer, older)`.
    pub basis_pair: Option<(&'v V, &'v V)>,
}

fn resolve_check_dot<'v, V>(req: CheckDot, avail: &CheckVectors<'v, V>) -> Option<(&'v V, &'v V)> {
    match req {
        CheckDot::InputNormSq => avail.spmv_input.map(|v| (v, v)),
        CheckDot::ProductNormSq => avail.spmv_product.map(|w| (w, w)),
        CheckDot::BasisPairDot => avail.basis_pair,
        CheckDot::NewBasisNormSq => avail.basis_pair.map(|(a, _)| (a, a)),
        CheckDot::PrevBasisNormSq => avail.basis_pair.map(|(_, b)| (b, b)),
        // Policy-supplied pairs carry their own left vector; they are
        // resolved in `collect_check_dots`, never through a role request.
        CheckDot::PolicyPair(_) => None,
    }
}

/// Bookkeeping for one negotiation round: which policy asked for which
/// resolved pair, in the order the pairs were appended to the reduction.
#[derive(Debug, Default)]
pub struct CheckDotBatch {
    /// `(policy index, request)` per appended pair.
    entries: Vec<(usize, CheckDot)>,
    /// Local vector length at the reduction point (live, for check costing).
    local_n: usize,
}

impl CheckDotBatch {
    /// Number of check pairs appended to the reduction.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Did no policy request a resolvable pair?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-policy overhead and detection accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyOverhead {
    /// Policy name.
    pub name: &'static str,
    /// Hook invocations that performed a check.
    pub checks_run: usize,
    /// Detections reported.
    pub detections: usize,
    /// Corrective cycle restarts this policy triggered.
    pub restarts: usize,
    /// FLOPs spent on this policy's checks.
    pub check_flops: usize,
    /// Bytes this policy wrote to the persistent store (LFLR snapshots);
    /// the writes' virtual time is charged at the runtime's checkpoint
    /// bandwidth by the store itself.
    pub persist_bytes: usize,
}

/// One composable resilience building block.
///
/// All hooks default to no-ops so a policy only implements the stages it
/// cares about. Detection hooks return [`PolicyAction`]; the kernel pairs a
/// `Detected` with the policy's [`response`](ResiliencePolicy::response).
///
/// Policies running over distributed spaces must derive their decisions from
/// *global* quantities (`space.dot` / `space.norm`) so that every rank takes
/// the same branch.
#[allow(unused_variables)]
pub trait ResiliencePolicy<S: KrylovSpace> {
    /// Short identifier used in overhead reports.
    fn name(&self) -> &'static str;

    /// How the kernel should react when *this* policy detects.
    fn response(&self) -> DetectionResponse {
        DetectionResponse::Restart
    }

    /// Called once, before the first residual computation.
    fn on_solve_start(&mut self, space: &mut S, b: &S::Vector) -> Result<()> {
        Ok(())
    }

    /// Called at the start of every restart cycle with the current
    /// (consistent) iterate — the natural persistence point for
    /// rollback-style policies.
    fn on_cycle_start(&mut self, space: &mut S, ctx: &IterCtx, x: &S::Vector) -> Result<()> {
        Ok(())
    }

    /// Wants-dots negotiation: the check pairs this policy would like
    /// reduced together with the strategy's next fused reduction. Called by
    /// fusing dot strategies once per step, right before they post their
    /// reduction; the reduced scalars for every request the strategy could
    /// resolve arrive through
    /// [`consume_check_dots`](ResiliencePolicy::consume_check_dots) *before*
    /// the detection hooks run, so the hooks can decide from already-global
    /// quantities instead of posting their own collectives.
    ///
    /// Immediate-dot strategies (`MgsOrtho`, `PcgStep`) have no fused
    /// reduction and never call this; policies must keep a direct
    /// (self-reducing) fallback path in their hooks for those schedules.
    fn check_dots(&mut self, ctx: &IterCtx) -> Vec<CheckDot> {
        Vec::new()
    }

    /// Wants-dots negotiation, policy-vector form: check pairs whose *left*
    /// vector the policy owns (an ABFT checksum vector, an all-ones vector)
    /// and whose right operand is resolved from the strategy's
    /// [`CheckVectors`]. Resolved pairs ride the strategy's reduction like
    /// role-based requests; the reduced scalars come back through
    /// [`consume_check_dots`](ResiliencePolicy::consume_check_dots) tagged
    /// [`CheckDot::PolicyPair`] with the index into the returned list.
    /// Called in the same round as
    /// [`check_dots`](ResiliencePolicy::check_dots), with the same
    /// immediate-dot caveat: strategies without a fused reduction never
    /// negotiate, so a direct fallback path must remain.
    fn check_pairs<'v>(&'v mut self, ctx: &IterCtx) -> Vec<(&'v S::Vector, CheckOperand)> {
        Vec::new()
    }

    /// Receive the globally reduced scalars for the resolved requests of the
    /// matching [`check_dots`](ResiliencePolicy::check_dots) call, in request
    /// order. `local_n` is the live local vector length at the reduction
    /// point (each fused pair cost `2·local_n` FLOPs, already attributed to
    /// the space's check ledger by the tagged reduction).
    fn consume_check_dots(&mut self, ctx: &IterCtx, local_n: usize, values: &[(CheckDot, f64)]) {}

    /// Called with the operator input right before each SpMV.
    fn before_spmv(&mut self, space: &mut S, ctx: &IterCtx, v: &S::Vector) -> Result<PolicyAction> {
        Ok(PolicyAction::Continue)
    }

    /// Called with the raw operator output `w = A·v` right after each SpMV
    /// (norm-bound, finiteness and checksum tests live here).
    fn after_spmv(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        v: &S::Vector,
        w: &S::Vector,
    ) -> Result<PolicyAction> {
        Ok(PolicyAction::Continue)
    }

    /// Called with the preconditioner input `r` and its freshly computed
    /// output `z = M⁻¹·r` after each in-iteration preconditioner apply
    /// (finiteness/consistency guards over the historically unguarded
    /// block-Jacobi path live here). Strategies call it at a point where
    /// **no** fused reduction is in flight, so a policy may post its own
    /// blocking collective; on pipelined schedules that point is after the
    /// overlapped reduction completes, before the preconditioned vector is
    /// consumed by the recurrence. Setup-phase applies (CG init, GMRES
    /// cycle start) are not hooked — corruption there lands in the first
    /// iteration's guarded quantities.
    fn after_precond(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        r: &S::Vector,
        z: &S::Vector,
    ) -> Result<PolicyAction> {
        Ok(PolicyAction::Continue)
    }

    /// Called after Gram–Schmidt with the newest basis vector and its
    /// predecessor (orthogonality tests live here). CG-style iterations
    /// without a stored basis never call it.
    fn after_orthogonalization(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        new_v: &S::Vector,
        prev_v: Option<&S::Vector>,
    ) -> Result<PolicyAction> {
        Ok(PolicyAction::Continue)
    }

    /// Called at the end of every completed iteration; `probe` gives priced
    /// access to the trial solution's true residual for consistency checks.
    fn on_iteration(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        probe: &mut dyn SolutionProbe<S>,
    ) -> Result<PolicyAction> {
        Ok(PolicyAction::Continue)
    }

    /// Consulted when the kernel is about to terminate on a failure event.
    /// A policy that can repair `x` (e.g. from a persisted copy) returns
    /// [`RecoveryAction::Restart`] to resume from it instead.
    fn on_failure(
        &mut self,
        ctx: &IterCtx,
        event: FailureEvent,
        x: &mut S::Vector,
    ) -> RecoveryAction {
        RecoveryAction::Accept
    }

    /// This policy's accumulated overhead.
    fn overhead(&self) -> PolicyOverhead;

    /// Internal: bump the restart counter (called by the stack when this
    /// policy's detection triggered a corrective restart).
    fn note_restart(&mut self) {}
}

/// Outcome of running one hook across the whole stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOutcome {
    /// No policy objected.
    Continue,
    /// A record-only policy detected: noted, but the kernel should not
    /// repair anything (though a pre-extension detection still skips the
    /// corrupted product, matching the legacy record-only semantics).
    Recorded,
    /// A policy detected and demands the given response (`Restart` or
    /// `Abort`).
    Act(DetectionResponse),
}

impl StackOutcome {
    fn from_action(action: PolicyAction, response: DetectionResponse) -> Self {
        match (action, response) {
            (PolicyAction::Continue, _) => StackOutcome::Continue,
            (PolicyAction::Detected, DetectionResponse::RecordOnly) => StackOutcome::Recorded,
            (PolicyAction::Detected, r) => StackOutcome::Act(r),
        }
    }
}

/// An ordered stack of resilience policies consulted by the kernel.
///
/// The stack borrows its policies mutably so presets can read their reports
/// (detection counts, overhead) after the solve returns.
pub struct PolicyStack<'p, S: KrylovSpace> {
    policies: Vec<&'p mut dyn ResiliencePolicy<S>>,
}

impl<'p, S: KrylovSpace> Default for PolicyStack<'p, S> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<'p, S: KrylovSpace> PolicyStack<'p, S> {
    /// A stack with no policies (hooks become zero-cost no-ops).
    pub fn empty() -> Self {
        Self {
            policies: Vec::new(),
        }
    }

    /// Build a stack from the given policies (consulted in order).
    pub fn new(policies: Vec<&'p mut dyn ResiliencePolicy<S>>) -> Self {
        Self { policies }
    }

    /// Push another policy onto the stack.
    pub fn push(&mut self, policy: &'p mut dyn ResiliencePolicy<S>) {
        self.policies.push(policy);
    }

    /// Number of stacked policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Is the stack empty?
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Per-policy overhead report, in stack order.
    pub fn overhead_report(&self) -> Vec<PolicyOverhead> {
        self.policies.iter().map(|p| p.overhead()).collect()
    }

    /// Run the solve-start hook on every policy.
    pub fn on_solve_start(&mut self, space: &mut S, b: &S::Vector) -> Result<()> {
        for p in &mut self.policies {
            p.on_solve_start(space, b)?;
        }
        Ok(())
    }

    /// Run the cycle-start hook on every policy.
    pub fn on_cycle_start(&mut self, space: &mut S, ctx: &IterCtx, x: &S::Vector) -> Result<()> {
        for p in &mut self.policies {
            p.on_cycle_start(space, ctx, x)?;
        }
        Ok(())
    }

    /// Wants-dots negotiation, stack side: collect every policy's check-dot
    /// requests (role-based `check_dots` and policy-vector `check_pairs`),
    /// resolve them against the vectors the strategy offers, and append the
    /// resolved pairs to `pairs` (the reduction the strategy is about to
    /// post). The returned batch maps the appended tail back to the
    /// requesting policies for [`PolicyStack::consume_check_dots`].
    ///
    /// The `'v` bound ties the borrow of the stack to the pairs vector:
    /// policy-supplied left vectors are borrowed from the policies
    /// themselves, so the stack stays borrowed until the strategy has
    /// consumed `pairs` (posting its reduction) — which every fusing
    /// strategy does before calling
    /// [`PolicyStack::consume_check_dots`].
    pub fn collect_check_dots<'v>(
        &'v mut self,
        space: &S,
        ctx: &IterCtx,
        avail: &CheckVectors<'v, S::Vector>,
        pairs: &mut Vec<(&'v S::Vector, &'v S::Vector)>,
    ) -> CheckDotBatch {
        let mut entries = Vec::new();
        for (i, p) in self.policies.iter_mut().enumerate() {
            for req in p.check_dots(ctx) {
                if let Some(pair) = resolve_check_dot(req, avail) {
                    pairs.push(pair);
                    entries.push((i, req));
                }
            }
            for (k, (left, operand)) in p.check_pairs(ctx).into_iter().enumerate() {
                let right = match operand {
                    CheckOperand::SpmvInput => avail.spmv_input,
                    CheckOperand::SpmvProduct => avail.spmv_product,
                };
                if let Some(right) = right {
                    pairs.push((left, right));
                    entries.push((i, CheckDot::PolicyPair(k as u8)));
                }
            }
        }
        let local_n = avail
            .spmv_input
            .or(avail.spmv_product)
            .or_else(|| avail.basis_pair.map(|(a, _)| a))
            .map(|v| space.local_len(v))
            .unwrap_or(0);
        CheckDotBatch { entries, local_n }
    }

    /// Hand the reduced scalars of a negotiation round back to the
    /// requesting policies: `values` is the check tail of the strategy's
    /// reduction, in the order [`PolicyStack::collect_check_dots`] appended
    /// the pairs. Must run before the detection hooks of the same step.
    pub fn consume_check_dots(&mut self, ctx: &IterCtx, batch: &CheckDotBatch, values: &[f64]) {
        debug_assert_eq!(batch.entries.len(), values.len());
        let mut start = 0;
        while start < batch.entries.len() {
            let policy = batch.entries[start].0;
            let mut end = start + 1;
            while end < batch.entries.len() && batch.entries[end].0 == policy {
                end += 1;
            }
            let slice: Vec<(CheckDot, f64)> = batch.entries[start..end]
                .iter()
                .zip(&values[start..end])
                .map(|((_, req), v)| (*req, *v))
                .collect();
            self.policies[policy].consume_check_dots(ctx, batch.local_n, &slice);
            start = end;
        }
    }

    /// Shared fold for the four detection hooks: run `hook` on every policy
    /// in stack order, stop at the first actionable detection (noting a
    /// restart on the detecting policy), and keep going past record-only
    /// detections so later policies still observe the quantity.
    fn run_detection_hook(
        &mut self,
        space: &mut S,
        mut hook: impl FnMut(&mut dyn ResiliencePolicy<S>, &mut S) -> Result<PolicyAction>,
    ) -> Result<StackOutcome> {
        let mut recorded = false;
        for p in &mut self.policies {
            let out = StackOutcome::from_action(hook(&mut **p, space)?, p.response());
            match out {
                StackOutcome::Continue => {}
                StackOutcome::Recorded => recorded = true,
                StackOutcome::Act(r) => {
                    if r == DetectionResponse::Restart {
                        p.note_restart();
                    }
                    return Ok(out);
                }
            }
        }
        Ok(if recorded {
            StackOutcome::Recorded
        } else {
            StackOutcome::Continue
        })
    }

    /// Run the before-SpMV hook; stops at the first actionable detection
    /// (record-only detections are noted and the remaining policies still
    /// run).
    pub fn before_spmv(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        v: &S::Vector,
    ) -> Result<StackOutcome> {
        self.run_detection_hook(space, |p, space| p.before_spmv(space, ctx, v))
    }

    /// Run the after-SpMV hook; stops at the first actionable detection.
    pub fn after_spmv(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        v: &S::Vector,
        w: &S::Vector,
    ) -> Result<StackOutcome> {
        self.run_detection_hook(space, |p, space| p.after_spmv(space, ctx, v, w))
    }

    /// Run the after-preconditioner-apply hook; stops at the first
    /// actionable detection.
    pub fn after_precond(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        r: &S::Vector,
        z: &S::Vector,
    ) -> Result<StackOutcome> {
        self.run_detection_hook(space, |p, space| p.after_precond(space, ctx, r, z))
    }

    /// Run the after-orthogonalization hook.
    pub fn after_orthogonalization(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        new_v: &S::Vector,
        prev_v: Option<&S::Vector>,
    ) -> Result<StackOutcome> {
        self.run_detection_hook(space, |p, space| {
            p.after_orthogonalization(space, ctx, new_v, prev_v)
        })
    }

    /// Run the end-of-iteration hook.
    pub fn on_iteration(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        probe: &mut dyn SolutionProbe<S>,
    ) -> Result<StackOutcome> {
        self.run_detection_hook(space, |p, space| p.on_iteration(space, ctx, probe))
    }

    /// Consult the stack about a failure; the first policy that repairs the
    /// iterate wins.
    pub fn on_failure(
        &mut self,
        ctx: &IterCtx,
        event: FailureEvent,
        x: &mut S::Vector,
    ) -> RecoveryAction {
        for p in &mut self.policies {
            if p.on_failure(ctx, event, x) == RecoveryAction::Restart {
                return RecoveryAction::Restart;
            }
        }
        RecoveryAction::Accept
    }
}

// ---------------------------------------------------------------------------
// Building-block policies
// ---------------------------------------------------------------------------

/// A policy that observes every hook but never detects anything. Used by the
/// property tests to prove the hook plumbing is semantically zero-cost: a
/// solve with a [`NoopPolicy`] stack must be bit-identical to one with an
/// empty stack.
#[derive(Debug, Default)]
pub struct NoopPolicy {
    overhead: PolicyOverhead,
}

impl NoopPolicy {
    /// A fresh no-op policy.
    pub fn new() -> Self {
        Self {
            overhead: PolicyOverhead {
                name: "noop",
                ..PolicyOverhead::default()
            },
        }
    }
}

impl<S: KrylovSpace> ResiliencePolicy<S> for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }
    fn after_spmv(
        &mut self,
        _space: &mut S,
        _ctx: &IterCtx,
        _v: &S::Vector,
        _w: &S::Vector,
    ) -> Result<PolicyAction> {
        self.overhead.checks_run += 1;
        Ok(PolicyAction::Continue)
    }
    fn overhead(&self) -> PolicyOverhead {
        self.overhead.clone()
    }
}

/// Key under which a persisting [`IterateRollbackPolicy`] records the step
/// of its newest snapshot (read back by recovery drivers and replacement
/// ranks when agreeing on a resume point).
pub const SNAPSHOT_META_KEY: &str = "klflr/last";

/// Persistent-store key of the iterate snapshot taken at global step `step`.
pub fn snapshot_key(step: usize) -> String {
    format!("klflr/x@{step}")
}

/// Persistence schedule of an [`IterateRollbackPolicy`] that writes its
/// snapshots through the space's persistent store (process-failure
/// recovery) instead of keeping them in rank memory only.
#[derive(Debug, Clone)]
struct PersistSchedule {
    /// Snapshot cadence in kernel iterations.
    every: usize,
    /// Snapshots retained per rank (older ones are pruned with
    /// [`KrylovSpace::unpersist`]); see
    /// [`IterateRollbackPolicy::with_persistence`] for the window bound.
    keep_last: usize,
    /// Global step offset: a resumed solve counts kernel iterations from 0,
    /// but snapshot keys are global so survivors and replacements agree.
    base_step: usize,
    /// Steps currently retained (the prune ring), oldest first.
    persisted: Vec<usize>,
    /// Newest persisted step (spans resumes: seeded with the resume point).
    last_step: Option<usize>,
    /// Total snapshots written by this instance (monotone; the prune ring
    /// above shrinks and cannot count).
    writes: usize,
}

/// An LFLR-flavoured rollback policy: keeps a copy of the iterate from the
/// last cycle boundary and, when the kernel is about to terminate with a
/// divergence, restores it and asks for a restart instead (bounded by
/// `max_restores` so an unrecoverable solve still terminates).
///
/// With [`with_persistence`](IterateRollbackPolicy::with_persistence) the
/// policy additionally writes its snapshots through the space's persistent
/// store ([`KrylovSpace::persist_vector`], backed by `Comm::persist` in
/// distributed spaces) on a configurable iteration cadence — the substrate
/// of mid-solve process-failure recovery: a replacement rank inherits the
/// dead incarnation's partition, proposes the newest step recoverable from
/// it at the recovery rendezvous, and every rank restores the agreed
/// snapshot as the warm start of the resumed solve (see
/// [`kernel::lflr`](crate::kernel::lflr)).
#[derive(Debug)]
pub struct IterateRollbackPolicy<V> {
    saved: Option<V>,
    /// Kernel iteration `saved` corresponds to. The kernel's iteration
    /// counter keeps running across rollbacks, so after a restore the next
    /// cycle start carries an iterate older than `ctx.iteration` claims —
    /// this is the honest label for it.
    saved_step: usize,
    /// Set by a rollback: the next cycle start's iterate is the restored
    /// one, not a freshly committed one.
    rolled_back: bool,
    restores_left: usize,
    overhead: PolicyOverhead,
    persist: Option<PersistSchedule>,
}

impl<V> IterateRollbackPolicy<V> {
    /// Roll back at most `max_restores` times.
    pub fn new(max_restores: usize) -> Self {
        Self {
            saved: None,
            saved_step: 0,
            rolled_back: false,
            restores_left: max_restores,
            overhead: PolicyOverhead {
                name: "iterate-rollback",
                ..PolicyOverhead::default()
            },
            persist: None,
        }
    }

    /// Also persist snapshots through the space's persistent store, at most
    /// every `every` iterations, retaining the newest `keep_last` per rank.
    ///
    /// `keep_last` must cover the worst-case distance between the agreed
    /// rollback step and a survivor's newest snapshot. Persist points are
    /// deterministic in the iteration count, so all ranks write the *same*
    /// step sequence; the collectives every strategy posts each iteration
    /// bound the iteration skew between ranks to one, and a rank can die
    /// after its peers persisted a boundary it never reached — together at
    /// most **two** persist points of lag, so `keep_last = 3` is the proven
    /// floor. The default presets use 4, keeping one extra point of slack
    /// for schedules that interleave cycle-boundary and cadence snapshots
    /// (pinned by `crates/core/tests/krylov_lflr.rs`).
    pub fn with_persistence(mut self, every: usize, keep_last: usize) -> Self {
        self.persist = Some(PersistSchedule {
            every: every.max(1),
            keep_last: keep_last.max(1),
            base_step: 0,
            persisted: Vec::new(),
            last_step: None,
            writes: 0,
        });
        self
    }

    /// Mark this instance as driving a solve resumed at global step `step`:
    /// snapshot keys continue the pre-failure numbering, and the cadence
    /// counts from the resume point.
    pub fn resuming_from(mut self, step: usize) -> Self {
        if let Some(p) = self.persist.as_mut() {
            p.base_step = step;
            p.last_step = Some(step);
        }
        self
    }

    /// Number of rollbacks performed.
    pub fn restores(&self) -> usize {
        self.overhead.restarts
    }

    /// Snapshots written to the persistent store by this instance (total
    /// writes — pruning does not shrink this count).
    pub fn snapshots_persisted(&self) -> usize {
        self.persist.as_ref().map_or(0, |p| p.writes)
    }

    /// Newest step persisted (or inherited via
    /// [`resuming_from`](IterateRollbackPolicy::resuming_from)), if any.
    pub fn last_persisted(&self) -> Option<usize> {
        self.persist.as_ref().and_then(|p| p.last_step)
    }
}

impl<V> IterateRollbackPolicy<V> {
    /// Persist `x` as the snapshot of global step `base + iteration` if the
    /// cadence says one is due, pruning the oldest beyond the window.
    /// `iteration` must be the iteration `x` actually corresponds to (see
    /// [`SolutionProbe::iterate_step`]); `refresh` additionally re-writes a
    /// snapshot whose step equals the newest (the resume-point rewrite at a
    /// recurrence rebuild — never used on the per-iteration path, where the
    /// committed step can legitimately sit still mid-cycle).
    fn persist_if_due<S>(
        &mut self,
        space: &mut S,
        iteration: usize,
        x: &S::Vector,
        refresh: bool,
    ) -> Result<()>
    where
        S: KrylovSpace<Vector = V>,
    {
        let Some(p) = self.persist.as_mut() else {
            return Ok(());
        };
        let step = p.base_step + iteration;
        let due = match p.last_step {
            None => true,
            // `refresh` lets the resume-point snapshot (seeded into
            // `last_step`) be re-written rather than skipped, keeping the
            // store self-consistent with the restored iterate.
            Some(last) => (refresh && step == last) || step >= last + p.every,
        };
        if !due {
            return Ok(());
        }
        self.overhead.persist_bytes += space.persist_vector(&snapshot_key(step), x)?;
        space.persist_scalar(SNAPSHOT_META_KEY, step as f64)?;
        p.writes += 1;
        if p.persisted.last() != Some(&step) {
            p.persisted.push(step);
        }
        p.last_step = Some(step);
        while p.persisted.len() > p.keep_last {
            let old = p.persisted.remove(0);
            space.unpersist(&snapshot_key(old));
        }
        Ok(())
    }
}

impl<S: KrylovSpace> ResiliencePolicy<S> for IterateRollbackPolicy<S::Vector> {
    fn name(&self) -> &'static str {
        "iterate-rollback"
    }
    fn on_cycle_start(&mut self, space: &mut S, ctx: &IterCtx, x: &S::Vector) -> Result<()> {
        // A cycle start right after a rollback carries the *restored*
        // iterate: the kernel's iteration counter kept running, so
        // `ctx.iteration` would over-label it — keep the step the saved
        // copy was captured at. Otherwise the iterate corresponds exactly
        // to the current iteration.
        let step = if self.rolled_back {
            self.rolled_back = false;
            self.saved_step
        } else {
            ctx.iteration
        };
        self.saved = Some(x.clone());
        self.saved_step = step;
        // Refresh so a resumed solve re-writes the snapshot it was
        // warm-started from.
        self.persist_if_due(space, step, x, true)
    }
    fn on_iteration(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        probe: &mut dyn SolutionProbe<S>,
    ) -> Result<PolicyAction> {
        // Label the snapshot with the step the committed iterate embodies —
        // for GMRES that is the cycle base (mid-cycle progress is not
        // snapshotable), for CG the current iteration — and only when it
        // advanced a full cadence past the newest snapshot.
        self.persist_if_due(space, probe.iterate_step(), probe.iterate(), false)?;
        Ok(PolicyAction::Continue)
    }
    fn on_failure(
        &mut self,
        _ctx: &IterCtx,
        _event: FailureEvent,
        x: &mut S::Vector,
    ) -> RecoveryAction {
        match (&self.saved, self.restores_left) {
            (Some(saved), n) if n > 0 => {
                *x = saved.clone();
                self.restores_left -= 1;
                self.overhead.restarts += 1;
                self.rolled_back = true;
                RecoveryAction::Restart
            }
            _ => RecoveryAction::Accept,
        }
    }
    fn overhead(&self) -> PolicyOverhead {
        self.overhead.clone()
    }
}
