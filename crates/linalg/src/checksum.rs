//! Algorithm-based fault tolerance (ABFT) checksum encodings in the style of
//! Huang & Abraham, "Algorithm-Based Fault Tolerance for Matrix Operations"
//! (IEEE ToC 1984) — the classical reference the paper cites for ABFT.
//!
//! The idea: augment a matrix with an extra checksum row (column sums) and/or
//! checksum column (row sums). Linear operations preserve the checksum
//! relationship, so after the operation the checksums can be recomputed and
//! compared; a mismatch localises (and for a single error, corrects) a
//! corrupted element.

use crate::dense::DenseMatrix;
use crate::sparse::CsrMatrix;

/// Result of verifying a checksummed object.
#[derive(Debug, Clone, PartialEq)]
pub enum ChecksumVerdict {
    /// All checksums agree within tolerance.
    Clean,
    /// A single inconsistency was found and localised (and can be corrected
    /// for full checksum encodings).
    SingleError {
        /// Row of the suspect element.
        row: usize,
        /// Column of the suspect element.
        col: usize,
        /// Estimated magnitude of the error (new − correct).
        magnitude: f64,
    },
    /// More than one inconsistency: detected but not correctable.
    MultipleErrors {
        /// Number of inconsistent rows.
        bad_rows: usize,
        /// Number of inconsistent columns.
        bad_cols: usize,
    },
}

impl ChecksumVerdict {
    /// Was any error detected?
    pub fn detected(&self) -> bool {
        !matches!(self, ChecksumVerdict::Clean)
    }
}

/// A dense matrix augmented with a checksum row and a checksum column
/// (the "full checksum matrix" of Huang & Abraham).
#[derive(Debug, Clone)]
pub struct ChecksummedMatrix {
    /// The data matrix (unaugmented dimensions).
    pub data: DenseMatrix,
    /// Column sums: `row_checksum[j] = Σ_i data(i, j)`.
    pub col_checksum: Vec<f64>,
    /// Row sums: `row_checksum[i] = Σ_j data(i, j)`.
    pub row_checksum: Vec<f64>,
}

impl ChecksummedMatrix {
    /// Encode a matrix by computing its checksum row and column.
    pub fn encode(data: &DenseMatrix) -> Self {
        let col_checksum = (0..data.ncols())
            .map(|j| data.col(j).iter().sum())
            .collect::<Vec<f64>>();
        let row_checksum = (0..data.nrows())
            .map(|i| (0..data.ncols()).map(|j| data.get(i, j)).sum())
            .collect();
        Self {
            data: data.clone(),
            col_checksum,
            row_checksum,
        }
    }

    /// Verify the checksums with a relative tolerance `tol` (scaled by the
    /// matrix magnitude). For exactly one inconsistent row *and* one
    /// inconsistent column the error is localised to their intersection.
    pub fn verify(&self, tol: f64) -> ChecksumVerdict {
        let scale = self.data.norm_max().max(1.0) * self.data.nrows().max(self.data.ncols()) as f64;
        let threshold = tol * scale;
        let mut bad_rows = Vec::new();
        for i in 0..self.data.nrows() {
            let actual: f64 = (0..self.data.ncols()).map(|j| self.data.get(i, j)).sum();
            let delta = actual - self.row_checksum[i];
            if delta.abs() > threshold {
                bad_rows.push((i, delta));
            }
        }
        let mut bad_cols = Vec::new();
        for j in 0..self.data.ncols() {
            let actual: f64 = self.data.col(j).iter().sum();
            let delta = actual - self.col_checksum[j];
            if delta.abs() > threshold {
                bad_cols.push((j, delta));
            }
        }
        match (bad_rows.len(), bad_cols.len()) {
            (0, 0) => ChecksumVerdict::Clean,
            (1, 1) => ChecksumVerdict::SingleError {
                row: bad_rows[0].0,
                col: bad_cols[0].0,
                magnitude: bad_rows[0].1,
            },
            (r, c) => ChecksumVerdict::MultipleErrors {
                bad_rows: r,
                bad_cols: c,
            },
        }
    }

    /// Attempt to correct a single corrupted element in place. Returns `true`
    /// if a correction was applied.
    pub fn correct(&mut self, tol: f64) -> bool {
        if let ChecksumVerdict::SingleError {
            row,
            col,
            magnitude,
        } = self.verify(tol)
        {
            let current = self.data.get(row, col);
            self.data.set(row, col, current - magnitude);
            true
        } else {
            false
        }
    }
}

/// Checksummed GEMM: `C = A·B` with the product's checksums *predicted* from
/// the operands, so that errors during the multiplication itself are caught.
///
/// The column-checksum vector of `C` equals `(eᵀA)·B` and the row-checksum
/// vector equals `A·(B·e)`, both computed with O(n²) extra work — the cheap
/// metadata the paper's §III-A refers to.
pub fn checksummed_gemm(a: &DenseMatrix, b: &DenseMatrix) -> ChecksummedMatrix {
    let c = a.gemm(b);
    // eᵀ·A (column sums of A), then multiplied by B.
    let col_sums_a: Vec<f64> = (0..a.ncols()).map(|j| a.col(j).iter().sum()).collect();
    let col_checksum = b.gemv_t(&col_sums_a);
    // B·e (row sums of B), then multiplied by A.
    let row_sums_b: Vec<f64> = (0..b.nrows())
        .map(|i| (0..b.ncols()).map(|j| b.get(i, j)).sum())
        .collect();
    let row_checksum = a.gemv(&row_sums_b);
    ChecksummedMatrix {
        data: c,
        col_checksum,
        row_checksum,
    }
}

/// A sparse matrix paired with its row-sum vector `A·e`, enabling a cheap
/// end-to-end check of SpMV results: for any `x`, `Σ_i (A·x)_i` must equal
/// `(eᵀA)·x`, and per-row checks catch localised corruption.
#[derive(Debug, Clone)]
pub struct ChecksummedCsr {
    /// The matrix.
    pub matrix: CsrMatrix,
    /// Column-sum vector `eᵀA` (length = ncols).
    pub col_sums: Vec<f64>,
    /// Frobenius norm of the matrix, cached at encode time (a constant of
    /// the tolerance scale — recomputing it per check would cost O(nnz)).
    fro: f64,
}

impl ChecksummedCsr {
    /// Encode a CSR matrix.
    pub fn encode(matrix: CsrMatrix) -> Self {
        let mut col_sums = vec![0.0; matrix.ncols()];
        for i in 0..matrix.nrows() {
            let (cols, vals) = matrix.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                col_sums[j] += v;
            }
        }
        let fro = matrix.norm_fro();
        Self {
            matrix,
            col_sums,
            fro,
        }
    }

    /// The tolerance scale every product verification compares against:
    /// `‖A‖_F·max(|x|, 1)·n`, an O(n) evaluation thanks to the cached
    /// Frobenius norm. Exposed so external verifiers that obtain the two
    /// checksum sides elsewhere (e.g. fused into a solver reduction) apply
    /// *exactly* the same threshold as [`ChecksummedCsr::verify_product`].
    pub fn product_tolerance_scale(&self, x: &[f64]) -> f64 {
        self.fro.max(1.0)
            * x.iter().fold(1.0f64, |m, v| m.max(v.abs()))
            * self.matrix.nrows() as f64
    }

    /// Compute `y = A·x` and verify the aggregate checksum
    /// `Σ_i y_i == (eᵀA)·x`. Returns the product and whether the check
    /// passed.
    pub fn spmv_checked(&self, x: &[f64], tol: f64) -> (Vec<f64>, bool) {
        let y = self.matrix.spmv(x);
        let ok = self.verify_product(x, &y, tol);
        (y, ok)
    }

    /// Verify an SpMV result produced elsewhere (possibly corrupted in
    /// transit or by a bit flip in memory).
    pub fn verify_product(&self, x: &[f64], y: &[f64], tol: f64) -> bool {
        let sum_y: f64 = y.iter().sum();
        let expected: f64 = self.col_sums.iter().zip(x).map(|(a, b)| a * b).sum();
        (sum_y - expected).abs() <= tol * self.product_tolerance_scale(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson2d;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const TOL: f64 = 1e-12;

    #[test]
    fn clean_matrix_verifies() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = DenseMatrix::random(6, 4, &mut rng);
        let cm = ChecksummedMatrix::encode(&a);
        assert_eq!(cm.verify(TOL), ChecksumVerdict::Clean);
        assert!(!cm.verify(TOL).detected());
    }

    #[test]
    fn single_corruption_is_localised_and_corrected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = DenseMatrix::random(5, 5, &mut rng);
        let mut cm = ChecksummedMatrix::encode(&a);
        let original = cm.data.get(2, 3);
        cm.data.set(2, 3, original + 10.0);
        match cm.verify(TOL) {
            ChecksumVerdict::SingleError {
                row,
                col,
                magnitude,
            } => {
                assert_eq!((row, col), (2, 3));
                assert!((magnitude - 10.0).abs() < 1e-9);
            }
            other => panic!("expected SingleError, got {other:?}"),
        }
        assert!(cm.correct(TOL));
        assert!((cm.data.get(2, 3) - original).abs() < 1e-9);
        assert_eq!(cm.verify(TOL), ChecksumVerdict::Clean);
    }

    #[test]
    fn multiple_corruptions_detected_not_corrected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = DenseMatrix::random(5, 5, &mut rng);
        let mut cm = ChecksummedMatrix::encode(&a);
        cm.data.add_to(0, 0, 5.0);
        cm.data.add_to(3, 4, -7.0);
        match cm.verify(TOL) {
            ChecksumVerdict::MultipleErrors { bad_rows, bad_cols } => {
                assert_eq!(bad_rows, 2);
                assert_eq!(bad_cols, 2);
            }
            other => panic!("expected MultipleErrors, got {other:?}"),
        }
        assert!(!cm.correct(TOL));
    }

    #[test]
    fn checksummed_gemm_clean_product_verifies() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = DenseMatrix::random(6, 5, &mut rng);
        let b = DenseMatrix::random(5, 7, &mut rng);
        let cm = checksummed_gemm(&a, &b);
        assert_eq!(cm.verify(1e-10), ChecksumVerdict::Clean);
        // The data must equal the plain product.
        assert!(cm.data.sub(&a.gemm(&b)).norm_max() < 1e-14);
    }

    #[test]
    fn checksummed_gemm_catches_injected_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = DenseMatrix::random(4, 4, &mut rng);
        let b = DenseMatrix::random(4, 4, &mut rng);
        let mut cm = checksummed_gemm(&a, &b);
        cm.data.add_to(1, 2, 3.0);
        let verdict = cm.verify(1e-10);
        assert!(matches!(
            verdict,
            ChecksumVerdict::SingleError { row: 1, col: 2, .. }
        ));
        assert!(cm.correct(1e-10));
        assert!(cm.data.sub(&a.gemm(&b)).norm_max() < 1e-9);
    }

    #[test]
    fn checksummed_spmv_clean_and_corrupted() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        let cs = ChecksummedCsr::encode(a);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let (y, ok) = cs.spmv_checked(&x, 1e-12);
        assert!(ok);
        assert!(cs.verify_product(&x, &y, 1e-12));
        // Corrupt one entry of the product.
        let mut y_bad = y.clone();
        y_bad[n / 2] += 1.0;
        assert!(!cs.verify_product(&x, &y_bad, 1e-12));
    }

    #[test]
    fn small_perturbations_below_tolerance_pass() {
        let a = poisson2d(4, 4);
        let n = a.nrows();
        let cs = ChecksummedCsr::encode(a);
        let x = vec![1.0; n];
        let mut y = cs.matrix.spmv(&x);
        y[0] += 1e-15; // rounding-level perturbation
        assert!(
            cs.verify_product(&x, &y, 1e-12),
            "tolerance must absorb rounding noise"
        );
    }
}
