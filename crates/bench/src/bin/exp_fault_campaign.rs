//! Experiment F1 — the adversarial fault campaign (test-harness-as-
//! experiment): proptest-style multi-event fault schedules swept across
//! the solver preset matrix, every run held to the converge-or-honestly-
//! fail oracle, plus the algorithm-diversity vote.
//!
//! Each campaign case measures a clean baseline (scaling the schedule's
//! strike windows and virtual-time budget to the actual solve geometry),
//! replays the generated schedule — correlated SpMV flips, preconditioner-
//! output flips, mixed flip storms, multi-rank deaths, a death during the
//! LFLR recovery rendezvous, deaths straddling the persist cadence — and
//! classifies the outcome: verified convergence, explicit policy
//! detection, a claim refuted by independent verification, or an honest
//! failure. The first table tallies those classes per fault family ×
//! preset; a contract violation (NaN presented as success, rank-
//! asymmetric verdicts, budget blow-out) aborts the experiment with the
//! repro line. The second table demonstrates diversity voting: three
//! diverse solver compositions on the same system, one silently corrupted
//! by a mid-solve SpMV flip, the vote outvoting the confident wrong
//! claimant while certifying the healthy majority's solution.
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_faults::campaign::{FaultFamily, Strike, StrikePlan};
use resilient_linalg::poisson2d;
use resilient_runtime::{Runtime, RuntimeConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: Vec<u64> = if smoke {
        vec![42, 43]
    } else {
        (40..48).collect()
    };
    let presets: Vec<CampaignPreset> = if smoke {
        vec![
            CampaignPreset::FusedCg,
            CampaignPreset::PipelinedCg,
            CampaignPreset::FusedPcg,
            CampaignPreset::PipelinedPcg,
            CampaignPreset::CgsGmres,
            CampaignPreset::PipelinedPgmres,
        ]
    } else {
        CampaignPreset::ALL.to_vec()
    };
    let cfg = CampaignConfig::default();

    let mut table = Table::new(
        "F1: fault-campaign outcome matrix (oracle asserted on every run)",
        &[
            "family",
            "preset",
            "cases",
            "verified",
            "det-policy",
            "det-verif",
            "honest-fail",
            "flips",
            "recoveries",
        ],
    );
    let mut totals = [0usize; 4];
    for family in FaultFamily::ALL {
        for &preset in &presets {
            let mut counts = [0usize; 4];
            let mut flips = 0usize;
            let mut recoveries = 0usize;
            for &seed in &seeds {
                let report = campaign_case(family, seed, preset, &cfg)
                    .unwrap_or_else(|violation| panic!("{violation}"));
                let slot = match report.outcome {
                    CaseOutcome::ConvergedVerified => 0,
                    CaseOutcome::DetectedByPolicy => 1,
                    CaseOutcome::DetectedByVerification => 2,
                    CaseOutcome::HonestFailure(_) | CaseOutcome::Errored => 3,
                };
                counts[slot] += 1;
                flips += report.injections;
                recoveries += report.recoveries;
            }
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
            table.row(vec![
                family.name().to_string(),
                preset.name().to_string(),
                seeds.len().to_string(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
                counts[3].to_string(),
                flips.to_string(),
                recoveries.to_string(),
            ]);
        }
    }
    table.emit("f1_fault_campaign");
    let total_cases: usize = totals.iter().sum();
    println!(
        "\n{total_cases} campaign cases, all honest: {} verified, {} detected by policy, \
         {} refuted by verification, {} failed explicitly — zero silent wrong answers.",
        totals[0], totals[1], totals[2], totals[3]
    );

    // ------------------------------------------------------------------
    // Diversity voting: the algorithm-agnostic detector.
    // ------------------------------------------------------------------
    let mut vote_table = Table::new(
        "F1b: algorithm-diversity vote (3 members, member 0 poisoned by one SpMV flip)",
        &["member", "preset", "claims", "true relres", "verdict"],
    );
    let a = poisson2d(cfg.nx, cfg.nx);
    let b = cfg.rhs();
    let opts = cfg.solve_opts();
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(7));
    let job = rt.run(cfg.ranks, move |comm| {
        let plan = StrikePlan::new(vec![Strike {
            rank: 0,
            incarnation: 0,
            at: 8,
            element: 2,
            bit: 50,
        }]);
        let members = vec![
            DiversityMember::poisoned(CampaignPreset::FusedCg, plan),
            DiversityMember::clean(CampaignPreset::CgsGmres),
            DiversityMember::clean(CampaignPreset::PipelinedPcg),
        ];
        diversity_vote(comm, &a, &b, members, &opts, 1e-5)
    });
    assert!(job.all_ok(), "diversity vote errored: {:?}", job.errors);
    let report = &job.unwrap_all()[0];
    let names = ["fused-cg (poisoned)", "cgs-gmres", "pipelined-pcg"];
    for (idx, name) in names.iter().enumerate() {
        let verdict = if report.outvoted.contains(&idx) {
            "OUTVOTED"
        } else if report
            .majority
            .map(|m| report.clusters[m].contains(&idx))
            .unwrap_or(false)
        {
            "majority"
        } else {
            "no claim"
        };
        vote_table.row(vec![
            idx.to_string(),
            name.to_string(),
            report.claimed[idx].to_string(),
            fmt_g(report.true_relres[idx]),
            verdict.to_string(),
        ]);
    }
    vote_table.emit("f1b_diversity_vote");
    assert!(
        report.detected && report.outvoted == vec![0],
        "the poisoned member must be outvoted"
    );
    assert!(
        report.solution.is_some(),
        "the vote must still certify the healthy majority's solution"
    );
    println!(
        "\nmember 0 claims convergence with true relres {:.2e} — refuted by the \
         diverse majority, which certifies its own agreed solution.",
        report.true_relres[0]
    );
}
