//! Distributed explicit heat equation with LFLR and CPR recovery drivers
//! (§III-C "Explicit methods: … can be easily implemented to recover
//! locally, given the LFLR features").

use resilience::lflr::{CprApp, LflrApp};
use resilient_runtime::{BlockDistribution, CartTopology, Comm, Result, Stored};

use crate::heat1d::HeatProblem;

/// The distributed explicit heat application: implements both the LFLR and
/// the CPR application contracts so the two recovery models run *exactly the
/// same numerics* and differ only in how they survive failures.
#[derive(Debug, Clone)]
pub struct ExplicitHeat {
    /// The global problem.
    pub problem: HeatProblem,
    /// Number of time steps to run.
    pub steps: usize,
    /// Persist / checkpoint every this many steps.
    pub persist_interval: usize,
    /// Extra virtual seconds of application work charged per step per rank
    /// (models the rest of a real multi-physics step; lets experiments scale
    /// the cost of lost work independently of the grid size).
    pub work_per_step: f64,
}

/// Per-rank state: the locally owned slice of the temperature field.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalField {
    /// Locally owned interior values.
    pub u: Vec<f64>,
    /// Global step this state corresponds to.
    pub step: usize,
}

impl ExplicitHeat {
    fn distribution(&self, comm: &Comm) -> BlockDistribution {
        BlockDistribution::new(self.problem.n, comm.size())
    }

    fn topology(&self, comm: &Comm) -> CartTopology {
        CartTopology::line(comm.size(), false)
    }

    /// Build the local initial condition.
    pub fn local_initial(&self, comm: &Comm) -> LocalField {
        let dist = self.distribution(comm);
        let u = dist
            .range(comm.rank())
            .map(|i| (std::f64::consts::PI * self.problem.x(i)).sin())
            .collect();
        LocalField { u, step: 0 }
    }

    /// One distributed explicit step: halo exchange with the left/right
    /// neighbours, then the local stencil update. Charged `work_per_step` of
    /// extra virtual time plus the stencil FLOPs.
    pub fn local_step(&self, comm: &mut Comm, field: &mut LocalField) -> Result<()> {
        let topo = self.topology(comm);
        let n_local = field.u.len();
        let left_value = field.u.first().copied().unwrap_or(0.0);
        let right_value = field.u.last().copied().unwrap_or(0.0);
        if self.work_per_step > 0.0 {
            comm.advance(self.work_per_step);
        }
        let (from_left, from_right) =
            comm.exchange_boundaries_1d(&topo, &[left_value], &[right_value])?;
        let left_ghost = from_left.and_then(|v| v.first().copied()).unwrap_or(0.0);
        let right_ghost = from_right.and_then(|v| v.first().copied()).unwrap_or(0.0);
        let r = self.problem.courant();
        let mut next = vec![0.0; n_local];
        for (i, nx) in next.iter_mut().enumerate() {
            let left = if i > 0 { field.u[i - 1] } else { left_ghost };
            let right = if i + 1 < n_local {
                field.u[i + 1]
            } else {
                right_ghost
            };
            *nx = field.u[i] + r * (left - 2.0 * field.u[i] + right);
        }
        comm.charge_flops(5 * n_local);
        field.u = next;
        field.step += 1;
        Ok(())
    }

    /// Gather the global field on every rank (verification only).
    pub fn gather(&self, comm: &mut Comm, field: &LocalField) -> Result<Vec<f64>> {
        let parts = comm.allgather(&field.u)?;
        Ok(parts.into_iter().flatten().collect())
    }
}

impl LflrApp for ExplicitHeat {
    type State = LocalField;

    fn init(&self, comm: &mut Comm) -> Result<LocalField> {
        Ok(self.local_initial(comm))
    }

    fn step(&self, comm: &mut Comm, state: &mut LocalField, _step: usize) -> Result<()> {
        self.local_step(comm, state)
    }

    fn persist(&self, comm: &mut Comm, state: &LocalField, step: usize) -> Result<()> {
        // Step-keyed history rather than a single overwritten slot: ranks
        // progress asynchronously (halo exchange only loosely couples
        // neighbours), so the agreed rollback step can be older than this
        // rank's newest persist. Keeping a *window* of persist points lets
        // any rank roll back to any globally agreed step exactly without the
        // store growing for the whole run.
        comm.persist(&format!("heat/u@{step}"), state.u.clone())?;
        comm.persist("heat/last", step as f64)?;
        // Prune history outside the window that recovery can ever ask for.
        // Halo exchange keeps adjacent ranks within one step of each other,
        // so global progress skew is at most `size - 1` steps; with the
        // laggard's last persist floor-rounded to the interval, the agreed
        // (minimum) rollback step can trail this rank's newest persist by up
        // to `ceil((size-1)/interval)` intervals. The window below is
        // exactly minimal — the worst case lands on the *oldest retained*
        // key with zero slack — so do not shrink it, and widen it if any
        // extra step of skew is ever introduced (e.g. persisting before the
        // halo exchange, or a periodic topology).
        let interval = self.persist_interval.max(1);
        let window = ((comm.size() - 1).div_ceil(interval) + 1) * interval;
        if step >= window {
            comm.unpersist(&format!("heat/u@{}", step - window));
        }
        Ok(())
    }

    fn recover(&self, comm: &mut Comm, step: usize) -> Result<LocalField> {
        let me = comm.rank();
        // The recovery protocol agrees on the *minimum* recoverable step
        // across every rank (replacements propose from the inherited store
        // via `last_recoverable`), so missing data can only mean the failure
        // predates the very first persist; silently re-initialising at any
        // later step would corrupt the solution, so propagate the miss.
        match comm.restore(me, &format!("heat/u@{step}")) {
            Ok(v) => Ok(LocalField {
                u: v.into_f64()?,
                step,
            }),
            Err(_) if step == 0 => Ok(self.local_initial(comm)),
            Err(e) => Err(e),
        }
    }

    fn last_recoverable(&self, comm: &mut Comm) -> Option<usize> {
        let me = comm.rank();
        if comm.persisted(me, "heat/last") {
            let step = comm.restore(me, "heat/last").ok()?.into_scalar().ok()? as usize;
            return Some(step);
        }
        None
    }

    fn n_steps(&self) -> usize {
        self.steps
    }

    fn persist_interval(&self) -> usize {
        self.persist_interval
    }
}

impl CprApp for ExplicitHeat {
    type State = LocalField;

    fn init(&self, comm: &mut Comm) -> Result<LocalField> {
        Ok(self.local_initial(comm))
    }

    fn step(&self, comm: &mut Comm, state: &mut LocalField, _step: usize) -> Result<()> {
        self.local_step(comm, state)
    }

    fn checkpoint(&self, comm: &mut Comm, state: &LocalField, step: usize) -> Result<()> {
        comm.checkpoint(&format!("heat/u@{step}"), Stored::F64(state.u.clone()))?;
        Ok(())
    }

    fn restore(&self, comm: &mut Comm, step: usize) -> Result<LocalField> {
        match comm.restore_checkpoint(&format!("heat/u@{step}")) {
            Some(v) => Ok(LocalField {
                u: v.into_f64()?,
                step,
            }),
            None => {
                let mut field = self.local_initial(comm);
                field.step = step;
                Ok(field)
            }
        }
    }

    fn n_steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience::lflr::{run_cpr, run_lflr, CprConfig};
    use resilient_runtime::{FailureConfig, FailurePolicy, Runtime, RuntimeConfig};
    use std::sync::Arc;

    fn app(steps: usize) -> ExplicitHeat {
        ExplicitHeat {
            problem: HeatProblem::stable(48, 1.0),
            steps,
            persist_interval: 5,
            work_per_step: 0.01,
        }
    }

    #[test]
    fn distributed_explicit_matches_serial() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let steps = 60;
        let fields = rt
            .run(4, move |comm| {
                let app = app(steps);
                let mut field = app.local_initial(comm);
                for _ in 0..steps {
                    app.local_step(comm, &mut field)?;
                }
                app.gather(comm, &field)
            })
            .unwrap_all();
        let serial = HeatProblem::stable(48, 1.0).run_explicit(steps);
        for f in fields {
            for (a, b) in f.iter().zip(&serial) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "distributed and serial stepping must agree"
                );
            }
        }
    }

    #[test]
    fn lflr_run_with_failure_matches_failure_free_solution() {
        let steps = 40;
        // Failure-free reference.
        let serial = HeatProblem::stable(48, 1.0).run_explicit(steps);

        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(1, 0.22)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(4, move |comm| {
            let app = app(steps);
            let (report, field) = run_lflr(comm, &app)?;
            Ok((report, app.gather(comm, &field)?))
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1);
        for (report, field) in r.unwrap_all() {
            assert_eq!(report.steps_completed, steps);
            for (a, b) in field.iter().zip(&serial) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "LFLR-recovered solution must equal the failure-free one"
                );
            }
        }
    }

    #[test]
    fn persist_history_stays_bounded() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let steps = 60;
        let r = rt.run(4, move |comm| {
            let app = app(steps); // persist_interval = 5
            let (_report, _field) = run_lflr(comm, &app)?;
            // 4 ranks, interval 5 -> window = (ceil(3/5) + 1) * 5 = 10 steps:
            // only the newest two persist points survive pruning.
            let me = comm.rank();
            Ok((
                comm.persisted(me, "heat/u@60"),
                comm.persisted(me, "heat/u@55"),
                comm.persisted(me, "heat/u@50"),
                comm.persisted(me, "heat/u@5"),
            ))
        });
        for (newest, prev, pruned, ancient) in r.unwrap_all() {
            assert!(newest && prev, "the recovery window must be retained");
            assert!(
                !pruned && !ancient,
                "history outside the window must be pruned"
            );
        }
    }

    #[test]
    fn cpr_run_with_failure_completes_and_costs_more() {
        let steps = 40;
        let base = RuntimeConfig::fast();
        // Failure-free cost.
        let clean = run_cpr(
            &base,
            4,
            Arc::new(app(steps)),
            &CprConfig {
                checkpoint_interval: 5,
                max_restarts: 4,
            },
        );
        assert!(clean.completed);
        assert_eq!(clean.attempts, 1);

        let faulty_cfg = base.with_failures(FailureConfig {
            enabled: true,
            policy: FailurePolicy::AbortJob,
            mtbf_per_rank: f64::INFINITY,
            scheduled: vec![(2, 0.31)],
            max_failures: 1,
        });
        let faulty = run_cpr(
            &faulty_cfg,
            4,
            Arc::new(app(steps)),
            &CprConfig {
                checkpoint_interval: 5,
                max_restarts: 4,
            },
        );
        assert!(faulty.completed, "{faulty:?}");
        assert_eq!(faulty.attempts, 2);
        assert!(
            faulty.total_virtual_time > clean.total_virtual_time,
            "a failure must cost time under CPR: {} vs {}",
            faulty.total_virtual_time,
            clean.total_virtual_time
        );
    }
}
