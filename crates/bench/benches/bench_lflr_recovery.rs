//! E4 bench: simulation cost of an LFLR run with one failure vs a
//! failure-free run and vs a CPR run (wall time of the simulator; the
//! virtual-time results are in exp_lflr_heat).

use criterion::{criterion_group, criterion_main, Criterion};
use resilience::lflr::{run_cpr, run_lflr, CprConfig};
use resilient_pde::{ExplicitHeat, HeatProblem};
use resilient_runtime::{FailureConfig, FailurePolicy, Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Duration;

fn heat() -> ExplicitHeat {
    ExplicitHeat {
        problem: HeatProblem::stable(64, 1.0),
        steps: 20,
        persist_interval: 5,
        work_per_step: 0.01,
    }
}

fn lflr(with_failure: bool) -> f64 {
    let failures = if with_failure {
        FailureConfig::scheduled(FailurePolicy::ReplaceRank, vec![(1, 0.12)])
    } else {
        FailureConfig::none()
    };
    let rt = Runtime::new(RuntimeConfig::fast().with_failures(failures));
    let app = heat();
    let r = rt.run(4, move |comm| {
        run_lflr(comm, &app).map(|(rep, _)| rep.finished_at)
    });
    r.job.makespan
}

fn cpr(with_failure: bool) -> f64 {
    let mut cfg = RuntimeConfig::fast();
    if with_failure {
        cfg.failures = FailureConfig {
            enabled: true,
            policy: FailurePolicy::AbortJob,
            mtbf_per_rank: f64::INFINITY,
            scheduled: vec![(1, 0.12)],
            max_failures: 1,
        };
    }
    run_cpr(
        &cfg,
        4,
        Arc::new(heat()),
        &CprConfig {
            checkpoint_interval: 5,
            max_restarts: 4,
        },
    )
    .total_virtual_time
}

fn bench_lflr(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_drivers_sim");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    group.bench_function("lflr_clean", |b| {
        b.iter(|| std::hint::black_box(lflr(false)))
    });
    group.bench_function("lflr_one_failure", |b| {
        b.iter(|| std::hint::black_box(lflr(true)))
    });
    group.bench_function("cpr_clean", |b| b.iter(|| std::hint::black_box(cpr(false))));
    group.bench_function("cpr_one_failure", |b| {
        b.iter(|| std::hint::black_box(cpr(true)))
    });
    group.finish();
}

criterion_group!(benches, bench_lflr);
criterion_main!(benches);
