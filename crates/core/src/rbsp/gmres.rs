//! Distributed GMRES: bulk-synchronous vs. p(1)-pipelined.
//!
//! Both entry points are presets of the unified kernel
//! ([`crate::kernel`]) over a [`DistSpace`]: the bulk-synchronous variant
//! uses the [`CgsOrtho`] dot strategy (classical Gram–Schmidt, two blocking
//! all-reduces per iteration), the pipelined variant the [`PipelinedOrtho`]
//! strategy (one nonblocking fused all-reduce overlapped with the
//! speculative next product).

use resilient_runtime::{CommBackend, Result};

use super::{DistSolveOptions, DistSolveOutcome};
use crate::distributed::{DistCsr, DistVector};
use crate::kernel::{
    run_gmres, CgsOrtho, DistSpace, GmresFlavor, PipelinedOrtho, PolicyStack, RightPrecond,
    SpacePreconditioner,
};

/// Classical distributed GMRES with classical Gram–Schmidt orthogonalisation:
/// per iteration one SpMV, one **blocking** all-reduce for the projection
/// coefficients and one **blocking** all-reduce for the normalisation — the
/// two global synchronisation points per iteration that limit strong
/// scaling.
/// Preset: unified kernel × [`CgsOrtho`] × empty policy stack over a
/// [`DistSpace`].
pub fn dist_gmres<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut CgsOrtho::new(),
        &mut PolicyStack::empty(),
        None,
        &GmresFlavor::distributed(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// p(1)-pipelined GMRES (after Ghysels, Ashby, Meerbergen & Vanroose): the
/// reduction for the Gram–Schmidt coefficients and the norm is posted as a
/// **single nonblocking all-reduce** and overlapped with the *next*
/// matrix-vector product, which is applied to the still-unorthogonalised
/// vector; the orthogonalised basis vector and its product are then
/// recovered by linearity. One global synchronisation per iteration, fully
/// overlapped.
/// Preset: unified kernel × [`PipelinedOrtho`] × empty policy stack over a
/// [`DistSpace`]. Composing the same strategy with an SDC-detection stack
/// is [`crate::kernel::compose::pipelined_skeptical_gmres`].
pub fn pipelined_gmres<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedOrtho::new(),
        &mut PolicyStack::empty(),
        None,
        &GmresFlavor::distributed(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Right-preconditioned distributed GMRES: classical Gram–Schmidt over the
/// composite operator `A·M⁻¹`, with the solution corrected through the
/// preconditioned basis. The schedule keeps the two blocking all-reduces of
/// [`dist_gmres`] — a collective-free preconditioner such as
/// [`BlockJacobi`](crate::kernel::BlockJacobi) adds zero synchronization.
/// Under [`IdentityPrecond`](crate::kernel::IdentityPrecond) the solve is
/// bit-identical to [`dist_gmres`].
///
/// Preset: unified kernel × [`CgsOrtho`] × [`RightPrecond`] × empty policy
/// stack over a [`DistSpace`].
pub fn dist_pgmres<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let mut right = RightPrecond(m);
    let (outcome, _report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut CgsOrtho::new(),
        &mut PolicyStack::empty(),
        Some(&mut right),
        &GmresFlavor::distributed(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Right-preconditioned p(1)-pipelined GMRES: the pipelined Arnoldi runs on
/// `A·M⁻¹`, the preconditioner apply joins the speculative product in the
/// overlap region, and the preconditioned correction basis is maintained by
/// linearity — still **one nonblocking all-reduce per iteration**, fully
/// overlapped. Under [`IdentityPrecond`](crate::kernel::IdentityPrecond)
/// the solve is bit-identical to [`pipelined_gmres`].
///
/// Preset: unified kernel × [`PipelinedOrtho`] × [`RightPrecond`] × empty
/// policy stack over a [`DistSpace`].
pub fn pipelined_pgmres<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let mut right = RightPrecond(m);
    let (outcome, _report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedOrtho::new(),
        &mut PolicyStack::empty(),
        Some(&mut right),
        &GmresFlavor::distributed(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::true_relative_residual;
    use resilient_linalg::poisson2d;
    use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

    #[test]
    fn both_variants_solve_poisson() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(300)
                    .with_restart(40);
                let classic = dist_gmres(comm, &da, &b, &opts)?;
                let pipelined = pipelined_gmres(comm, &da, &b, &opts)?;
                Ok((
                    classic.x.gather_global(comm)?,
                    pipelined.x.gather_global(comm)?,
                    classic.converged,
                    pipelined.converged,
                    classic.iterations,
                    pipelined.iterations,
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (cx, px, c_conv, p_conv, c_iters, p_iters) in results {
            assert!(c_conv && p_conv);
            assert!(true_relative_residual(&a, &b, &cx) < 1e-7);
            assert!(true_relative_residual(&a, &b, &px) < 1e-7);
            assert!(
                (c_iters as i64 - p_iters as i64).abs() <= 5,
                "same mathematics, similar iteration counts: {c_iters} vs {p_iters}"
            );
        }
    }

    #[test]
    fn pipelined_gmres_hides_collective_latency() {
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 5.0e-4,
            beta: 0.0,
            gamma: 0.0,
        };
        let rt = Runtime::new(cfg);
        let times = rt
            .run(8, move |comm| {
                let a = poisson2d(12, 12);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| (i as f64 * 0.05).sin() + 1.0);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-7)
                    .with_max_iters(120)
                    .with_restart(40);
                let t0 = comm.now();
                let classic = dist_gmres(comm, &da, &b, &opts)?;
                let t1 = comm.now();
                let pipelined = pipelined_gmres(comm, &da, &b, &opts)?;
                let t2 = comm.now();
                assert!(classic.converged && pipelined.converged);
                Ok((t1 - t0, t2 - t1))
            })
            .unwrap_all();
        for (classic_time, pipelined_time) in times {
            assert!(
                pipelined_time < classic_time,
                "p(1)-GMRES must finish sooner under collective latency: \
                 classic={classic_time}, pipelined={pipelined_time}"
            );
        }
    }
}
