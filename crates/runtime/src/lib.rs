//! # resilient-runtime
//!
//! A simulated SPMD message-passing runtime providing the system support the
//! four resilience-enabling programming models of Heroux, *"Toward Resilient
//! Algorithms and Applications"* (HPDC 2013), require:
//!
//! * **Relaxed bulk-synchronous programming (RBSP)** — blocking *and*
//!   nonblocking (MPI-3 style) collectives, neighborhood collectives, and a
//!   per-rank performance-variability (noise) model, all accounted in
//!   *virtual time* with an α–β latency model so that latency-hiding
//!   algorithms can be evaluated deterministically on a laptop.
//! * **Local-failure local-recovery (LFLR)** — fail-stop process-failure
//!   injection, ULFM-style failure notification (`ProcFailed` / `Revoked`
//!   errors instead of hangs), replacement-rank spawning, a recovery
//!   rendezvous, communicator shrinking, and a persistent per-rank store
//!   that survives rank death.
//! * **Checkpoint/restart (the baseline)** — a job-global stable store with
//!   a bandwidth cost model and an abort-the-whole-job failure policy, so
//!   CPR can be compared quantitatively against LFLR.
//!
//! Ranks are OS threads; messages travel over in-process mailboxes. Two
//! execution backends implement the [`CommBackend`] surface the kernels
//! consume:
//!
//! * The **virtual-time simulator** ([`Comm`] under [`Runtime`]) charges
//!   computation explicitly ([`Comm::advance`], [`Comm::charge_flops`]) and
//!   prices communication through the configured [`LatencyModel`], so
//!   results do not depend on the host machine's core count.
//! * The **real-threads backend** ([`ThreadComm`] under [`ThreadRuntime`],
//!   module [`threads`]) runs the same SPMD code under wall-clock time with
//!   real rendezvous collectives and panic-based fault injection, turning
//!   the simulator's predicted speedups into measured ones.
//!
//! Both backends fold reductions in a deterministic ascending-rank order,
//! so failure-free solver iterates are bit-identical across backends.
//!
//! ## Quick start
//!
//! ```
//! use resilient_runtime::{ReduceOp, Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig::fast());
//! let job = runtime.run(8, |comm| {
//!     // SPMD code: every rank executes this closure.
//!     let local = (comm.rank() + 1) as f64;
//!     let total = comm.allreduce_scalar(ReduceOp::Sum, local)?;
//!     Ok(total)
//! });
//! assert_eq!(job.unwrap_all(), vec![36.0; 8]);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod collective;
pub mod comm;
pub mod config;
pub mod engine;
pub mod error;
pub mod failure;
pub mod health;
pub mod launcher;
pub mod mailbox;
pub mod message;
pub mod neighborhood;
pub mod noise;
pub mod nonblocking;
pub mod persistent;
pub mod stats;
pub mod threads;
pub mod topology;
pub mod ulfm;
pub mod world;

pub use backend::CommBackend;
pub use clock::VirtualClock;
pub use collective::ReduceOp;
pub use comm::{Comm, RankKilled};
pub use config::{
    FailureConfig, FailurePolicy, LatencyModel, NoiseConfig, NoiseDistribution, RuntimeConfig,
};
pub use error::{Result, RuntimeError};
pub use health::FailureEvent;
pub use launcher::{JobResult, Runtime};
pub use message::{ANY_SOURCE, ANY_TAG};
pub use nonblocking::{CollectiveOutcome, PendingCollective};
pub use persistent::{PersistentStore, StableStore, Stored};
pub use stats::{JobStats, RankStats};
pub use threads::{
    DeathContext, DeathInjector, ThreadComm, ThreadConfig, ThreadPending, ThreadRuntime,
};
pub use topology::{BlockDistribution, CartTopology};
pub use ulfm::{RecoveryInfo, ShrinkInfo};
