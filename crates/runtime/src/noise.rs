//! Performance-variability ("noise") injection.
//!
//! Section II-B of the paper argues that the first visible impact of reduced
//! hardware reliability is *performance variability*: error detection and
//! correction in hardware and system software preserve the reliable digital
//! machine model, but make equal work no longer take equal time. The
//! [`NoiseModel`] reproduces that effect: as a rank charges compute time to
//! its virtual clock, noise events arrive as a Poisson process and each event
//! adds a random detour.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::config::{NoiseConfig, NoiseDistribution};

/// Stateful per-rank noise generator.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    config: NoiseConfig,
    /// Total noise injected so far (seconds).
    total_injected: f64,
    /// Number of events injected so far.
    events: u64,
}

impl NoiseModel {
    /// Create a noise model from a configuration.
    pub fn new(config: NoiseConfig) -> Self {
        Self {
            config,
            total_injected: 0.0,
            events: 0,
        }
    }

    /// Amount of noise (virtual seconds) to add to a compute interval of
    /// `dt` seconds, sampled from the configured event process.
    ///
    /// The number of events in the interval is Poisson with mean
    /// `rate_hz * dt`; each event's duration follows the configured
    /// distribution. Returns `0.0` when noise is disabled.
    pub fn sample(&mut self, dt: f64, rng: &mut ChaCha8Rng) -> f64 {
        if !self.config.enabled || dt <= 0.0 || self.config.rate_hz <= 0.0 {
            return 0.0;
        }
        let lambda = self.config.rate_hz * dt;
        let n = sample_poisson(lambda, rng);
        if n == 0 {
            return 0.0;
        }
        let mut extra = 0.0;
        for _ in 0..n {
            extra += match self.config.duration {
                NoiseDistribution::Fixed(d) => d.max(0.0),
                NoiseDistribution::Exponential(mean) => {
                    if mean <= 0.0 {
                        0.0
                    } else {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        -mean * u.ln()
                    }
                }
                NoiseDistribution::Uniform(lo, hi) => {
                    let (lo, hi) = (lo.min(hi), lo.max(hi));
                    if hi <= lo {
                        lo.max(0.0)
                    } else {
                        rng.gen_range(lo..hi).max(0.0)
                    }
                }
            };
        }
        self.events += n;
        self.total_injected += extra;
        extra
    }

    /// Total noise injected so far, in seconds.
    pub fn total_injected(&self) -> f64 {
        self.total_injected
    }

    /// Total number of noise events injected so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The underlying configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }
}

/// Sample a Poisson random variate with mean `lambda`.
///
/// Uses Knuth's product method for small `lambda` and a normal approximation
/// for large `lambda` (where the distinction is invisible at our precision).
pub fn sample_poisson(lambda: f64, rng: &mut ChaCha8Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k: u64 = 0;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical safety net
            }
        }
    } else {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z + 0.5;
        if v < 0.0 {
            0
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn disabled_noise_is_zero() {
        let mut m = NoiseModel::new(NoiseConfig::off());
        let mut r = rng(1);
        assert_eq!(m.sample(10.0, &mut r), 0.0);
        assert_eq!(m.events(), 0);
    }

    #[test]
    fn zero_interval_is_zero() {
        let mut m = NoiseModel::new(NoiseConfig::fixed(100.0, 0.01));
        let mut r = rng(1);
        assert_eq!(m.sample(0.0, &mut r), 0.0);
        assert_eq!(m.sample(-1.0, &mut r), 0.0);
    }

    #[test]
    fn fixed_duration_noise_matches_event_count() {
        let mut m = NoiseModel::new(NoiseConfig::fixed(1000.0, 0.5));
        let mut r = rng(7);
        let extra = m.sample(1.0, &mut r);
        assert!(m.events() > 0);
        assert!((extra - 0.5 * m.events() as f64).abs() < 1e-9);
    }

    #[test]
    fn poisson_mean_is_approximately_lambda() {
        let mut r = rng(3);
        let lambda = 4.0;
        let n = 4000;
        let total: u64 = (0..n).map(|_| sample_poisson(lambda, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - lambda).abs() < 0.2,
            "mean {mean} too far from {lambda}"
        );
    }

    #[test]
    fn poisson_large_lambda_uses_normal_path() {
        let mut r = rng(5);
        let lambda = 200.0;
        let n = 2000;
        let total: u64 = (0..n).map(|_| sample_poisson(lambda, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - lambda).abs() < 5.0,
            "mean {mean} too far from {lambda}"
        );
    }

    #[test]
    fn exponential_noise_mean_scales() {
        let mut m = NoiseModel::new(NoiseConfig::exponential(100.0, 0.01));
        let mut r = rng(11);
        let mut total = 0.0;
        for _ in 0..200 {
            total += m.sample(1.0, &mut r);
        }
        // Expected total ≈ 200 s of compute * 100 events/s * 0.01 s/event = 200 s.
        assert!(
            total > 100.0 && total < 350.0,
            "total {total} outside plausible range"
        );
        assert!((m.total_injected() - total).abs() < 1e-9);
    }

    #[test]
    fn uniform_noise_within_bounds() {
        let cfg = NoiseConfig {
            enabled: true,
            rate_hz: 50.0,
            duration: NoiseDistribution::Uniform(0.001, 0.002),
        };
        let mut m = NoiseModel::new(cfg);
        let mut r = rng(13);
        let extra = m.sample(5.0, &mut r);
        let events = m.events() as f64;
        assert!(extra >= 0.001 * events - 1e-12);
        assert!(extra <= 0.002 * events + 1e-12);
    }

    #[test]
    fn determinism_with_same_seed() {
        let mut m1 = NoiseModel::new(NoiseConfig::exponential(10.0, 0.1));
        let mut m2 = NoiseModel::new(NoiseConfig::exponential(10.0, 0.1));
        let mut r1 = rng(99);
        let mut r2 = rng(99);
        for _ in 0..50 {
            assert_eq!(m1.sample(0.3, &mut r1), m2.sample(0.3, &mut r2));
        }
    }
}
