//! SELL-C-σ sparse layout: the cache/SIMD-friendly sibling of CSR.
//!
//! Rows are sorted by descending length inside windows of `σ` rows
//! (bounding how far a row can move from its CSR position), then packed in
//! chunks of `C = 4` rows stored column-major inside the chunk: slot
//! `(step, lane)` of a chunk holds entry `step` of the chunk's `lane`-th
//! row. Short rows are padded to the chunk width with explicit zero fill.
//! The layout is the one Kreutzer et al. proposed for wide-SIMD SpMV: a
//! 4-lane kernel walks the chunk front to back, processing one entry of
//! four rows per step with contiguous value loads and a gathered input.
//!
//! Two properties matter for this crate:
//!
//! * **Losslessness** — [`SellMatrix::from_csr`] keeps every stored entry
//!   (including explicit zeros) in its original within-row order, and
//!   [`SellMatrix::to_csr`] reconstructs the source matrix exactly.
//! * **Bit-compatibility** — each row's products are accumulated
//!   sequentially in CSR entry order (padding never touches the
//!   accumulator), so [`SellMatrix::spmv_into`] returns `f64`s
//!   bit-identical to [`CsrMatrix::spmv_into`], whichever backend runs it.
//!
//! `C` is fixed at 4 to match the crate-wide 4-lane reassociation spec
//! (see [`crate::ops`]); `σ` is a per-matrix construction parameter.

use crate::sparse::CsrMatrix;

#[cfg(test)]
use crate::sparse::CooMatrix;

/// The chunk height of the layout: fixed at 4 rows, the same width as the
/// crate's level-1 lane spec, so one AVX register covers one chunk.
pub const SELL_C: usize = 4;

/// Default sorting-window size: large enough to group similar row lengths
/// in the model problems, small enough to keep the output permutation
/// local (row *i* lands within `σ` of its CSR position).
pub const SELL_DEFAULT_SIGMA: usize = 256;

/// A sparse matrix in SELL-C-σ format (`C = 4`). See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    sigma: usize,
    nnz: usize,
    /// Slot offset of each chunk; `chunk_ptr[k+1] - chunk_ptr[k]` is
    /// `width_k · C` where `width_k` is the chunk's longest row.
    chunk_ptr: Vec<usize>,
    /// Column index per slot (`i32` so a SIMD gather can consume it
    /// directly); padding slots hold 0, a valid always-in-bounds column.
    cols: Vec<i32>,
    /// Value per slot; padding slots hold 0.0 and are never accumulated.
    vals: Vec<f64>,
    /// `perm[p]` = original row stored at sorted position `p` (`p < nrows`).
    perm: Vec<u32>,
    /// Row length at each sorted position, padded with zero-length virtual
    /// rows to a multiple of `C`.
    lens: Vec<u32>,
}

impl SellMatrix {
    /// Convert from CSR, sorting rows by descending length inside windows
    /// of `sigma` rows (stable, so equal-length rows keep their order —
    /// the conversion is deterministic). `sigma = 1` disables sorting.
    ///
    /// # Panics
    /// Panics if `sigma` is zero or the matrix has more than `i32::MAX`
    /// columns (the layout stores gather-ready `i32` column indices).
    pub fn from_csr(a: &CsrMatrix, sigma: usize) -> Self {
        assert!(sigma > 0, "SELL-C-σ requires σ ≥ 1");
        assert!(
            a.ncols() <= i32::MAX as usize,
            "SELL-C-σ stores i32 column indices"
        );
        let nrows = a.nrows();
        let row_len = |i: usize| a.row(i).0.len();

        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&p| std::cmp::Reverse(row_len(p as usize)));
        }

        let n_chunks = nrows.div_ceil(SELL_C);
        let padded = n_chunks * SELL_C;
        let mut lens = vec![0u32; padded];
        for (p, &orig) in perm.iter().enumerate() {
            lens[p] = row_len(orig as usize) as u32;
        }

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        chunk_ptr.push(0usize);
        let mut offset = 0usize;
        for lens_chunk in lens.chunks(SELL_C) {
            let width = lens_chunk.iter().copied().max().unwrap_or(0) as usize;
            offset += width * SELL_C;
            chunk_ptr.push(offset);
        }

        let slots = *chunk_ptr.last().unwrap();
        let mut cols = vec![0i32; slots];
        let mut vals = vec![0.0f64; slots];
        for (k, &base) in chunk_ptr[..n_chunks].iter().enumerate() {
            for lane in 0..SELL_C {
                let p = k * SELL_C + lane;
                if p >= nrows {
                    continue;
                }
                let (rc, rv) = a.row(perm[p] as usize);
                for (step, (&j, &v)) in rc.iter().zip(rv).enumerate() {
                    let slot = base + step * SELL_C + lane;
                    cols[slot] = j as i32;
                    vals[slot] = v;
                }
            }
        }

        Self {
            nrows,
            ncols: a.ncols(),
            sigma,
            nnz: a.nnz(),
            chunk_ptr,
            cols,
            vals,
            perm,
            lens,
        }
    }

    /// Reconstruct the source CSR matrix exactly (inverse of
    /// [`SellMatrix::from_csr`], including within-row entry order and any
    /// explicitly stored zeros).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for (p, &orig) in self.perm.iter().enumerate() {
            row_ptr[orig as usize + 1] = self.lens[p] as usize;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        for (p, &orig) in self.perm.iter().enumerate() {
            let base = self.chunk_ptr[p / SELL_C];
            let lane = p % SELL_C;
            let start = row_ptr[orig as usize];
            for step in 0..self.lens[p] as usize {
                let slot = base + step * SELL_C + lane;
                col_idx[start + step] = self.cols[slot] as usize;
                values[start + step] = self.vals[slot];
            }
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (non-padding) entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The sorting-window parameter σ this matrix was built with.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Stored slots including padding (the layout's memory footprint).
    pub fn padded_slots(&self) -> usize {
        *self.chunk_ptr.last().unwrap()
    }

    /// FLOPs of one SpMV: `2·nnz`, identical to the CSR accounting —
    /// padding slots are masked out, not computed.
    pub fn spmv_flops(&self) -> usize {
        2 * self.nnz
    }

    /// Slot offsets per chunk (layout accessor for SIMD/offload kernels).
    pub fn chunk_ptr(&self) -> &[usize] {
        &self.chunk_ptr
    }

    /// Column index per slot (layout accessor for SIMD/offload kernels).
    pub fn cols(&self) -> &[i32] {
        &self.cols
    }

    /// Value per slot (layout accessor for SIMD/offload kernels).
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Sorted-position → original-row permutation (layout accessor).
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Row length per sorted position, zero-padded to a multiple of `C`
    /// (layout accessor).
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// y = A·x (allocating convenience wrapper).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// y = A·x through the portable scalar kernel. Walks each chunk lane by
    /// lane, accumulating each row's products sequentially in CSR entry
    /// order — bit-identical to [`CsrMatrix::spmv_into`].
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: dimension mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: output dimension mismatch");
        for k in 0..self.chunk_ptr.len() - 1 {
            let base = self.chunk_ptr[k];
            for lane in 0..SELL_C {
                let p = k * SELL_C + lane;
                if p >= self.nrows {
                    break;
                }
                let mut sum = 0.0;
                for step in 0..self.lens[p] as usize {
                    let slot = base + step * SELL_C + lane;
                    sum += self.vals[slot] * x[self.cols[slot] as usize];
                }
                y[self.perm[p] as usize] = sum;
            }
        }
    }
}

/// Build a small deterministic CSR matrix with ragged rows for tests.
#[cfg(test)]
fn ragged(nrows: usize, ncols: usize, seed: u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(nrows, ncols);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..nrows {
        let len = (next() as usize) % (ncols.min(9) + 1);
        for _ in 0..len {
            let j = (next() as usize) % ncols;
            let v = ((next() % 2000) as f64 - 1000.0) / 64.0;
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact() {
        for seed in 0..8u64 {
            let a = ragged(23, 17, seed);
            for sigma in [1, 4, 8, 256] {
                let s = SellMatrix::from_csr(&a, sigma);
                assert_eq!(s.nnz(), a.nnz());
                assert_eq!(s.to_csr(), a, "sigma={sigma} seed={seed}");
            }
        }
    }

    #[test]
    fn spmv_bit_matches_csr() {
        for seed in 0..8u64 {
            let a = ragged(29, 29, seed);
            let x: Vec<f64> = (0..29).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let want = a.spmv(&x);
            for sigma in [1, 4, 64] {
                let s = SellMatrix::from_csr(&a, sigma);
                let got = s.spmv(&x);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "sigma={sigma} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn rectangular_and_empty_shapes() {
        // Rectangular (the distributed local matrices are n_local × (n_local
        // + ghosts)), empty rows, and the empty matrix itself.
        let a = ragged(10, 31, 3);
        let s = SellMatrix::from_csr(&a, SELL_DEFAULT_SIGMA);
        assert_eq!(s.to_csr(), a);
        let x = vec![1.0; 31];
        assert_eq!(s.spmv(&x), a.spmv(&x));

        let empty = CooMatrix::new(0, 0).to_csr();
        let s = SellMatrix::from_csr(&empty, 1);
        assert_eq!(s.nrows(), 0);
        assert!(s.spmv(&[]).is_empty());
        assert_eq!(s.to_csr(), empty);
    }

    #[test]
    fn padding_is_masked_not_computed() {
        // Padding slots store column 0. If a kernel naively computed them
        // (0.0 · x[0]) with x[0] = ∞, the padded rows of the chunk would
        // turn into NaN (0·∞ = NaN). The spec keeps padding out of the
        // accumulation entirely.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 2.0);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 1, 3.0); // shorter row in the same chunk => padded
        let a = coo.to_csr();
        let s = SellMatrix::from_csr(&a, 4);
        let mut x = vec![1.0; 4];
        x[0] = f64::INFINITY;
        let y = s.spmv(&x);
        assert_eq!(y[0], f64::INFINITY, "row 0 really references x[0]");
        assert_eq!(y[1], 3.0, "padded row must not see x[0]");
        assert_eq!(y[2].to_bits(), 0.0f64.to_bits(), "empty row is +0.0");
    }

    #[test]
    fn sigma_windows_bound_row_movement() {
        let a = ragged(40, 40, 1);
        let s = SellMatrix::from_csr(&a, 8);
        for (p, &orig) in s.perm().iter().enumerate() {
            assert_eq!(p / 8, orig as usize / 8, "row {orig} left its σ-window");
        }
    }

    #[test]
    #[should_panic(expected = "σ ≥ 1")]
    fn zero_sigma_panics() {
        SellMatrix::from_csr(&CsrMatrix::identity(2), 0);
    }
}
