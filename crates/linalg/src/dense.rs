//! Dense matrices (column-major) with the level-2/3 kernels the resilient
//! algorithms need: GEMV, GEMM, small QR-style helpers.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::ops::LocalOps;

/// A dense column-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: element (i, j) lives at `data[j * nrows + i]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major nested slice (convenient in tests).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map(Vec::len).unwrap_or(0);
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Matrix with entries drawn uniformly from `[-1, 1]`.
    pub fn random(nrows: usize, ncols: usize, rng: &mut ChaCha8Rng) -> Self {
        let data = (0..nrows * ncols)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Self { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i]
    }

    /// Set element (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[j * self.nrows + i] = v;
    }

    /// Add `v` to element (i, j).
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[j * self.nrows + i] += v;
    }

    /// Borrow column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Borrow column `j` mutably.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self.get(i, j)).collect()
    }

    /// Raw column-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw column-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// y = A·x.
    pub fn gemv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "gemv: dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let col = self.col(j);
            for i in 0..self.nrows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// y = Aᵀ·x.
    pub fn gemv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "gemv_t: dimension mismatch");
        (0..self.ncols)
            .map(|j| self.col(j).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// C = A·B.
    pub fn gemm(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, b.nrows, "gemm: inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.nrows, b.ncols);
        for j in 0..b.ncols {
            for k in 0..self.ncols {
                let bkj = b.get(k, j);
                if bkj == 0.0 {
                    continue;
                }
                let a_col = self.col(k);
                let c_col = c.col_mut(j);
                for i in 0..self.nrows {
                    c_col[i] += a_col[i] * bkj;
                }
            }
        }
        c
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m: f64, v| m.max(v.abs()))
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }

    /// Solve the upper-triangular system `R·x = b` for `x` by back
    /// substitution, using the leading `n × n` block of `self`.
    ///
    /// # Panics
    /// Panics if a diagonal entry is exactly zero.
    pub fn solve_upper_triangular(&self, b: &[f64], n: usize) -> Vec<f64> {
        assert!(n <= self.nrows && n <= self.ncols && n <= b.len());
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.get(i, j) * xj;
            }
            let d = self.get(i, i);
            assert!(d != 0.0, "singular triangular factor at row {i}");
            x[i] = sum / d;
        }
        x
    }
}

/// A dense LU factorization with partial pivoting, `P·A = L·U`, stored
/// packed (unit-diagonal `L` below, `U` on and above the diagonal).
///
/// Built once, then applied repeatedly through the allocation-free
/// [`LuFactors::solve_into`] — the shape a block-Jacobi preconditioner
/// needs: factor the local diagonal block at setup, back-substitute every
/// iteration.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    /// Row swapped with row `k` at elimination step `k`.
    pivots: Vec<usize>,
    n: usize,
    /// `U` packed row-major (row `i` = `u_rows[u_off[i]..u_off[i+1]]`,
    /// diagonal first): back substitution walks rows, and walking rows of
    /// the column-major `lu` strides by `n` per element — this copy makes
    /// the hot preconditioner path read contiguously.
    u_rows: Vec<f64>,
    u_off: Vec<usize>,
}

impl LuFactors {
    /// Factor a square matrix. A pivot column whose remaining entries are
    /// all exactly zero is replaced by a unit pivot (the corresponding
    /// solution component passes through unscaled), so the factorization is
    /// always defined — the same always-defined convention the Jacobi
    /// preconditioner uses for zero diagonal entries.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &DenseMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "LU requires a square matrix");
        let n = a.nrows();
        let mut lu = a.clone();
        let mut pivots = vec![0usize; n];
        for (k, pivot_slot) in pivots.iter_mut().enumerate() {
            // Partial pivoting: largest |entry| in column k, rows k..n.
            let mut piv = k;
            let mut best = lu.get(k, k).abs();
            for i in k + 1..n {
                let v = lu.get(i, k).abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            *pivot_slot = piv;
            if piv != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(piv, j));
                    lu.set(piv, j, tmp);
                }
            }
            let mut pivot = lu.get(k, k);
            if pivot == 0.0 {
                // Structurally singular column: unit pivot, zero multipliers.
                pivot = 1.0;
                lu.set(k, k, pivot);
            }
            for i in k + 1..n {
                let m = lu.get(i, k) / pivot;
                lu.set(i, k, m);
                if m != 0.0 {
                    for j in k + 1..n {
                        lu.add_to(i, j, -m * lu.get(k, j));
                    }
                }
            }
        }
        let mut u_off = Vec::with_capacity(n + 1);
        let mut u_rows = Vec::with_capacity(n * (n + 1) / 2);
        u_off.push(0);
        for i in 0..n {
            for j in i..n {
                u_rows.push(lu.get(i, j));
            }
            u_off.push(u_rows.len());
        }
        Self {
            lu,
            pivots,
            n,
            u_rows,
            u_off,
        }
    }

    /// Order of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// FLOPs of one [`LuFactors::solve_into`] (two triangular solves,
    /// `n²` multiply–adds).
    pub fn flops_per_solve(&self) -> usize {
        2 * self.n * self.n
    }

    /// Solve `A·x = b` in place of `x` (allocation-free): apply the row
    /// permutation, forward-substitute `L`, back-substitute `U`.
    ///
    /// # Panics
    /// Panics if `b` or `x` is shorter than the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert!(b.len() >= n && x.len() >= n, "LU solve: length mismatch");
        x[..n].copy_from_slice(&b[..n]);
        for (k, &piv) in self.pivots.iter().enumerate() {
            if piv != k {
                x.swap(k, piv);
            }
        }
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x[..i].iter().enumerate() {
                s -= self.lu.get(i, j) * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x[i + 1..n].iter().enumerate() {
                s -= self.lu.get(i, i + 1 + j) * xj;
            }
            x[i] = s / self.lu.get(i, i);
        }
    }

    /// Allocating convenience wrapper around [`LuFactors::solve_into`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// [`LuFactors::solve_into`] routed through a [`LocalOps`] backend —
    /// the form the block-Jacobi preconditioner applies every iteration.
    ///
    /// Bit-identical to [`LuFactors::solve_into`] (pinned by the parity
    /// proptests): the forward substitution is re-expressed
    /// column-oriented — each finalized `x[j]` is eliminated from all
    /// later rows at once via `ops.axpy` over the **contiguous**
    /// column-major `L` column, which applies the same updates to each
    /// `x[i]` in the same ascending-`j` order as the row-oriented loop —
    /// and the back substitution keeps its order-sensitive sequential
    /// recurrence ([`LocalOps::msub_seq`]) but reads `U` from the packed
    /// row-major copy instead of striding across columns.
    ///
    /// # Panics
    /// Panics if `b` or `x` is shorter than the factored dimension.
    pub fn solve_with(&self, ops: &dyn LocalOps, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert!(b.len() >= n && x.len() >= n, "LU solve: length mismatch");
        x[..n].copy_from_slice(&b[..n]);
        for (k, &piv) in self.pivots.iter().enumerate() {
            if piv != k {
                x.swap(k, piv);
            }
        }
        let xs = &mut x[..n];
        for j in 0..n {
            let (head, tail) = xs.split_at_mut(j + 1);
            // y += (-x_j)·L[j+1.., j]; (-x_j)·l ≡ -(l·x_j) bitwise, so this
            // is the row loop's `s -= l·x_j` for every remaining row.
            ops.axpy(-head[j], &self.lu.col(j)[j + 1..n], tail);
        }
        for i in (0..n).rev() {
            let row = &self.u_rows[self.u_off[i]..self.u_off[i + 1]];
            let (head, tail) = xs.split_at_mut(i + 1);
            head[i] = ops.msub_seq(head[i], &row[1..], tail) / row[0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.add_to(1, 2, 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), vec![0.0, 0.0, 6.0]);
        assert_eq!(m.col(2), &[0.0, 6.0]);
    }

    #[test]
    fn identity_gemv_is_identity() {
        let i3 = DenseMatrix::identity(3);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(i3.gemv(&x), vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_gemv() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.gemv(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.gemv_t(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
    }

    #[test]
    fn gemm_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.gemm(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn gemm_identity_is_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = DenseMatrix::random(4, 4, &mut rng);
        let c = a.gemm(&DenseMatrix::identity(4));
        assert!(a.sub(&c).norm_max() < 1e-15);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = DenseMatrix::random(3, 5, &mut rng);
        let att = a.transpose().transpose();
        assert!(a.sub(&att).norm_max() == 0.0);
        assert_eq!(a.transpose().nrows(), 5);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert_eq!(a.norm_fro(), 5.0);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn upper_triangular_solve() {
        let r = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 4.0]]);
        let x = r.solve_upper_triangular(&[4.0, 8.0], 2);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn lu_solves_random_systems() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for n in [1usize, 2, 5, 17] {
            // Diagonal boost keeps the random matrix comfortably nonsingular.
            let mut a = DenseMatrix::random(n, n, &mut rng);
            for i in 0..n {
                a.add_to(i, i, n as f64);
            }
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
            let b = a.gemv(&x_true);
            let lu = LuFactors::factor(&a);
            assert_eq!(lu.dim(), n);
            assert_eq!(lu.flops_per_solve(), 2 * n * n);
            let x = lu.solve(&b);
            for (got, want) in x.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-10, "n={n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn lu_solve_into_is_allocation_shaped() {
        // solve_into writes into a caller buffer longer than n and leaves
        // the tail untouched.
        let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![2.0, 3.0]]);
        let lu = LuFactors::factor(&a);
        let mut x = vec![7.0; 4];
        lu.solve_into(&[6.0, 8.0], &mut x);
        assert!(
            (a.gemv(&x[..2]).iter().zip([6.0, 8.0])).all(|(got, want)| (got - want).abs() < 1e-12)
        );
        assert_eq!(&x[2..], &[7.0, 7.0]);
    }

    #[test]
    fn lu_zero_pivot_column_degrades_to_identity_row() {
        // A zero matrix factors to unit pivots: solve returns b unchanged.
        let a = DenseMatrix::zeros(3, 3);
        let lu = LuFactors::factor(&a);
        assert_eq!(lu.solve(&[1.0, -2.0, 3.0]), vec![1.0, -2.0, 3.0]);
        // Empty blocks (a rank owning zero rows) are fine too.
        let empty = LuFactors::factor(&DenseMatrix::zeros(0, 0));
        assert_eq!(empty.dim(), 0);
        empty.solve_into(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_triangular_panics() {
        let r = DenseMatrix::from_rows(&[vec![0.0]]);
        r.solve_upper_triangular(&[1.0], 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn gemv_dimension_mismatch_panics() {
        DenseMatrix::zeros(2, 2).gemv(&[1.0]);
    }
}
