//! Per-rank and job-level statistics.

use serde::{Deserialize, Serialize};

/// Statistics accumulated by one rank (one incarnation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Incarnation number (0 = original process).
    pub incarnation: u64,
    /// Final virtual time of the rank.
    pub virtual_time: f64,
    /// Virtual time attributed to computation.
    pub compute_time: f64,
    /// Virtual time attributed to waiting on communication.
    pub comm_wait_time: f64,
    /// Virtual time attributed to injected noise.
    pub noise_time: f64,
    /// Virtual time attributed to recovery.
    pub recovery_time: f64,
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Bytes sent point-to-point.
    pub bytes_sent: u64,
    /// Collective operations completed (blocking and nonblocking).
    pub collectives: u64,
    /// Number of recovery rendezvous this rank participated in.
    pub recoveries: u64,
    /// Bytes written to the stable store (checkpoints).
    pub checkpoint_bytes: u64,
    /// FLOPs attributed to resilience checks (skeptical invariants, ABFT
    /// verification, redundant residual evaluations). An attribution ledger:
    /// the operations performing the checks charge their own virtual time;
    /// this tracks how much of that arithmetic was resilience overhead.
    pub check_flops: u64,
}

impl RankStats {
    /// Fraction of virtual time spent waiting on communication.
    pub fn comm_fraction(&self) -> f64 {
        if self.virtual_time > 0.0 {
            self.comm_wait_time / self.virtual_time
        } else {
            0.0
        }
    }
}

/// Aggregated statistics for a whole job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    /// Maximum (critical-path) virtual time over all ranks.
    pub makespan: f64,
    /// Mean per-rank virtual time.
    pub mean_virtual_time: f64,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total bytes sent point-to-point.
    pub total_bytes: u64,
    /// Total collective completions across ranks.
    pub total_collectives: u64,
    /// Mean fraction of time spent waiting on communication.
    pub mean_comm_fraction: f64,
    /// Total failures observed.
    pub failures: usize,
    /// Total recovery participations (sum over ranks).
    pub recoveries: u64,
    /// Total FLOPs spent on resilience checks across ranks.
    pub total_check_flops: u64,
}

impl JobStats {
    /// Aggregate per-rank statistics (one entry per surviving incarnation).
    pub fn aggregate(per_rank: &[RankStats], failures: usize) -> Self {
        if per_rank.is_empty() {
            return Self {
                failures,
                ..Self::default()
            };
        }
        let n = per_rank.len() as f64;
        let makespan = per_rank.iter().map(|s| s.virtual_time).fold(0.0, f64::max);
        let mean_virtual_time = per_rank.iter().map(|s| s.virtual_time).sum::<f64>() / n;
        let mean_comm_fraction = per_rank.iter().map(|s| s.comm_fraction()).sum::<f64>() / n;
        Self {
            makespan,
            mean_virtual_time,
            total_messages: per_rank.iter().map(|s| s.messages_sent).sum(),
            total_bytes: per_rank.iter().map(|s| s.bytes_sent).sum(),
            total_collectives: per_rank.iter().map(|s| s.collectives).sum(),
            mean_comm_fraction,
            failures,
            recoveries: per_rank.iter().map(|s| s.recoveries).sum(),
            total_check_flops: per_rank.iter().map(|s| s.check_flops).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rank: usize, vt: f64, wait: f64) -> RankStats {
        RankStats {
            rank,
            virtual_time: vt,
            comm_wait_time: wait,
            messages_sent: 2,
            bytes_sent: 100,
            collectives: 3,
            recoveries: 1,
            ..RankStats::default()
        }
    }

    #[test]
    fn comm_fraction_handles_zero_time() {
        let s = RankStats::default();
        assert_eq!(s.comm_fraction(), 0.0);
        let s = stats(0, 10.0, 2.5);
        assert!((s.comm_fraction() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn aggregate_empty() {
        let j = JobStats::aggregate(&[], 3);
        assert_eq!(j.failures, 3);
        assert_eq!(j.makespan, 0.0);
    }

    #[test]
    fn aggregate_computes_makespan_and_totals() {
        let per = vec![stats(0, 10.0, 1.0), stats(1, 12.0, 6.0), stats(2, 8.0, 0.0)];
        let j = JobStats::aggregate(&per, 1);
        assert!((j.makespan - 12.0).abs() < 1e-15);
        assert!((j.mean_virtual_time - 10.0).abs() < 1e-15);
        assert_eq!(j.total_messages, 6);
        assert_eq!(j.total_bytes, 300);
        assert_eq!(j.total_collectives, 9);
        assert_eq!(j.recoveries, 3);
        assert_eq!(j.failures, 1);
        let expected_frac = (0.1 + 0.5 + 0.0) / 3.0;
        assert!((j.mean_comm_fraction - expected_frac).abs() < 1e-12);
    }
}
