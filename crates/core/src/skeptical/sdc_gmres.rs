//! Skeptical GMRES: GMRES with cheap invariant checks that detect (and
//! optionally recover from) silent data corruption — the algorithm family of
//! §III-A, in the style of Elliott & Hoemmen's bit-flip-resilient GMRES.
//!
//! The checks used, all O(n) or cheaper per iteration:
//!
//! 1. **Finiteness** of every new Krylov vector (catches NaN/Inf-producing
//!    exponent flips immediately).
//! 2. **Norm bound**: for a unit Arnoldi vector `v`, `‖A·v‖ ≤ ‖A‖∞·√n`
//!    (with a safety factor); a high-exponent-bit flip violates this by many
//!    orders of magnitude.
//! 3. **Orthogonality** of the newest basis vector against the previous one
//!    (Gram–Schmidt should make them orthogonal to machine precision).
//! 4. **Residual-consistency** check every `check_interval` iterations: the
//!    recurrence residual estimate is compared against the explicitly
//!    computed true residual; corruption that slipped past the local checks
//!    shows up as a mismatch.
//!
//! On detection the solver either restarts the Arnoldi cycle from the
//! current (still valid) iterate — cheap local recovery — or aborts,
//! according to [`SkepticalResponse`].

use crate::kernel::{run_gmres, GmresFlavor, MgsOrtho, PolicyStack, SerialSpace, SkepticalPolicy};
use crate::solvers::common::{Operator, SolveOptions, SolveOutcome};

/// What to do when a skeptical check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkepticalResponse {
    /// Record the detection and keep iterating (useful to measure pure
    /// detection coverage).
    RecordOnly,
    /// Discard the current Arnoldi cycle and restart from the current
    /// iterate (local rollback — the recommended response).
    Restart,
    /// Stop the solve with
    /// [`StopReason::CorruptionDetected`](crate::solvers::StopReason::CorruptionDetected).
    Abort,
}

/// Configuration of the skeptical checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkepticalConfig {
    /// Enable the per-iteration finiteness / norm-bound / orthogonality
    /// checks.
    pub local_checks: bool,
    /// Recompute the true residual every this many iterations and compare
    /// with the recurrence estimate (0 disables the check).
    pub residual_check_interval: usize,
    /// Allowed overshoot of the true residual relative to the recurrence
    /// estimate: a detection fires when
    /// `true > estimate * (1 + residual_mismatch_tol) + 10·tol`.
    pub residual_mismatch_tol: f64,
    /// Safety factor on the norm bound ‖A·v‖ ≤ factor·‖A‖∞·‖v‖.
    pub norm_bound_factor: f64,
    /// Orthogonality tolerance for the newest basis pair.
    pub orthogonality_tol: f64,
    /// Response on detection.
    pub response: SkepticalResponse,
    /// Fuse the check reductions into the dot strategy's own fused
    /// reduction via the wants-dots negotiation (the policy requests check
    /// pairs, the strategy appends them to the reduction it already posts),
    /// instead of posting up to three extra blocking allreduces per
    /// iteration. Only strategies with a fused reduction negotiate;
    /// immediate-dot (serial) schedules always use the direct checks.
    /// Disable to force the legacy unfused schedule (comparison runs).
    pub fuse_checks: bool,
}

impl Default for SkepticalConfig {
    fn default() -> Self {
        Self {
            local_checks: true,
            residual_check_interval: 10,
            residual_mismatch_tol: 10.0,
            norm_bound_factor: 4.0,
            orthogonality_tol: 1e-8,
            response: SkepticalResponse::Restart,
            fuse_checks: true,
        }
    }
}

impl SkepticalConfig {
    /// A configuration with every check disabled (the "trusting" baseline).
    pub fn trusting() -> Self {
        Self {
            local_checks: false,
            residual_check_interval: 0,
            ..Self::default()
        }
    }

    /// The same checks on the legacy unfused schedule: every distributed
    /// check posts its own blocking allreduce instead of riding the
    /// strategy's fused reduction (comparison experiments).
    pub fn unfused(mut self) -> Self {
        self.fuse_checks = false;
        self
    }
}

/// What the skeptical machinery observed during a solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkepticalReport {
    /// Number of per-iteration local checks executed.
    pub local_checks_run: usize,
    /// Number of residual-consistency checks executed.
    pub residual_checks_run: usize,
    /// Number of detections (any check).
    pub detections: usize,
    /// Number of Arnoldi-cycle restarts triggered by detections.
    pub corrective_restarts: usize,
    /// Extra floating-point work spent on checks (FLOPs).
    pub check_flops: usize,
}

/// GMRES with skeptical checks. Returns the solver outcome plus the
/// skeptical report.
///
/// Preset: unified kernel × [`MgsOrtho`] × a single [`SkepticalPolicy`]
/// over a [`SerialSpace`]. The same policy composes with any other dot
/// strategy — see [`crate::kernel::compose::pipelined_skeptical_gmres`] for
/// the pipelined/distributed combination.
pub fn skeptical_gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    skeptic: &SkepticalConfig,
) -> (SolveOutcome, SkepticalReport) {
    assert_eq!(b.len(), a.dim(), "rhs dimension mismatch");
    let mut space = SerialSpace::new(a);
    let b = b.to_vec();
    let mut policy = SkepticalPolicy::new(*skeptic);
    let mut policies = PolicyStack::new(vec![&mut policy]);
    let (outcome, _report) = run_gmres(
        &mut space,
        &b,
        x0.map(|v| v.to_vec()),
        opts,
        &mut MgsOrtho::new(),
        &mut policies,
        None,
        &GmresFlavor::serial_skeptical(),
    )
    .expect("serial spaces are infallible");
    (outcome.into_solve_outcome(), policy.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeptical::faulty::{FaultTarget, FaultyOperator, InjectionPlan};
    use crate::solvers::common::{true_relative_residual, StopReason};
    use resilient_linalg::poisson2d;

    fn opts() -> SolveOptions {
        SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(600)
            .with_restart(30)
    }

    #[test]
    fn clean_run_matches_plain_gmres_and_costs_little_extra() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let (out, report) = skeptical_gmres(&a, &b, None, &opts(), &SkepticalConfig::default());
        assert!(out.converged());
        assert_eq!(report.detections, 0, "no false positives on a clean run");
        assert!(report.local_checks_run > 0);
        // Check overhead is a small fraction of the solver's arithmetic.
        assert!(
            (report.check_flops as f64) < 0.35 * out.flops as f64,
            "check flops {} vs solver flops {}",
            report.check_flops,
            out.flops
        );
    }

    #[test]
    fn severe_bit_flip_is_detected_and_survived() {
        let a = poisson2d(10, 10);
        let n = a.nrows();
        let b = vec![1.0; n];
        // Flip a high exponent bit in the SpMV output of the 7th application.
        let plan = InjectionPlan {
            at_application: 7,
            target: FaultTarget::Element(n / 2),
            bit: Some(62),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 3);
        let (out, report) =
            skeptical_gmres(&faulty, &b, None, &opts(), &SkepticalConfig::default());
        assert!(
            faulty.injection().is_some(),
            "the fault must actually have been injected"
        );
        assert!(report.detections >= 1, "the severe flip must be detected");
        assert!(
            out.converged(),
            "the solver must still converge after recovery"
        );
        assert!(
            true_relative_residual(&a, &b, &out.x) < 1e-8,
            "the returned solution must be correct w.r.t. the clean operator"
        );
    }

    #[test]
    fn trusting_solver_is_hurt_by_the_same_flip() {
        let a = poisson2d(10, 10);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 7,
            target: FaultTarget::Element(n / 2),
            bit: Some(62),
        };
        let skeptical_faulty = FaultyOperator::new(&a, Some(plan), 3);
        let trusting_faulty = FaultyOperator::new(&a, Some(plan), 3);
        let (skeptical_out, _) = skeptical_gmres(
            &skeptical_faulty,
            &b,
            None,
            &opts(),
            &SkepticalConfig::default(),
        );
        let (trusting_out, trusting_report) = skeptical_gmres(
            &trusting_faulty,
            &b,
            None,
            &opts(),
            &SkepticalConfig::trusting(),
        );
        assert_eq!(trusting_report.detections, 0);
        // The trusting run either needs (strictly) more iterations or ends
        // further from the truth; the skeptical run converges cleanly.
        let skeptical_err = true_relative_residual(&a, &b, &skeptical_out.x);
        let trusting_err = true_relative_residual(&a, &b, &trusting_out.x);
        assert!(skeptical_out.converged());
        assert!(
            trusting_out.iterations > skeptical_out.iterations
                || !trusting_err.is_finite()
                || trusting_err > skeptical_err,
            "trusting: iters={} err={trusting_err}, skeptical: iters={} err={skeptical_err}",
            trusting_out.iterations,
            skeptical_out.iterations,
        );
    }

    #[test]
    fn abort_response_stops_early() {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 3,
            target: FaultTarget::Element(0),
            bit: Some(63),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 5);
        let cfg = SkepticalConfig {
            response: SkepticalResponse::Abort,
            ..SkepticalConfig::default()
        };
        let (out, report) = skeptical_gmres(&faulty, &b, None, &opts(), &cfg);
        if report.detections > 0 {
            assert_eq!(out.reason, StopReason::CorruptionDetected);
        }
    }

    #[test]
    fn low_mantissa_flip_is_harmless_even_if_undetected() {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 5,
            target: FaultTarget::Element(1),
            bit: Some(0),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 5);
        let (out, _report) =
            skeptical_gmres(&faulty, &b, None, &opts(), &SkepticalConfig::default());
        assert!(
            out.converged(),
            "a last-mantissa-bit flip must not prevent convergence"
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }
}
