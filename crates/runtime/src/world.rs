//! The shared state of one simulated job ("world").

use std::sync::Arc;

use parking_lot::Mutex;

use crate::config::RuntimeConfig;
use crate::engine::CollectiveEngine;
use crate::health::HealthBoard;
use crate::mailbox::Mailbox;
use crate::persistent::{PersistentStore, StableStore};
use crate::stats::RankStats;

/// Shared, reference-counted state of a running job. One `World` is created
/// per [`Runtime::run`](crate::launcher::Runtime::run) invocation and shared
/// by every rank thread (original and replacement incarnations).
pub struct World {
    /// Job configuration.
    pub config: RuntimeConfig,
    /// Number of ranks.
    pub size: usize,
    /// One mailbox per rank.
    pub mailboxes: Vec<Mailbox>,
    /// Collective rendezvous engine.
    pub engine: CollectiveEngine,
    /// Failure/health board.
    pub health: HealthBoard,
    /// Per-rank persistent store (survives rank failure, not job abort).
    pub persistent: PersistentStore,
    /// Job-global stable store (survives job aborts; shared across restarts
    /// by the checkpoint/restart driver).
    pub stable: StableStore,
    /// Statistics of incarnations that terminated by failure (their threads
    /// cannot return stats through the normal path).
    pub lost_stats: Mutex<Vec<RankStats>>,
}

impl World {
    /// Create the shared state for a job of `size` ranks.
    pub fn new(config: RuntimeConfig, size: usize, stable: StableStore) -> Arc<Self> {
        let policy = config.failures.policy;
        Arc::new(Self {
            size,
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            engine: CollectiveEngine::new(),
            health: HealthBoard::new(size, policy),
            persistent: PersistentStore::new(size),
            stable,
            lost_stats: Mutex::new(Vec::new()),
            config,
        })
    }

    /// Wake every blocked receiver and collective waiter so they observe a
    /// failure or abort promptly.
    pub fn interrupt_all(&self) {
        for mb in &self.mailboxes {
            mb.interrupt();
        }
        self.engine.interrupt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FailureConfig, FailurePolicy};

    #[test]
    fn world_construction() {
        let cfg = RuntimeConfig::fast()
            .with_failures(FailureConfig::scheduled(FailurePolicy::ReplaceRank, vec![]));
        let w = World::new(cfg, 4, StableStore::new());
        assert_eq!(w.size, 4);
        assert_eq!(w.mailboxes.len(), 4);
        assert_eq!(w.persistent.size(), 4);
        assert_eq!(w.health.policy(), FailurePolicy::ReplaceRank);
        assert_eq!(w.health.alive_ranks().len(), 4);
    }

    #[test]
    fn interrupt_all_is_safe_when_idle() {
        let w = World::new(RuntimeConfig::fast(), 2, StableStore::new());
        w.interrupt_all();
    }
}
