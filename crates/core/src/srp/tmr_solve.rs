//! TMR-protected kernels: the "even TMR can win" ablation of §II-D (E7).
//!
//! Executes an unreliable kernel three times and majority-votes the result.
//! Compared against (a) executing once reliably at the reliable cost factor
//! and (b) executing once unreliably and hoping — the experiment sweeps the
//! fault rate to find where each strategy is cheapest *per correct answer*.

use resilient_faults::memory::{Reliability, ReliabilityModel};
use resilient_faults::tmr::{tmr_vote_vectors, TmrStats};

use super::reliability::{SrpCostLedger, UnreliableOperator};
use crate::solvers::common::Operator;

/// Result of one TMR-protected operator application.
#[derive(Debug, Clone)]
pub struct TmrApplyResult {
    /// The voted output (None if all three replicas disagreed).
    pub value: Option<Vec<f64>>,
    /// Cost ledger for the three unreliable applications.
    pub ledger: SrpCostLedger,
}

/// Apply `op` (an unreliable operator) to `x` three times and vote.
pub fn tmr_apply<O: Operator + ?Sized>(
    op: &UnreliableOperator<'_, O>,
    x: &[f64],
    rel_tol: f64,
    stats: &mut TmrStats,
) -> TmrApplyResult {
    let a = op.apply(x);
    let b = op.apply(x);
    let c = op.apply(x);
    let mut ledger = SrpCostLedger::default();
    ledger.charge(Reliability::Unreliable, 3 * op.flops_per_apply());
    let voted = tmr_vote_vectors(&a, &b, &c, rel_tol);
    // Record the outcome in TMR statistics terms.
    let outcome = match &voted {
        Some(v) => {
            let close = |p: &[f64], q: &[f64]| {
                p.iter().zip(q).all(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel_tol * scale
                })
            };
            let unanimous = close(&a, &b) && close(&a, &c);
            resilient_faults::tmr::TmrOutcome::Agreed {
                value: v.clone(),
                masked_error: !unanimous,
            }
        }
        None => resilient_faults::tmr::TmrOutcome::NoMajority {
            replicas: [a.clone(), b.clone(), c.clone()],
        },
    };
    stats.record(&outcome);
    TmrApplyResult {
        value: voted,
        ledger,
    }
}

/// Cost (in unreliable-FLOP equivalents) per *correct* SpMV under three
/// strategies, at the given per-element fault rate. Used by experiment E7.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TmrCostComparison {
    /// Single unreliable execution, re-done until a reference check passes.
    pub unreliable_retry_cost: f64,
    /// TMR execution (with retries when the vote fails).
    pub tmr_cost: f64,
    /// Single reliable execution.
    pub reliable_cost: f64,
    /// Fraction of single unreliable executions that were correct.
    pub unreliable_success_rate: f64,
    /// Fraction of TMR votes that succeeded.
    pub tmr_success_rate: f64,
}

/// Run the three strategies `trials` times against a clean reference and
/// report cost per correct answer.
pub fn compare_tmr_strategies<O: Operator + ?Sized>(
    a: &O,
    x: &[f64],
    fault_rate: f64,
    model: &ReliabilityModel,
    trials: usize,
    seed: u64,
) -> TmrCostComparison {
    let reference = a.apply(x);
    let flops = a.flops_per_apply() as f64;
    let close = |p: &[f64]| {
        p.iter().zip(&reference).all(|(u, v)| {
            let scale = u.abs().max(v.abs()).max(1.0);
            (u - v).abs() <= 1e-9 * scale
        })
    };

    let unreliable = UnreliableOperator::new(a, fault_rate, seed);
    let mut single_successes = 0usize;
    for _ in 0..trials {
        if close(&unreliable.apply(x)) {
            single_successes += 1;
        }
    }
    let single_rate = single_successes as f64 / trials.max(1) as f64;
    // Expected executions until success = 1 / p (geometric); infinite cost if
    // the success rate is zero.
    let unreliable_retry_cost = if single_rate > 0.0 {
        flops / single_rate
    } else {
        f64::INFINITY
    };

    let tmr_op = UnreliableOperator::new(a, fault_rate, seed ^ 0x5555);
    let mut tmr_stats = TmrStats::default();
    let mut tmr_correct = 0usize;
    for _ in 0..trials {
        let r = tmr_apply(&tmr_op, x, 1e-12, &mut tmr_stats);
        if let Some(v) = r.value {
            if close(&v) {
                tmr_correct += 1;
            }
        }
    }
    let tmr_rate = tmr_correct as f64 / trials.max(1) as f64;
    let tmr_cost = if tmr_rate > 0.0 {
        3.0 * flops / tmr_rate
    } else {
        f64::INFINITY
    };

    TmrCostComparison {
        unreliable_retry_cost,
        tmr_cost,
        reliable_cost: flops * model.reliable_cost_factor,
        unreliable_success_rate: single_rate,
        tmr_success_rate: tmr_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson2d;

    #[test]
    fn tmr_apply_masks_single_replica_errors() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        // Moderate rate: most triples have at most one corrupted replica.
        let op = UnreliableOperator::new(&a, 0.002, 1);
        let x = vec![1.0; n];
        let clean = a.spmv(&x);
        let mut stats = TmrStats::default();
        let mut correct = 0;
        for _ in 0..50 {
            if let Some(v) = tmr_apply(&op, &x, 1e-12, &mut stats).value {
                if v.iter().zip(&clean).all(|(a, b)| (a - b).abs() < 1e-9) {
                    correct += 1;
                }
            }
        }
        assert_eq!(stats.executions, 50);
        assert!(
            correct >= 45,
            "TMR should produce the correct answer almost always: {correct}"
        );
    }

    #[test]
    fn zero_fault_rate_is_always_unanimous() {
        let a = poisson2d(4, 4);
        let op = UnreliableOperator::new(&a, 0.0, 2);
        let x = vec![1.0; a.nrows()];
        let mut stats = TmrStats::default();
        let r = tmr_apply(&op, &x, 1e-12, &mut stats);
        assert_eq!(r.value.unwrap(), a.spmv(&x));
        assert_eq!(stats.unanimous, 1);
        assert_eq!(r.ledger.unreliable_flops, 3 * a.spmv_flops());
    }

    #[test]
    fn strategy_comparison_orders_sensibly() {
        let a = poisson2d(6, 6);
        let x = vec![1.0; a.nrows()];
        let model = ReliabilityModel {
            reliable_cost_factor: 3.0,
            ..ReliabilityModel::default()
        };
        // At zero fault rate, a single unreliable execution is the cheapest.
        let at_zero = compare_tmr_strategies(&a, &x, 0.0, &model, 20, 1);
        assert_eq!(at_zero.unreliable_success_rate, 1.0);
        assert!(at_zero.unreliable_retry_cost < at_zero.tmr_cost);
        assert!(at_zero.unreliable_retry_cost < at_zero.reliable_cost);
        // At a high fault rate, the single unreliable execution almost never
        // succeeds, so its retry cost blows past TMR's.
        let at_high = compare_tmr_strategies(&a, &x, 0.15, &model, 40, 2);
        assert!(at_high.unreliable_success_rate < 0.5);
        assert!(
            at_high.unreliable_retry_cost > at_high.reliable_cost,
            "retrying unprotected work must become more expensive than reliable execution"
        );
    }
}
