//! Error types for the simulated runtime.
//!
//! The error vocabulary deliberately mirrors the failure classes the ULFM
//! proposal exposes to applications: a *process failure* notice
//! ([`RuntimeError::ProcFailed`]), a *revoked communicator*
//! ([`RuntimeError::Revoked`]), and ordinary usage errors.

use std::fmt;

/// Result alias used across the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors surfaced by communication and recovery operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A peer process (rank) has failed. Communication involving it cannot
    /// complete. Carries the rank that was observed to have failed and the
    /// failure generation in which it was detected.
    ProcFailed {
        /// Rank observed to have failed.
        rank: usize,
        /// Failure generation (monotonically increasing per job).
        generation: u64,
    },
    /// The communicator has been revoked (ULFM `MPI_Comm_revoke` semantics):
    /// all pending and future operations on it fail until the application
    /// rebuilds a communicator via [`shrink`](crate::comm::Comm::shrink) or a
    /// recovery rendezvous.
    Revoked {
        /// Failure generation that triggered the revocation.
        generation: u64,
    },
    /// The calling rank itself has been scheduled to fail at this point.
    /// Application drivers usually never observe this variant: the rank
    /// thread is terminated by the runtime. It exists so that unit tests can
    /// exercise the failure path without killing threads.
    SelfFailed {
        /// Rank of the calling process.
        rank: usize,
    },
    /// A message with an unexpected payload type was received.
    TypeMismatch {
        /// What the receiver asked for.
        expected: &'static str,
        /// What was actually in the envelope.
        found: &'static str,
    },
    /// Rank index out of range for the communicator.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// Mismatched collective payload lengths across ranks.
    CollectiveMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The requested persistent-store key does not exist.
    MissingPersistentKey {
        /// Owning rank.
        rank: usize,
        /// Key that was requested.
        key: String,
    },
    /// The job was aborted (checkpoint/restart policy) and must be restarted
    /// from the last checkpoint by the launcher.
    JobAborted {
        /// Failure generation that caused the abort.
        generation: u64,
    },
    /// Too many restarts / replacements were attempted.
    RetryLimitExceeded {
        /// Number of attempts made.
        attempts: usize,
    },
    /// Generic invalid-argument error.
    InvalidArgument(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ProcFailed { rank, generation } => {
                write!(f, "process failure: rank {rank} (generation {generation})")
            }
            RuntimeError::Revoked { generation } => {
                write!(f, "communicator revoked (generation {generation})")
            }
            RuntimeError::SelfFailed { rank } => write!(f, "rank {rank} scheduled to fail here"),
            RuntimeError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "payload type mismatch: expected {expected}, found {found}"
                )
            }
            RuntimeError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            RuntimeError::CollectiveMismatch { detail } => {
                write!(f, "collective call mismatch: {detail}")
            }
            RuntimeError::MissingPersistentKey { rank, key } => {
                write!(f, "persistent store: rank {rank} has no key '{key}'")
            }
            RuntimeError::JobAborted { generation } => {
                write!(f, "job aborted by failure (generation {generation})")
            }
            RuntimeError::RetryLimitExceeded { attempts } => {
                write!(f, "retry limit exceeded after {attempts} attempts")
            }
            RuntimeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeError {
    /// True if the error indicates a peer (or self) process failure or a
    /// revoked communicator, i.e. the class of errors a resilient
    /// application is expected to *handle* rather than propagate.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            RuntimeError::ProcFailed { .. }
                | RuntimeError::Revoked { .. }
                | RuntimeError::SelfFailed { .. }
                | RuntimeError::JobAborted { .. }
        )
    }

    /// The failure generation attached to the error, if any.
    pub fn generation(&self) -> Option<u64> {
        match self {
            RuntimeError::ProcFailed { generation, .. }
            | RuntimeError::Revoked { generation }
            | RuntimeError::JobAborted { generation } => Some(*generation),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_rank() {
        let e = RuntimeError::ProcFailed {
            rank: 3,
            generation: 2,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("generation 2"));
    }

    #[test]
    fn failure_classification() {
        assert!(RuntimeError::ProcFailed {
            rank: 0,
            generation: 1
        }
        .is_failure());
        assert!(RuntimeError::Revoked { generation: 1 }.is_failure());
        assert!(RuntimeError::JobAborted { generation: 1 }.is_failure());
        assert!(!RuntimeError::InvalidArgument("x".into()).is_failure());
        assert!(!RuntimeError::TypeMismatch {
            expected: "f64",
            found: "u64"
        }
        .is_failure());
    }

    #[test]
    fn generation_extraction() {
        assert_eq!(
            RuntimeError::Revoked { generation: 7 }.generation(),
            Some(7)
        );
        assert_eq!(RuntimeError::InvalidArgument("x".into()).generation(), None);
    }
}
