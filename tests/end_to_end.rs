//! Cross-crate integration tests: each exercises one of the paper's
//! programming models end-to-end through the public API of the suite.

use resilience::lflr::{run_cpr, run_lflr, CprConfig};
use resilience::prelude::*;
use resilient_linalg::{poisson2d, CsrMatrix};
use resilient_pde::{ExplicitHeat, HeatProblem};
use resilient_runtime::{
    FailureConfig, FailurePolicy, LatencyModel, NoiseConfig, ReduceOp, Runtime, RuntimeConfig,
};
use std::sync::Arc;

/// SkP end-to-end: sweep every bit class through the skeptical GMRES and
/// check that no harmful corruption survives undetected *and uncorrected*.
#[test]
fn skeptical_gmres_never_returns_a_silently_wrong_answer() {
    let a = poisson2d(12, 12);
    let b = vec![1.0; a.nrows()];
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(600)
        .with_restart(30);
    for bit in [0u32, 20, 45, 55, 60, 63] {
        for trial in 0..3u64 {
            let plan = InjectionPlan {
                at_application: 2 + trial as usize * 7,
                target: FaultTarget::RandomElement,
                bit: Some(bit),
            };
            let faulty = FaultyOperator::new(&a, Some(plan), 90 + bit as u64 * 10 + trial);
            let (out, _report) =
                skeptical_gmres(&faulty, &b, None, &opts, &SkepticalConfig::default());
            let err = true_relative_residual(&a, &b, &out.x);
            // The contract: if the solver *claims* convergence, the answer is
            // actually right (verified against the clean operator).
            if out.converged() {
                assert!(
                    err < 1e-6,
                    "bit {bit}, trial {trial}: claimed convergence but err={err}"
                );
            }
        }
    }
}

/// SRP end-to-end: FT-GMRES keeps converging at fault rates where the
/// all-unreliable baseline degrades, while doing most raw work unreliably.
#[test]
fn ft_gmres_beats_unreliable_baseline_at_high_fault_rate() {
    let a = poisson2d(10, 10);
    let b = vec![1.0; a.nrows()];
    let rate = 5e-3;
    let cfg = FtGmresConfig {
        outer: SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(80)
            .with_restart(40),
        fault_rate: rate,
        ..FtGmresConfig::default()
    };
    let (ft_out, ft_report) = ft_gmres(&a, &b, &cfg);
    assert!(ft_report.corruptions > 0);
    assert!(ft_out.converged());
    assert!(true_relative_residual(&a, &b, &ft_out.x) < 1e-6);
    assert!(ft_report.ledger.reliable_fraction() < 0.6);

    let (un_out, _, _) = unreliable_gmres(
        &a,
        &b,
        &SolveOptions::default()
            .with_tol(1e-8)
            .with_max_iters(400)
            .with_restart(40),
        rate,
        1,
    );
    let un_err = true_relative_residual(&a, &b, &un_out.x);
    assert!(
        !un_err.is_finite() || un_err > 1e-8 || un_out.iterations > ft_out.iterations,
        "the unprotected solver should not beat FT-GMRES here"
    );
}

/// RBSP end-to-end: on a machine with slow collectives and noise, the
/// pipelined solvers win in virtual time and produce the same solution.
#[test]
fn pipelined_solvers_hide_latency_and_match_solutions() {
    let mut cfg = RuntimeConfig::fast().with_seed(17);
    cfg.latency = LatencyModel {
        alpha: 3.0e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    cfg.noise = NoiseConfig::exponential(500.0, 5.0e-5);
    let rt = Runtime::new(cfg);
    let rows = rt
        .run(8, move |comm| {
            let a = poisson2d(14, 14);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| (i % 4) as f64 + 1.0);
            let opts = DistSolveOptions::default()
                .with_tol(1e-7)
                .with_max_iters(250);
            let t0 = comm.now();
            let classic = dist_cg(comm, &da, &b, &opts)?;
            let t1 = comm.now();
            let pipelined = pipelined_cg(comm, &da, &b, &opts)?;
            let t2 = comm.now();
            Ok((
                t1 - t0,
                t2 - t1,
                classic.x.gather_global(comm)?,
                pipelined.x.gather_global(comm)?,
                classic.converged && pipelined.converged,
            ))
        })
        .unwrap_all();
    let a = poisson2d(14, 14);
    let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 4) as f64 + 1.0).collect();
    for (classic_t, pipelined_t, cx, px, converged) in rows {
        assert!(converged);
        assert!(
            pipelined_t < classic_t,
            "pipelined {pipelined_t} vs classic {classic_t}"
        );
        assert!(true_relative_residual(&a, &b, &cx) < 1e-6);
        assert!(true_relative_residual(&a, &b, &px) < 1e-6);
    }
}

/// LFLR end-to-end: the heat equation survives two injected rank failures
/// and still reproduces the failure-free solution bit-for-bit (the stencil
/// arithmetic is deterministic), while CPR needs a full restart.
#[test]
fn heat_equation_survives_failures_under_lflr_and_cpr() {
    let steps = 30;
    let app = ExplicitHeat {
        problem: HeatProblem::stable(64, 1.0),
        steps,
        persist_interval: 3,
        work_per_step: 0.02,
    };
    let serial = HeatProblem::stable(64, 1.0).run_explicit(steps);

    let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
        FailurePolicy::ReplaceRank,
        vec![(0, 0.15), (3, 0.41)],
    ));
    let rt = Runtime::new(cfg);
    let app_clone = app.clone();
    let job = rt.run(4, move |comm| {
        let (report, field) = run_lflr(comm, &app_clone)?;
        Ok((report, app_clone.gather(comm, &field)?))
    });
    assert!(job.all_ok(), "{:?}", job.errors);
    assert_eq!(job.failures.len(), 2);
    for (report, field) in job.unwrap_all() {
        assert_eq!(report.steps_completed, steps);
        for (a, b) in field.iter().zip(&serial) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    let cpr_cfg = RuntimeConfig::fast().with_failures(FailureConfig {
        enabled: true,
        policy: FailurePolicy::AbortJob,
        mtbf_per_rank: f64::INFINITY,
        scheduled: vec![(1, 0.2)],
        max_failures: 1,
    });
    let report = run_cpr(
        &cpr_cfg,
        4,
        Arc::new(app),
        &CprConfig {
            checkpoint_interval: 3,
            max_restarts: 5,
        },
    );
    assert!(report.completed);
    assert_eq!(report.attempts, 2);
    assert!(report.steps_reexecuted > 0);
}

/// The runtime's collectives agree with serial reductions for assorted
/// sizes and operators (a cross-crate sanity net under the solvers).
#[test]
fn collectives_match_serial_reductions() {
    let rt = Runtime::new(RuntimeConfig::fast());
    for ranks in [1usize, 2, 5, 9] {
        let sums = rt
            .run(ranks, move |comm| {
                let mine = vec![comm.rank() as f64 + 1.0, (comm.rank() * comm.rank()) as f64];
                let sum = comm.allreduce(ReduceOp::Sum, &mine)?;
                let max = comm.allreduce(ReduceOp::Max, &mine)?;
                Ok((sum, max))
            })
            .unwrap_all();
        let expected_sum: f64 = (1..=ranks).map(|r| r as f64).sum();
        let expected_sq: f64 = (0..ranks).map(|r| (r * r) as f64).sum();
        for (sum, max) in sums {
            assert_eq!(sum, vec![expected_sum, expected_sq]);
            assert_eq!(max[0], ranks as f64);
        }
    }
}

/// Distributed SpMV equals serial SpMV for a non-symmetric matrix and an
/// uneven rank count (cross-crate: linalg + runtime + core).
#[test]
fn distributed_spmv_matches_serial_for_nonsymmetric_matrix() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let a: CsrMatrix = resilient_linalg::diag_dominant_random(53, 4, &mut rng);
    let x: Vec<f64> = (0..53).map(|i| (i as f64 * 0.21).sin()).collect();
    let expected = a.spmv(&x);
    let rt = Runtime::new(RuntimeConfig::fast());
    let a2 = a.clone();
    let x2 = x.clone();
    let rows = rt
        .run(3, move |comm| {
            let da = DistCsr::from_global(comm, &a2)?;
            let dx = DistVector::from_global(comm, &x2);
            let y = da.apply(comm, &dx)?;
            y.gather_global(comm)
        })
        .unwrap_all();
    for got in rows {
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12);
        }
    }
}
