//! E2 bench: overhead of ABFT checksummed kernels vs. unprotected ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience::skeptical::encode_spmv;
use resilient_linalg::{checksummed_gemm, poisson2d, DenseMatrix};
use std::time::Duration;

fn bench_abft(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let mut group = c.benchmark_group("abft_gemm");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &[64usize, 96] {
        let a = DenseMatrix::random(n, n, &mut rng);
        let b_m = DenseMatrix::random(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(a.gemm(&b_m)))
        });
        group.bench_with_input(BenchmarkId::new("checksummed", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(checksummed_gemm(&a, &b_m)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("abft_spmv");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    let m = poisson2d(48, 48);
    let enc = encode_spmv(&m);
    let x = vec![1.0; m.nrows()];
    group.bench_function("plain", |b| b.iter(|| std::hint::black_box(m.spmv(&x))));
    group.bench_function("checksummed", |b| {
        b.iter(|| std::hint::black_box(enc.spmv_checked(&x, 1e-12)))
    });
    group.finish();
}

criterion_group!(benches, bench_abft);
criterion_main!(benches);
