//! Selective-reliability primitives: unreliable operators and the two-tier
//! cost accounting used to compare SRP algorithms against fully reliable and
//! fully unreliable baselines (§II-D).

use std::cell::RefCell;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilient_faults::bitflip::flip_random_bit_f64;
use resilient_faults::memory::{Reliability, ReliabilityModel};

use crate::solvers::common::Operator;

/// Tracks how much work was executed in each reliability class and converts
/// it to a cost-weighted total.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SrpCostLedger {
    /// FLOPs executed in unreliable (cheap) mode.
    pub unreliable_flops: usize,
    /// FLOPs executed in reliable (expensive) mode.
    pub reliable_flops: usize,
}

impl SrpCostLedger {
    /// Charge `flops` to the given reliability class.
    pub fn charge(&mut self, class: Reliability, flops: usize) {
        match class {
            Reliability::Unreliable => self.unreliable_flops += flops,
            Reliability::Reliable => self.reliable_flops += flops,
        }
    }

    /// Total cost in unreliable-FLOP equivalents under the given model.
    pub fn weighted_cost(&self, model: &ReliabilityModel) -> f64 {
        self.unreliable_flops as f64 + self.reliable_flops as f64 * model.reliable_cost_factor
    }

    /// Fraction of raw FLOPs executed in reliable mode.
    pub fn reliable_fraction(&self) -> f64 {
        let total = self.unreliable_flops + self.reliable_flops;
        if total == 0 {
            0.0
        } else {
            self.reliable_flops as f64 / total as f64
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &SrpCostLedger) {
        self.unreliable_flops += other.unreliable_flops;
        self.reliable_flops += other.reliable_flops;
    }
}

/// An operator whose applications run "in unreliable mode": every output
/// element is independently corrupted (one random bit flip) with the
/// configured probability. The corruption rate is expressed *per element per
/// application*, which maps directly onto a per-FLOP soft-error rate.
pub struct UnreliableOperator<'a, O: Operator + ?Sized> {
    inner: &'a O,
    /// Per-element corruption probability.
    rate: f64,
    rng: RefCell<ChaCha8Rng>,
    corruptions: RefCell<u64>,
    applications: RefCell<u64>,
}

impl<'a, O: Operator + ?Sized> UnreliableOperator<'a, O> {
    /// Wrap `inner` with a per-element corruption probability `rate`.
    pub fn new(inner: &'a O, rate: f64, seed: u64) -> Self {
        Self {
            inner,
            rate,
            rng: RefCell::new(ChaCha8Rng::seed_from_u64(seed)),
            corruptions: RefCell::new(0),
            applications: RefCell::new(0),
        }
    }

    /// Number of corrupted elements produced so far.
    pub fn corruptions(&self) -> u64 {
        *self.corruptions.borrow()
    }

    /// Number of operator applications so far.
    pub fn applications(&self) -> u64 {
        *self.applications.borrow()
    }

    /// The configured per-element corruption probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl<'a, O: Operator + ?Sized> Operator for UnreliableOperator<'a, O> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply(x);
        *self.applications.borrow_mut() += 1;
        if self.rate > 0.0 {
            let mut rng = self.rng.borrow_mut();
            let mut corrupted = 0u64;
            for v in y.iter_mut() {
                if rng.gen::<f64>() < self.rate {
                    *v = flip_random_bit_f64(*v, &mut rng).0;
                    corrupted += 1;
                }
            }
            *self.corruptions.borrow_mut() += corrupted;
        }
        y
    }

    fn flops_per_apply(&self) -> usize {
        self.inner.flops_per_apply()
    }

    fn norm_estimate(&self) -> f64 {
        self.inner.norm_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson1d;

    #[test]
    fn ledger_accounting() {
        let mut ledger = SrpCostLedger::default();
        ledger.charge(Reliability::Unreliable, 100);
        ledger.charge(Reliability::Reliable, 10);
        let model = ReliabilityModel {
            reliable_cost_factor: 3.0,
            ..ReliabilityModel::default()
        };
        assert_eq!(ledger.weighted_cost(&model), 130.0);
        assert!((ledger.reliable_fraction() - 10.0 / 110.0).abs() < 1e-12);
        let mut other = SrpCostLedger::default();
        other.charge(Reliability::Reliable, 5);
        ledger.merge(&other);
        assert_eq!(ledger.reliable_flops, 15);
        assert_eq!(SrpCostLedger::default().reliable_fraction(), 0.0);
    }

    #[test]
    fn zero_rate_operator_is_clean() {
        let a = poisson1d(10);
        let u = UnreliableOperator::new(&a, 0.0, 1);
        let x = vec![1.0; 10];
        assert_eq!(u.apply(&x), a.spmv(&x));
        assert_eq!(u.corruptions(), 0);
        assert_eq!(u.applications(), 1);
        assert_eq!(u.dim(), 10);
        assert_eq!(Operator::norm_estimate(&u), Operator::norm_estimate(&a));
    }

    #[test]
    fn corruption_rate_is_approximately_respected() {
        let a = poisson1d(100);
        let u = UnreliableOperator::new(&a, 0.05, 7);
        let x = vec![1.0; 100];
        for _ in 0..200 {
            let _ = u.apply(&x);
        }
        // Expected corruptions ≈ 200 applications * 100 elements * 0.05 = 1000.
        let c = u.corruptions();
        assert!((600..1500).contains(&(c as usize)), "corruptions = {c}");
        assert_eq!(u.applications(), 200);
        assert_eq!(u.rate(), 0.05);
    }

    #[test]
    fn determinism_per_seed() {
        let a = poisson1d(20);
        let run = |seed| {
            let u = UnreliableOperator::new(&a, 0.5, seed);
            u.apply(&[1.0; 20])
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
