//! E6 bench: FT-GMRES vs plain GMRES (fault-free overhead of the inner-outer
//! structure, and behaviour under a moderate fault rate).

use criterion::{criterion_group, criterion_main, Criterion};
use resilience::prelude::*;
use resilient_linalg::poisson2d;
use std::time::Duration;

fn bench_ftgmres(c: &mut Criterion) {
    let a = poisson2d(12, 12);
    let b = vec![1.0; a.nrows()];
    let mut group = c.benchmark_group("ftgmres");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    group.bench_function("plain_gmres", |bch| {
        bch.iter(|| {
            std::hint::black_box(gmres(
                &a,
                &b,
                None,
                &SolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(400)
                    .with_restart(30),
            ))
        })
    });
    for &rate in &[0.0, 1e-4] {
        group.bench_function(format!("ft_gmres_rate_{rate:e}"), |bch| {
            bch.iter(|| {
                let cfg = FtGmresConfig {
                    outer: SolveOptions::default()
                        .with_tol(1e-8)
                        .with_max_iters(40)
                        .with_restart(20),
                    fault_rate: rate,
                    ..FtGmresConfig::default()
                };
                std::hint::black_box(ft_gmres(&a, &b, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ftgmres);
criterion_main!(benches);
