//! Property-based tests for the fault models.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilient_faults::bitflip::{classify_flip, flip_bit_f64, FlipSeverity};
use resilient_faults::memory::{ReliabilityModel, UnreliableRegion};
use resilient_faults::process::{FaultClock, FaultProcess};
use resilient_faults::tmr::tmr_vote_vectors;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping the same bit twice restores the original bit pattern, and
    /// flipping any bit of a finite value never yields the same bits.
    #[test]
    fn bitflip_is_an_involution(v in prop::num::f64::NORMAL, bit in 0u32..64) {
        let once = flip_bit_f64(v, bit);
        let twice = flip_bit_f64(once, bit);
        prop_assert_eq!(twice.to_bits(), v.to_bits());
        prop_assert_ne!(once.to_bits(), v.to_bits());
    }

    /// Severity classification is consistent: NaN/Inf outputs are NonFinite,
    /// identical values are NoChange, and everything else reports a severity
    /// that matches the relative error ordering.
    #[test]
    fn flip_severity_is_consistent(v in prop::num::f64::NORMAL, bit in 0u32..64) {
        let flipped = flip_bit_f64(v, bit);
        match classify_flip(v, flipped) {
            FlipSeverity::NonFinite => prop_assert!(!flipped.is_finite()),
            FlipSeverity::NoChange => prop_assert_eq!(flipped, v),
            FlipSeverity::Negligible => {
                prop_assert!(((flipped - v) / v).abs() < 1e-12 || v == 0.0)
            }
            FlipSeverity::Moderate => {
                let rel = ((flipped - v) / v).abs();
                prop_assert!((1e-13..1e-1).contains(&rel));
            }
            FlipSeverity::Severe => {
                prop_assert!(((flipped - v) / v).abs() >= 1e-3);
            }
        }
    }

    /// A TMR vote with at most one corrupted replica always returns the
    /// majority value.
    #[test]
    fn tmr_masks_any_single_corruption(
        clean in prop::collection::vec(-1e3f64..1e3, 1..12),
        corrupt_idx in 0usize..12,
        which_replica in 0usize..3,
        delta in 1.0f64..1e6,
    ) {
        let mut corrupted = clean.clone();
        let idx = corrupt_idx % clean.len();
        corrupted[idx] += delta;
        let replicas = [
            if which_replica == 0 { corrupted.clone() } else { clean.clone() },
            if which_replica == 1 { corrupted.clone() } else { clean.clone() },
            if which_replica == 2 { corrupted.clone() } else { clean.clone() },
        ];
        let voted = tmr_vote_vectors(&replicas[0], &replicas[1], &replicas[2], 1e-9).unwrap();
        for (v, c) in voted.iter().zip(&clean) {
            prop_assert!((v - c).abs() <= 1e-9 * c.abs().max(1.0));
        }
    }

    /// The deterministic fault process fires exactly once per scheduled time
    /// no matter how the exposure is chopped into intervals.
    #[test]
    fn deterministic_schedule_fires_once_regardless_of_stepping(
        times in prop::collection::vec(0.01f64..10.0, 1..8),
        chunks in 1usize..20,
    ) {
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut clock = FaultClock::new(FaultProcess::At { times: sorted.clone() }, &mut rng);
        let total_exposure = 11.0;
        let mut strikes = 0;
        for _ in 0..chunks {
            strikes += clock.advance(total_exposure / chunks as f64, &mut rng);
        }
        strikes += clock.advance(1.0, &mut rng);
        prop_assert_eq!(strikes as usize, sorted.len());
    }

    /// Reads from an unreliable region never modify the stored data, and a
    /// zero-rate region is always faithful.
    #[test]
    fn unreliable_region_reads_do_not_mutate_storage(
        data in prop::collection::vec(-1e6f64..1e6, 1..32),
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut region =
            UnreliableRegion::new(data.clone(), ReliabilityModel::with_read_rate(rate));
        for i in 0..data.len() {
            let _ = region.read(i, &mut rng);
        }
        prop_assert_eq!(region.scrub(), &data[..]);
        let mut faithful =
            UnreliableRegion::new(data.clone(), ReliabilityModel::with_read_rate(0.0));
        for (i, expect) in data.iter().enumerate() {
            prop_assert_eq!(faithful.read(i, &mut rng), *expect);
        }
    }
}
