//! Selective Reliability Programming (SRP, §II-D / §III-D): reliable and
//! unreliable execution tiers, FT-GMRES (reliable outer, unreliable inner)
//! and the TMR cost ablation.

pub mod ft_gmres;
pub mod reliability;
pub mod tmr_solve;

pub use ft_gmres::{
    ft_gmres, ft_gmres_with_policies, reliable_gmres, unreliable_gmres, FtGmresConfig,
    FtGmresReport,
};
pub use reliability::{SrpCostLedger, UnreliableOperator};
pub use tmr_solve::{compare_tmr_strategies, tmr_apply, TmrApplyResult, TmrCostComparison};
