// analysis-as: crates/core/src/fixture_collective.rs
// Fixture: collectives lexically inside rank-conditional branches. Each arm
// below must fire `collective-symmetry` — rank 0 enters a barrier the other
// ranks never reach, and the else-arm is just as asymmetric.

pub fn desync(comm: &Comm, my_rank: usize, buf: &mut [f64]) {
    if my_rank == 0 {
        comm.barrier();
    } else {
        comm.allreduce(buf);
    }
    if comm.rank() == 2 {
        let _ = comm.global_dot(buf, buf);
    }
    while my_rank < 1 {
        comm.recovery_rendezvous();
    }
}

pub fn symmetric_is_fine(comm: &Comm, buf: &mut [f64]) {
    comm.barrier();
    comm.allreduce(buf);
}
