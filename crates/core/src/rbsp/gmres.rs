//! Distributed GMRES: bulk-synchronous vs. p(1)-pipelined.

use resilient_linalg::HessenbergLsq;
use resilient_runtime::{Comm, ReduceOp, Result};

use super::{DistSolveOptions, DistSolveOutcome};
use crate::distributed::{DistCsr, DistVector};

/// Classical distributed GMRES with classical Gram–Schmidt orthogonalisation:
/// per iteration one SpMV, one **blocking** all-reduce for the projection
/// coefficients and one **blocking** all-reduce for the normalisation — the
/// two global synchronisation points per iteration that limit strong
/// scaling.
pub fn dist_gmres(
    comm: &mut Comm,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let n = b.global_len();
    let mut x = DistVector::zeros(comm, n);
    let bn = b.norm(comm)?.max(f64::MIN_POSITIVE);
    let restart = opts.restart.max(1);
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut relres;

    loop {
        let ax = a.apply(comm, &x)?;
        let mut r = b.clone();
        r.axpy(-1.0, &ax);
        let beta = r.norm(comm)?;
        relres = beta / bn;
        if history.is_empty() {
            history.push(relres);
        }
        if relres <= opts.tol || iterations >= opts.max_iters || !relres.is_finite() {
            break;
        }
        let mut v0 = r.clone();
        v0.scale(1.0 / beta);
        let mut basis = vec![v0];
        let mut lsq = HessenbergLsq::new(restart, beta);

        for _ in 0..restart {
            if iterations >= opts.max_iters {
                break;
            }
            if opts.extra_work_per_iter > 0.0 {
                comm.advance(opts.extra_work_per_iter);
            }
            let vj = basis.last().expect("nonempty").clone();
            let mut w = a.apply(comm, &vj)?;
            // Projection coefficients: one blocking allreduce of j+1 values.
            let local: Vec<f64> = basis.iter().map(|v| v.local_dot(&w)).collect();
            comm.charge_flops(2 * w.local_len() * basis.len());
            let h_proj = comm.allreduce(ReduceOp::Sum, &local)?;
            for (hij, v) in h_proj.iter().zip(&basis) {
                w.axpy(-hij, v);
            }
            comm.charge_flops(2 * w.local_len() * basis.len());
            // Normalisation: second blocking allreduce.
            let h_next = w.norm(comm)?;
            let mut h = h_proj;
            h.push(h_next);
            relres = lsq.push_column(&h) / bn;
            iterations += 1;
            history.push(relres);
            if h_next <= f64::EPSILON * beta.max(1.0) {
                break;
            }
            w.scale(1.0 / h_next);
            basis.push(w);
            if relres <= opts.tol {
                break;
            }
        }
        // x += V y
        let y = lsq.solve();
        for (j, yj) in y.iter().enumerate() {
            x.axpy(*yj, &basis[j]);
        }
        comm.charge_flops(2 * x.local_len() * y.len());
        if relres <= opts.tol || iterations >= opts.max_iters {
            break;
        }
    }
    Ok(DistSolveOutcome {
        x,
        iterations,
        relative_residual: relres,
        converged: relres <= opts.tol,
        history,
    })
}

/// p(1)-pipelined GMRES (after Ghysels, Ashby, Meerbergen & Vanroose): the
/// reduction for the Gram–Schmidt coefficients and the norm is posted as a
/// **single nonblocking all-reduce** and overlapped with the *next*
/// matrix-vector product, which is applied to the still-unorthogonalised
/// vector; the orthogonalised basis vector and its product are then
/// recovered by linearity. One global synchronisation per iteration, fully
/// overlapped.
pub fn pipelined_gmres(
    comm: &mut Comm,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let n = b.global_len();
    let mut x = DistVector::zeros(comm, n);
    let bn = b.norm(comm)?.max(f64::MIN_POSITIVE);
    let restart = opts.restart.max(1);
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut relres;

    'outer: loop {
        let ax = a.apply(comm, &x)?;
        let mut r = b.clone();
        r.axpy(-1.0, &ax);
        let beta = r.norm(comm)?;
        relres = beta / bn;
        if history.is_empty() {
            history.push(relres);
        }
        if relres <= opts.tol || iterations >= opts.max_iters || !relres.is_finite() {
            break;
        }
        let mut v0 = r.clone();
        v0.scale(1.0 / beta);
        // basis[i] = v_i (orthonormal); products[i] = A v_i.
        let z0 = a.apply(comm, &v0)?;
        let mut basis = vec![v0];
        let mut products = vec![z0];
        let mut lsq = HessenbergLsq::new(restart, beta);

        for _ in 0..restart {
            if iterations >= opts.max_iters {
                break;
            }
            let j = basis.len() - 1;
            let zj = products[j].clone();
            // Fused local dots: (v_i, z_j) for i = 0..=j, and (z_j, z_j).
            let mut local: Vec<f64> = basis.iter().map(|v| v.local_dot(&zj)).collect();
            local.push(zj.local_dot(&zj));
            comm.charge_flops(2 * zj.local_len() * (basis.len() + 1));
            // Post the single reduction ...
            let pending = comm.iallreduce(ReduceOp::Sum, &local)?;
            // ... and overlap it with the speculative next product A z_j and
            // any extra application work.
            if opts.extra_work_per_iter > 0.0 {
                comm.advance(opts.extra_work_per_iter);
            }
            let azj = a.apply(comm, &zj)?;
            let reduced = pending.wait_vector(comm)?;
            let (h_proj, zz) = reduced.split_at(basis.len());
            let zz = zz[0];
            // ‖z_j − Σ h_i v_i‖² = (z_j,z_j) − Σ h_i² by orthonormality of V.
            let h_next_sq = zz - h_proj.iter().map(|h| h * h).sum::<f64>();
            // NaN must take this branch too, hence no plain `<=` comparison.
            if h_next_sq.is_nan() || h_next_sq <= f64::EPSILON * zz.max(1.0) {
                // Breakdown (or roundoff made the pipelined norm unusable):
                // fall back to closing the cycle here; the outer loop
                // recomputes the true residual and restarts if needed.
                let mut h = h_proj.to_vec();
                h.push(h_next_sq.max(0.0).sqrt());
                relres = lsq.push_column(&h) / bn;
                iterations += 1;
                history.push(relres);
                break;
            }
            let h_next = h_next_sq.sqrt();
            // v_{j+1} = (z_j − Σ h_i v_i) / h_next, and by linearity
            // A v_{j+1} = (A z_j − Σ h_i A v_i) / h_next.
            let mut v_next = zj.clone();
            let mut z_next = azj;
            for (hij, (v, z)) in h_proj.iter().zip(basis.iter().zip(&products)) {
                v_next.axpy(-hij, v);
                z_next.axpy(-hij, z);
            }
            v_next.scale(1.0 / h_next);
            z_next.scale(1.0 / h_next);
            comm.charge_flops(6 * v_next.local_len() * basis.len());

            let mut h = h_proj.to_vec();
            h.push(h_next);
            relres = lsq.push_column(&h) / bn;
            iterations += 1;
            history.push(relres);
            basis.push(v_next);
            products.push(z_next);
            if relres <= opts.tol {
                break;
            }
        }
        // x += V y
        let y = lsq.solve();
        for (j, yj) in y.iter().enumerate() {
            x.axpy(*yj, &basis[j]);
        }
        comm.charge_flops(2 * x.local_len() * y.len());
        if relres <= opts.tol || iterations >= opts.max_iters {
            break 'outer;
        }
    }
    Ok(DistSolveOutcome {
        x,
        iterations,
        relative_residual: relres,
        converged: relres <= opts.tol,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::true_relative_residual;
    use resilient_linalg::poisson2d;
    use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

    #[test]
    fn both_variants_solve_poisson() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(300)
                    .with_restart(40);
                let classic = dist_gmres(comm, &da, &b, &opts)?;
                let pipelined = pipelined_gmres(comm, &da, &b, &opts)?;
                Ok((
                    classic.x.gather_global(comm)?,
                    pipelined.x.gather_global(comm)?,
                    classic.converged,
                    pipelined.converged,
                    classic.iterations,
                    pipelined.iterations,
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (cx, px, c_conv, p_conv, c_iters, p_iters) in results {
            assert!(c_conv && p_conv);
            assert!(true_relative_residual(&a, &b, &cx) < 1e-7);
            assert!(true_relative_residual(&a, &b, &px) < 1e-7);
            assert!(
                (c_iters as i64 - p_iters as i64).abs() <= 5,
                "same mathematics, similar iteration counts: {c_iters} vs {p_iters}"
            );
        }
    }

    #[test]
    fn pipelined_gmres_hides_collective_latency() {
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 5.0e-4,
            beta: 0.0,
            gamma: 0.0,
        };
        let rt = Runtime::new(cfg);
        let times = rt
            .run(8, move |comm| {
                let a = poisson2d(12, 12);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| (i as f64 * 0.05).sin() + 1.0);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-7)
                    .with_max_iters(120)
                    .with_restart(40);
                let t0 = comm.now();
                let classic = dist_gmres(comm, &da, &b, &opts)?;
                let t1 = comm.now();
                let pipelined = pipelined_gmres(comm, &da, &b, &opts)?;
                let t2 = comm.now();
                assert!(classic.converged && pipelined.converged);
                Ok((t1 - t0, t2 - t1))
            })
            .unwrap_all();
        for (classic_time, pipelined_time) in times {
            assert!(
                pipelined_time < classic_time,
                "p(1)-GMRES must finish sooner under collective latency: \
                 classic={classic_time}, pipelined={pipelined_time}"
            );
        }
    }
}
