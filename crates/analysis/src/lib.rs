//! # resilient-analysis
//!
//! A repo-invariant static analyzer: a hand-rolled Rust lexer (no `syn`,
//! consistent with the vendored-minimal-deps policy) feeding a lexical rule
//! engine that machine-checks the contracts the rest of the suite only
//! enforces dynamically — collective-order symmetry, `// SAFETY:` coverage
//! on unsafe sites, virtual-time purity, FLOP-ledger charging discipline,
//! and the hot-loop allocation audit.
//!
//! The crate is both a library (so `cargo test` runs the analyzer over the
//! live tree as a plain `#[test]`) and a binary (`resilient-analysis`) for
//! the CI gate. See `docs/analysis.md` for the rule catalogue and waiver
//! policy.

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_files, analyze_source, analyze_tree, Analysis, Diagnostic, SourceFile};
pub use rules::{all_rules, Rule};
