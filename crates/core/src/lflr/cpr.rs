//! The global checkpoint/restart (CPR) baseline driver.
//!
//! This is the recovery model the paper's introduction describes as the
//! status quo: "occasionally storing a snapshot of application state and
//! restarting from that saved state" — with the whole job torn down and
//! relaunched on every failure.

use std::sync::Arc;

use resilient_runtime::{
    Comm, FailurePolicy, ReduceOp, Result, Runtime, RuntimeConfig, StableStore, Stored,
};

/// A step-structured SPMD application that can checkpoint to and restore
/// from the stable store (the simulated parallel file system).
pub trait CprApp: Send + Sync + 'static {
    /// Per-rank application state.
    type State: Send + 'static;
    /// Build the initial state.
    fn init(&self, comm: &mut Comm) -> Result<Self::State>;
    /// Advance from `step` to `step + 1`.
    fn step(&self, comm: &mut Comm, state: &mut Self::State, step: usize) -> Result<()>;
    /// Write this rank's checkpoint for (completed) step `step`.
    fn checkpoint(&self, comm: &mut Comm, state: &Self::State, step: usize) -> Result<()>;
    /// Restore this rank's state from the checkpoint taken at `step`.
    fn restore(&self, comm: &mut Comm, step: usize) -> Result<Self::State>;
    /// Total number of steps.
    fn n_steps(&self) -> usize;
}

/// CPR driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CprConfig {
    /// Take a global checkpoint every this many steps.
    pub checkpoint_interval: usize,
    /// Give up after this many job restarts.
    pub max_restarts: usize,
}

impl Default for CprConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 10,
            max_restarts: 64,
        }
    }
}

/// Outcome of a CPR-driven campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CprReport {
    /// Job launches (1 = no restart was needed).
    pub attempts: usize,
    /// Failures observed across all attempts.
    pub failures: usize,
    /// Did the application finish all steps?
    pub completed: bool,
    /// Total virtual time: the sum over attempts of each attempt's makespan,
    /// plus the configured restart cost for every aborted attempt.
    pub total_virtual_time: f64,
    /// Steps re-executed because they post-dated the last checkpoint.
    pub steps_reexecuted: usize,
    /// Total bytes written to the stable store.
    pub checkpoint_bytes: u64,
}

/// Key under which the driver records the last globally completed checkpoint.
const LAST_CHECKPOINT_KEY: &str = "cpr/last_checkpoint_step";

/// Run `app` to completion under global checkpoint/restart.
///
/// `config` supplies the machine model and the failure injection; its
/// failure policy is forced to [`FailurePolicy::AbortJob`]. Returns the
/// campaign report.
pub fn run_cpr<A: CprApp>(
    config: &RuntimeConfig,
    size: usize,
    app: Arc<A>,
    cpr: &CprConfig,
) -> CprReport {
    let mut config = config.clone();
    config.failures.policy = FailurePolicy::AbortJob;
    let base_max_failures = config.failures.max_failures;
    let base_seed = config.seed;

    let stable = StableStore::new();
    let checkpoint_interval = cpr.checkpoint_interval.max(1);
    let n_steps = app.n_steps();

    let mut report = CprReport {
        attempts: 0,
        failures: 0,
        completed: false,
        total_virtual_time: 0.0,
        steps_reexecuted: 0,
        checkpoint_bytes: 0,
    };

    while report.attempts <= cpr.max_restarts {
        report.attempts += 1;
        // Failures already consumed in earlier attempts are not re-injected:
        // cap the remaining budget and decorrelate the random stream.
        config.failures.max_failures = base_max_failures.saturating_sub(report.failures);
        config.seed = base_seed.wrapping_add(report.attempts as u64 * 0x9E37);
        let runtime = Runtime::new(config.clone());
        let app_ref = Arc::clone(&app);

        let result = runtime.run_with_stable(size, stable.clone(), move |comm| {
            // Resume from the last globally completed checkpoint, if any.
            let resume_step = comm
                .stable_store()
                .get(LAST_CHECKPOINT_KEY)
                .and_then(|v| v.into_scalar().ok())
                .map(|s| s as usize)
                .unwrap_or(0);
            let mut state = if resume_step > 0 {
                app_ref.restore(comm, resume_step)?
            } else {
                app_ref.init(comm)?
            };
            let mut step = resume_step;
            while step < app_ref.n_steps() {
                app_ref.step(comm, &mut state, step)?;
                step += 1;
                if step % checkpoint_interval == 0 || step == app_ref.n_steps() {
                    app_ref.checkpoint(comm, &state, step)?;
                    // The checkpoint only counts once every rank has written
                    // it; the barrier models the coordinated checkpoint.
                    comm.barrier()?;
                    if comm.rank() == 0 {
                        comm.stable_store()
                            .put(LAST_CHECKPOINT_KEY, Stored::Scalar(step as f64));
                    }
                }
            }
            // Completed-step agreement, so the driver can account rework.
            let done = comm.allreduce_scalar(ReduceOp::Min, step as f64)?;
            Ok((done as usize, resume_step))
        });

        let makespan = result
            .stats
            .iter()
            .map(|s| s.virtual_time)
            .fold(0.0, f64::max)
            .max(result.job.makespan);
        report.total_virtual_time += makespan;
        report.failures += result.failures.len();
        report.checkpoint_bytes += result.stats.iter().map(|s| s.checkpoint_bytes).sum::<u64>();

        if result.all_ok() {
            report.completed = true;
            break;
        }
        // The attempt aborted: charge the restart cost and account the steps
        // that will have to be redone (everything past the last checkpoint).
        report.total_virtual_time += config.restart_cost;
        let last_ckpt = stable
            .get(LAST_CHECKPOINT_KEY)
            .and_then(|v| v.into_scalar().ok())
            .map(|s| s as usize)
            .unwrap_or(0);
        // We do not know exactly how far each rank got; conservatively count
        // the distance from the last checkpoint to the next one (or the end).
        let next_target = ((last_ckpt / checkpoint_interval) + 1) * checkpoint_interval;
        report.steps_reexecuted += next_target.min(n_steps).saturating_sub(last_ckpt);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_runtime::FailureConfig;

    /// The CPR flavour of the accumulator application used by the LFLR tests.
    struct Accumulator {
        steps: usize,
        work_per_step: f64,
    }

    impl CprApp for Accumulator {
        type State = f64;
        fn init(&self, _comm: &mut Comm) -> Result<f64> {
            Ok(0.0)
        }
        fn step(&self, comm: &mut Comm, state: &mut f64, _step: usize) -> Result<()> {
            comm.advance(self.work_per_step);
            comm.barrier()?;
            *state += 1.0;
            Ok(())
        }
        fn checkpoint(&self, comm: &mut Comm, state: &f64, step: usize) -> Result<()> {
            comm.checkpoint(&format!("acc@{step}"), *state)?;
            Ok(())
        }
        fn restore(&self, comm: &mut Comm, step: usize) -> Result<f64> {
            Ok(comm
                .restore_checkpoint(&format!("acc@{step}"))
                .map(|v| v.into_scalar().unwrap_or(step as f64))
                .unwrap_or(step as f64))
        }
        fn n_steps(&self) -> usize {
            self.steps
        }
    }

    #[test]
    fn failure_free_cpr_completes_in_one_attempt() {
        let config = RuntimeConfig::fast();
        let report = run_cpr(
            &config,
            4,
            Arc::new(Accumulator {
                steps: 12,
                work_per_step: 0.01,
            }),
            &CprConfig {
                checkpoint_interval: 4,
                max_restarts: 3,
            },
        );
        assert!(report.completed);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.failures, 0);
        assert_eq!(report.steps_reexecuted, 0);
        assert!(report.checkpoint_bytes > 0);
        assert!(report.total_virtual_time > 0.0);
    }

    #[test]
    fn single_failure_forces_one_restart_and_rework() {
        let config = RuntimeConfig::fast().with_failures(FailureConfig {
            enabled: true,
            policy: FailurePolicy::AbortJob,
            mtbf_per_rank: f64::INFINITY,
            scheduled: vec![(1, 0.65)],
            max_failures: 1,
        });
        let report = run_cpr(
            &config,
            4,
            Arc::new(Accumulator {
                steps: 20,
                work_per_step: 0.1,
            }),
            &CprConfig {
                checkpoint_interval: 5,
                max_restarts: 5,
            },
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.attempts, 2, "exactly one restart");
        assert_eq!(report.failures, 1);
        assert!(
            report.steps_reexecuted > 0,
            "work past the last checkpoint is redone"
        );
        // Total time exceeds the failure-free time of 20 * 0.1.
        assert!(report.total_virtual_time > 2.0);
    }

    #[test]
    fn gives_up_after_max_restarts() {
        // A failure is injected at the very beginning of every attempt, so the
        // job can never pass the first checkpoint.
        let config = RuntimeConfig::fast().with_failures(FailureConfig {
            enabled: true,
            policy: FailurePolicy::AbortJob,
            mtbf_per_rank: f64::INFINITY,
            scheduled: vec![(0, 0.05)],
            max_failures: usize::MAX,
        });
        let report = run_cpr(
            &config,
            2,
            Arc::new(Accumulator {
                steps: 50,
                work_per_step: 0.1,
            }),
            &CprConfig {
                checkpoint_interval: 10,
                max_restarts: 3,
            },
        );
        assert!(!report.completed);
        assert_eq!(report.attempts, 4, "initial attempt + 3 restarts");
        assert_eq!(report.failures, 4);
    }
}
