//! Unreliable memory regions — the substrate for Selective Reliability
//! Programming (§II-D).
//!
//! SRP lets the programmer "declare specific data and compute regions to be
//! more reliable than the bulk reliability of the underlying system". Real
//! hardware would implement the cheap mode by dropping ECC or lowering
//! DRAM refresh; here an [`UnreliableRegion`] corrupts stored values with a
//! configurable probability per access, which exercises the same algorithmic
//! code paths.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::bitflip::flip_random_bit_f64;

/// Reliability classes data and compute can be placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reliability {
    /// Never corrupted; costs `reliable_cost_factor` × the unreliable cost.
    Reliable,
    /// May be corrupted at the configured rate; unit cost.
    Unreliable,
}

/// Cost/fault model of a two-tier (reliable / unreliable) memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Probability that a single unreliable *read* returns a corrupted value.
    pub read_corruption_prob: f64,
    /// Probability that a single unreliable *write* stores a corrupted value.
    pub write_corruption_prob: f64,
    /// Relative cost of reliable storage/compute versus unreliable
    /// (≥ 1; e.g. 2.0 for dual modular redundancy, 3.0 for TMR-backed
    /// reliability).
    pub reliable_cost_factor: f64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        Self {
            read_corruption_prob: 0.0,
            write_corruption_prob: 0.0,
            reliable_cost_factor: 2.0,
        }
    }
}

impl ReliabilityModel {
    /// A model with the given per-read corruption probability and default
    /// costs.
    pub fn with_read_rate(rate: f64) -> Self {
        Self {
            read_corruption_prob: rate,
            ..Self::default()
        }
    }

    /// Cost multiplier for the given reliability class.
    pub fn cost_factor(&self, class: Reliability) -> f64 {
        match class {
            Reliability::Reliable => self.reliable_cost_factor,
            Reliability::Unreliable => 1.0,
        }
    }
}

/// A vector of `f64` stored in unreliable memory: reads may return bit-flipped
/// values, writes may store bit-flipped values, according to the model.
///
/// Every access consumes randomness from the caller-provided RNG so campaigns
/// are reproducible.
#[derive(Debug, Clone)]
pub struct UnreliableRegion {
    data: Vec<f64>,
    model: ReliabilityModel,
    corruptions: u64,
}

impl UnreliableRegion {
    /// Wrap a vector in an unreliable region.
    pub fn new(data: Vec<f64>, model: ReliabilityModel) -> Self {
        Self {
            data,
            model,
            corruptions: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`; with probability `read_corruption_prob` the
    /// returned value (not the stored one) has a random bit flipped.
    pub fn read(&mut self, i: usize, rng: &mut ChaCha8Rng) -> f64 {
        let v = self.data[i];
        if self.model.read_corruption_prob > 0.0
            && rng.gen::<f64>() < self.model.read_corruption_prob
        {
            self.corruptions += 1;
            flip_random_bit_f64(v, rng).0
        } else {
            v
        }
    }

    /// Write element `i`; with probability `write_corruption_prob` the stored
    /// value has a random bit flipped.
    pub fn write(&mut self, i: usize, value: f64, rng: &mut ChaCha8Rng) {
        let v = if self.model.write_corruption_prob > 0.0
            && rng.gen::<f64>() < self.model.write_corruption_prob
        {
            self.corruptions += 1;
            flip_random_bit_f64(value, rng).0
        } else {
            value
        };
        self.data[i] = v;
    }

    /// Read the whole region as a vector (each element goes through the
    /// unreliable read path).
    pub fn read_all(&mut self, rng: &mut ChaCha8Rng) -> Vec<f64> {
        (0..self.len()).map(|i| self.read(i, rng)).collect()
    }

    /// Overwrite the whole region (each element goes through the unreliable
    /// write path).
    pub fn write_all(&mut self, values: &[f64], rng: &mut ChaCha8Rng) {
        assert_eq!(values.len(), self.len(), "write_all: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.write(i, v, rng);
        }
    }

    /// Direct access to the underlying storage, bypassing the fault model
    /// (models a privileged "scrub" or a reliable copy-out).
    pub fn scrub(&self) -> &[f64] {
        &self.data
    }

    /// Number of corruptions injected so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// The reliability model in force.
    pub fn model(&self) -> ReliabilityModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn zero_rate_region_is_faithful() {
        let mut r = rng(1);
        let mut region = UnreliableRegion::new(vec![1.0, 2.0, 3.0], ReliabilityModel::default());
        assert_eq!(region.len(), 3);
        assert!(!region.is_empty());
        for i in 0..3 {
            assert_eq!(region.read(i, &mut r), (i + 1) as f64);
        }
        region.write(1, 9.0, &mut r);
        assert_eq!(region.read(1, &mut r), 9.0);
        assert_eq!(region.corruptions(), 0);
    }

    #[test]
    fn read_corruption_rate_is_approximately_respected() {
        let mut r = rng(2);
        let model = ReliabilityModel::with_read_rate(0.2);
        let mut region = UnreliableRegion::new(vec![1.0; 1], model);
        let n = 20_000;
        let mut corrupted = 0;
        for _ in 0..n {
            if region.read(0, &mut r) != 1.0 {
                corrupted += 1;
            }
        }
        let rate = corrupted as f64 / n as f64;
        // A flipped bit almost always changes the value (NaN-payload cases
        // aside), so the observed rate tracks the configured one.
        assert!((rate - 0.2).abs() < 0.02, "observed corruption rate {rate}");
        assert!(region.corruptions() > 0);
        // The stored value itself is never altered by reads.
        assert_eq!(region.scrub(), &[1.0]);
    }

    #[test]
    fn write_corruption_persists() {
        let mut r = rng(3);
        let model = ReliabilityModel {
            read_corruption_prob: 0.0,
            write_corruption_prob: 1.0,
            reliable_cost_factor: 2.0,
        };
        let mut region = UnreliableRegion::new(vec![0.0; 4], model);
        region.write_all(&[1.0, 2.0, 3.0, 4.0], &mut r);
        assert_eq!(region.corruptions(), 4);
        let stored = region.scrub().to_vec();
        // Every stored value differs from what was written (bit flip).
        let clean: [f64; 4] = [1.0, 2.0, 3.0, 4.0];
        let diffs = stored
            .iter()
            .zip(clean.iter())
            .filter(|&(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(diffs, 4);
    }

    #[test]
    fn cost_factors() {
        let m = ReliabilityModel::default();
        assert_eq!(m.cost_factor(Reliability::Unreliable), 1.0);
        assert_eq!(m.cost_factor(Reliability::Reliable), 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_all_length_mismatch_panics() {
        let mut r = rng(1);
        let mut region = UnreliableRegion::new(vec![0.0; 2], ReliabilityModel::default());
        region.write_all(&[1.0], &mut r);
    }
}
