//! The adversarial fault campaign: proptest-driven multi-event schedules
//! swept across the solver preset matrix, with the converge-or-honestly-
//! fail oracle asserted on every single run.
//!
//! Case volume scales with the `RESILIENT_CAMPAIGN_CASES` environment
//! variable (default 2, kept small so plain `cargo test` stays friendly;
//! the nightly deep-campaign job raises it). On a violation the failing
//! schedule is greedily minimized before the panic, so the red output
//! carries a shrunk, deterministic repro ready to pin in
//! `fault_campaign_regressions.rs`.

use proptest::prelude::*;
use resilience::prelude::*;
use resilient_faults::campaign::{FaultFamily, Strike, StrikePlan};
use resilient_linalg::poisson2d;
use resilient_runtime::{Runtime, RuntimeConfig, ThreadConfig, ThreadRuntime};

/// Proptest case count: small by default, cranked up by the nightly job.
fn campaign_cases() -> u32 {
    std::env::var("RESILIENT_CAMPAIGN_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Run one campaign case and assert the oracle. On a contract violation,
/// greedily minimize the schedule (re-running the case after each
/// candidate drop) and panic with both the full repro line and the shrunk
/// schedule.
fn assert_case(
    family: FaultFamily,
    seed: u64,
    preset: CampaignPreset,
    cfg: &CampaignConfig,
) -> CaseReport {
    match campaign_case(family, seed, preset, cfg) {
        Ok(report) => report,
        Err(violation) => {
            let minimized = match clean_baseline(family, seed, preset, cfg) {
                Ok(base) => violation
                    .schedule
                    .clone()
                    .minimize(|s| run_schedule(s, preset, cfg, &base).is_err()),
                Err(_) => violation.schedule.clone(),
            };
            panic!("{violation}\nminimized schedule: {minimized:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(campaign_cases()))]

    /// Bit-flip families across the full eight-preset kernel matrix:
    /// correlated SpMV flips and the mixed storm on every preset, the
    /// preconditioner-targeted family on the preconditioned four.
    #[test]
    fn flip_families_uphold_the_oracle(seed in 0u64..(1u64 << 32)) {
        let cfg = CampaignConfig::default();
        for family in [FaultFamily::CorrelatedSpmvFlips, FaultFamily::MixedFlipStorm] {
            for preset in CampaignPreset::ALL {
                assert_case(family, seed, preset, &cfg);
            }
        }
        for preset in CampaignPreset::PRECONDITIONED {
            assert_case(FaultFamily::PrecondFlips, seed, preset, &cfg);
        }
    }

    /// The same preconditioner-path families with a [`PrecondGuardPolicy`]
    /// stacked: the guard may turn silent slowdowns into explicit
    /// detections, but must never break the oracle itself.
    #[test]
    fn guarded_precond_flips_uphold_the_oracle(seed in 0u64..(1u64 << 32)) {
        let cfg = CampaignConfig::default().with_guard(true);
        for preset in CampaignPreset::PRECONDITIONED {
            assert_case(FaultFamily::PrecondFlips, seed, preset, &cfg);
            assert_case(FaultFamily::MixedFlipStorm, seed, preset, &cfg);
        }
    }

    /// Process-death families — multi-rank deaths, a death timed into the
    /// LFLR recovery rendezvous, deaths straddling the persist cadence —
    /// against the four LFLR solver classes.
    #[test]
    fn death_families_uphold_the_oracle(seed in 0u64..(1u64 << 32)) {
        let cfg = CampaignConfig::default();
        for family in [
            FaultFamily::MultiRankDeath,
            FaultFamily::RendezvousDeath,
            FaultFamily::PersistBoundaryDeath,
        ] {
            for preset in [
                CampaignPreset::FusedPcg,
                CampaignPreset::PipelinedPcg,
                CampaignPreset::CgsPgmres,
                CampaignPreset::PipelinedPgmres,
            ] {
                assert_case(family, seed, preset, &cfg);
            }
        }
    }
}

/// The full acceptance matrix, once, at a fixed seed: all six fault
/// families crossed with all eight presets, oracle asserted on every run.
/// This keeps the matrix covered even if `RESILIENT_CAMPAIGN_CASES=0`.
#[test]
fn full_matrix_upholds_the_oracle_at_a_fixed_seed() {
    let cfg = CampaignConfig::default();
    let mut outcomes = std::collections::BTreeMap::new();
    for family in FaultFamily::ALL {
        for preset in CampaignPreset::ALL {
            let report = assert_case(family, 42, preset, &cfg);
            *outcomes.entry(report.outcome.name()).or_insert(0usize) += 1;
        }
    }
    let total: usize = outcomes.values().sum();
    assert_eq!(total, FaultFamily::ALL.len() * CampaignPreset::ALL.len());
}

/// The campaign engine is backend-generic: the same strike plans and
/// oracle classification run over the real-threads backend. One
/// correlated flip on each of two ranks; classification must be
/// rank-symmetric and honest, exactly as on the simulated backend.
#[test]
fn threaded_backend_flip_case_upholds_the_oracle() {
    let cfg = CampaignConfig::default().with_ranks(2);
    let a = poisson2d(cfg.nx, cfg.nx);
    let b_global = cfg.rhs();
    let opts = cfg.solve_opts();
    let accept = cfg.accept_tol();
    let strikes = vec![
        Strike {
            rank: 0,
            incarnation: 0,
            at: 6,
            element: 2,
            bit: 48,
        },
        Strike {
            rank: 1,
            incarnation: 0,
            at: 9,
            element: 5,
            bit: 44,
        },
    ];
    for preset in [CampaignPreset::FusedCg, CampaignPreset::CgsGmres] {
        let a = a.clone();
        let b_global = b_global.clone();
        let strikes = strikes.clone();
        let rt = ThreadRuntime::new(ThreadConfig::fast());
        let job = rt.run(cfg.ranks, move |comm| {
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_global(comm, &b_global);
            let (outcome, _report, probe) = run_kernel_preset(
                comm,
                &da,
                &b,
                preset,
                &opts,
                false,
                Some(StrikePlan::new(strikes.clone())),
                None,
            )?;
            Ok((
                outcome.reason == StopReason::Converged,
                probe.true_relres,
                probe.injections,
            ))
        });
        assert!(
            job.all_ok(),
            "threaded campaign run errored: {:?}",
            job.errors
        );
        let verdicts = job.unwrap_all();
        assert!(
            verdicts.windows(2).all(|w| w[0].0 == w[1].0),
            "rank-asymmetric claims on the threaded backend: {verdicts:?}"
        );
        let landed: usize = verdicts.iter().map(|v| v.2).sum();
        assert_eq!(landed, 2, "both strikes must land ({preset:?})");
        for (claimed, relres, _) in &verdicts {
            // The oracle: a claim must be verified or refuted explicitly,
            // and nothing may be NaN.
            assert!(
                relres.is_finite(),
                "non-finite verified residual on threaded backend ({preset:?})"
            );
            if *claimed && *relres > accept {
                // Silent corruption made visible by verification — allowed,
                // the claim just must not pass as verified success.
                continue;
            }
        }
    }
}

/// Three diverse healthy members agree: the vote certifies the majority
/// solution and flags nothing.
#[test]
fn diversity_vote_certifies_clean_agreement() {
    let cfg = CampaignConfig::default();
    let a = poisson2d(cfg.nx, cfg.nx);
    let b = cfg.rhs();
    let opts = cfg.solve_opts();
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(11));
    let job = rt.run(cfg.ranks, move |comm| {
        let members = vec![
            DiversityMember::clean(CampaignPreset::FusedCg),
            DiversityMember::clean(CampaignPreset::CgsGmres),
            DiversityMember::clean(CampaignPreset::PipelinedPcg),
        ];
        diversity_vote(comm, &a, &b, members, &opts, 1e-5)
    });
    assert!(job.all_ok(), "vote run errored: {:?}", job.errors);
    let report = &job.unwrap_all()[0];
    assert_eq!(report.claimed, vec![true, true, true]);
    assert_eq!(report.majority, Some(0), "all claimants form one cluster");
    assert!(report.outvoted.is_empty());
    assert!(!report.detected);
    assert!(report.solution.is_some());
}

/// The flagship diversity demonstration: a member silently corrupted by a
/// mid-solve SpMV flip claims convergence with a wrong solution (CG's
/// residual recurrence detaches from the true residual — the classic
/// silent-data-corruption mode); two diverse healthy members agree with
/// each other, outvote it, and the vote reports a detection while still
/// certifying the correct majority solution.
#[test]
fn diversity_vote_outvotes_a_silently_corrupted_member() {
    let cfg = CampaignConfig::default();
    let a = poisson2d(cfg.nx, cfg.nx);
    let b = cfg.rhs();
    let opts = cfg.solve_opts();
    let accept = cfg.accept_tol();
    let rt = Runtime::new(RuntimeConfig::fast().with_seed(7));
    let job = rt.run(cfg.ranks, move |comm| {
        let plan = StrikePlan::new(vec![Strike {
            rank: 0,
            incarnation: 0,
            at: 8,
            element: 2,
            bit: 50,
        }]);
        let members = vec![
            DiversityMember::poisoned(CampaignPreset::FusedCg, plan),
            DiversityMember::clean(CampaignPreset::CgsGmres),
            DiversityMember::clean(CampaignPreset::PipelinedPcg),
        ];
        diversity_vote(comm, &a, &b, members, &opts, 1e-5)
    });
    assert!(job.all_ok(), "vote run errored: {:?}", job.errors);
    let report = &job.unwrap_all()[0];
    assert_eq!(
        report.claimed,
        vec![true, true, true],
        "the poisoned member must still *claim* convergence for the demo"
    );
    assert!(
        report.true_relres[0] > accept,
        "member 0's claim must actually be wrong (true relres {:.3e})",
        report.true_relres[0]
    );
    assert_eq!(report.outvoted, vec![0], "the poisoned member is outvoted");
    assert!(report.detected);
    let majority = report.majority.expect("healthy members form a majority");
    assert_eq!(report.clusters[majority], vec![1, 2]);
    assert!(
        report.solution.is_some(),
        "detection does not forfeit the certified majority solution"
    );
}
