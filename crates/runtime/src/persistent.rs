//! Persistent per-rank storage and the stable store.
//!
//! The LFLR model of §II-C requires that an application can "store specific
//! data persistently for each MPI process" so that a replacement process can
//! recover the failed process's state, possibly with help from neighbours.
//!
//! Two stores are provided:
//!
//! * [`PersistentStore`] — per-rank key/value storage that survives the death
//!   of the owning rank's thread but *not* a whole-job abort. This models
//!   node-local NVRAM / buddy-memory schemes and is the substrate for LFLR.
//!   Any rank may read any other rank's entries (neighbours assisting in
//!   recovery); writes are only allowed to the caller's own partition through
//!   [`Comm`](crate::comm::Comm) wrappers.
//! * [`StableStore`] — job-global storage that survives job aborts, modelling
//!   the parallel file system used by checkpoint/restart. Writes are charged
//!   a configurable virtual-time cost by the caller.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, RuntimeError};

/// Typed values storable in the persistent / stable stores.
///
/// A closed enum keeps the store simple and `Clone`-able; the suite's
/// applications persist numeric state (solution vectors, time-step counters)
/// and occasionally opaque bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Stored {
    /// A vector of f64 values.
    F64(Vec<f64>),
    /// A vector of u64 values.
    U64(Vec<u64>),
    /// A single scalar.
    Scalar(f64),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Stored {
    /// Approximate size in bytes, used to charge checkpoint cost.
    pub fn byte_len(&self) -> usize {
        match self {
            Stored::F64(v) => v.len() * 8,
            Stored::U64(v) => v.len() * 8,
            Stored::Scalar(_) => 8,
            Stored::Bytes(v) => v.len(),
        }
    }

    /// Extract an f64 vector.
    pub fn into_f64(self) -> Result<Vec<f64>> {
        match self {
            Stored::F64(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "f64",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a u64 vector.
    pub fn into_u64(self) -> Result<Vec<u64>> {
        match self {
            Stored::U64(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "u64",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a scalar.
    pub fn into_scalar(self) -> Result<f64> {
        match self {
            Stored::Scalar(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "scalar",
                found: other.type_name(),
            }),
        }
    }

    /// Extract raw bytes.
    pub fn into_bytes(self) -> Result<Vec<u8>> {
        match self {
            Stored::Bytes(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "bytes",
                found: other.type_name(),
            }),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Stored::F64(_) => "f64",
            Stored::U64(_) => "u64",
            Stored::Scalar(_) => "scalar",
            Stored::Bytes(_) => "bytes",
        }
    }
}

impl From<Vec<f64>> for Stored {
    fn from(v: Vec<f64>) -> Self {
        Stored::F64(v)
    }
}
impl From<Vec<u64>> for Stored {
    fn from(v: Vec<u64>) -> Self {
        Stored::U64(v)
    }
}
impl From<f64> for Stored {
    fn from(v: f64) -> Self {
        Stored::Scalar(v)
    }
}
impl From<Vec<u8>> for Stored {
    fn from(v: Vec<u8>) -> Self {
        Stored::Bytes(v)
    }
}

/// Per-rank persistent storage surviving rank failure.
#[derive(Debug)]
pub struct PersistentStore {
    partitions: Vec<RwLock<HashMap<String, Stored>>>,
}

impl PersistentStore {
    /// Create a store with one partition per rank.
    pub fn new(size: usize) -> Self {
        Self {
            partitions: (0..size).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Number of rank partitions.
    pub fn size(&self) -> usize {
        self.partitions.len()
    }

    /// Store `value` under `key` in `rank`'s partition.
    pub fn put(&self, rank: usize, key: &str, value: Stored) -> Result<()> {
        let part = self.partition(rank)?;
        part.write().insert(key.to_string(), value);
        Ok(())
    }

    /// Fetch a copy of the value stored under `key` in `rank`'s partition.
    pub fn get(&self, rank: usize, key: &str) -> Result<Stored> {
        let part = self.partition(rank)?;
        part.read()
            .get(key)
            .cloned()
            .ok_or_else(|| RuntimeError::MissingPersistentKey {
                rank,
                key: key.to_string(),
            })
    }

    /// Does `rank`'s partition contain `key`?
    pub fn contains(&self, rank: usize, key: &str) -> bool {
        self.partition(rank)
            .map(|p| p.read().contains_key(key))
            .unwrap_or(false)
    }

    /// Remove `key` from `rank`'s partition, returning the previous value.
    pub fn remove(&self, rank: usize, key: &str) -> Option<Stored> {
        self.partition(rank)
            .ok()
            .and_then(|p| p.write().remove(key))
    }

    /// Keys stored for `rank`, sorted.
    pub fn keys(&self, rank: usize) -> Vec<String> {
        match self.partition(rank) {
            Ok(p) => {
                let mut k: Vec<String> = p.read().keys().cloned().collect();
                k.sort();
                k
            }
            Err(_) => Vec::new(),
        }
    }

    /// Total bytes stored for `rank` (models NVRAM footprint).
    pub fn bytes_for(&self, rank: usize) -> usize {
        self.partition(rank)
            .map(|p| p.read().values().map(Stored::byte_len).sum())
            .unwrap_or(0)
    }

    /// Clear every partition (used between job restarts, since node-local
    /// persistent memory does not survive a full job teardown in this model).
    pub fn clear(&self) {
        for p in &self.partitions {
            p.write().clear();
        }
    }

    fn partition(&self, rank: usize) -> Result<&RwLock<HashMap<String, Stored>>> {
        self.partitions.get(rank).ok_or(RuntimeError::InvalidRank {
            rank,
            size: self.partitions.len(),
        })
    }
}

/// Job-global stable storage (models the parallel file system used by
/// checkpoint/restart). Cheap to clone: clones share the same backing map,
/// so a store created by a CPR driver is visible to every job attempt.
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    inner: Arc<RwLock<HashMap<String, Stored>>>,
}

impl StableStore {
    /// Create an empty stable store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `value` under `key`. Returns the number of bytes written so the
    /// caller can charge checkpoint-bandwidth cost.
    pub fn put(&self, key: &str, value: Stored) -> usize {
        let bytes = value.byte_len();
        self.inner.write().insert(key.to_string(), value);
        bytes
    }

    /// Read a copy of the value under `key`.
    pub fn get(&self, key: &str) -> Option<Stored> {
        self.inner.read().get(key).cloned()
    }

    /// Does the store contain `key`?
    pub fn contains(&self, key: &str) -> bool {
        self.inner.read().contains_key(key)
    }

    /// Remove `key`.
    pub fn remove(&self, key: &str) -> Option<Stored> {
        self.inner.write().remove(key)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut k: Vec<String> = self.inner.read().keys().cloned().collect();
        k.sort();
        k
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> usize {
        self.inner.read().values().map(Stored::byte_len).sum()
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_byte_lengths() {
        assert_eq!(Stored::F64(vec![0.0; 4]).byte_len(), 32);
        assert_eq!(Stored::U64(vec![0; 2]).byte_len(), 16);
        assert_eq!(Stored::Scalar(1.0).byte_len(), 8);
        assert_eq!(Stored::Bytes(vec![0; 5]).byte_len(), 5);
    }

    #[test]
    fn stored_type_extraction() {
        assert_eq!(Stored::Scalar(2.5).into_scalar().unwrap(), 2.5);
        assert!(Stored::Scalar(2.5).into_f64().is_err());
        assert_eq!(Stored::F64(vec![1.0]).into_f64().unwrap(), vec![1.0]);
        assert_eq!(Stored::U64(vec![3]).into_u64().unwrap(), vec![3]);
        assert_eq!(Stored::Bytes(vec![9]).into_bytes().unwrap(), vec![9]);
        assert!(Stored::Bytes(vec![]).into_scalar().is_err());
    }

    #[test]
    fn persistent_put_get_roundtrip() {
        let store = PersistentStore::new(4);
        store.put(2, "state", vec![1.0, 2.0].into()).unwrap();
        assert_eq!(store.get(2, "state").unwrap(), Stored::F64(vec![1.0, 2.0]));
        assert!(store.contains(2, "state"));
        assert!(!store.contains(1, "state"));
        assert_eq!(store.keys(2), vec!["state".to_string()]);
        assert_eq!(store.bytes_for(2), 16);
    }

    #[test]
    fn persistent_missing_key_is_error() {
        let store = PersistentStore::new(2);
        let err = store.get(0, "nope").unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::MissingPersistentKey { rank: 0, .. }
        ));
    }

    #[test]
    fn persistent_invalid_rank_is_error() {
        let store = PersistentStore::new(2);
        assert!(store.put(5, "x", 1.0.into()).is_err());
        assert!(store.get(5, "x").is_err());
        assert_eq!(store.bytes_for(5), 0);
        assert!(store.keys(5).is_empty());
    }

    #[test]
    fn persistent_neighbor_reads_allowed() {
        // Rank 1 stores; rank 0 (a neighbour assisting in recovery) reads.
        let store = PersistentStore::new(2);
        store.put(1, "halo", vec![7.0].into()).unwrap();
        assert_eq!(store.get(1, "halo").unwrap().into_f64().unwrap(), vec![7.0]);
    }

    #[test]
    fn persistent_overwrite_and_remove() {
        let store = PersistentStore::new(1);
        store.put(0, "k", 1.0.into()).unwrap();
        store.put(0, "k", 2.0.into()).unwrap();
        assert_eq!(store.get(0, "k").unwrap().into_scalar().unwrap(), 2.0);
        assert_eq!(store.remove(0, "k"), Some(Stored::Scalar(2.0)));
        assert!(!store.contains(0, "k"));
    }

    #[test]
    fn persistent_clear() {
        let store = PersistentStore::new(2);
        store.put(0, "a", 1.0.into()).unwrap();
        store.put(1, "b", 2.0.into()).unwrap();
        store.clear();
        assert!(!store.contains(0, "a"));
        assert!(!store.contains(1, "b"));
    }

    #[test]
    fn stable_store_shared_between_clones() {
        let s1 = StableStore::new();
        let s2 = s1.clone();
        let bytes = s1.put("ckpt/step", Stored::U64(vec![10]));
        assert_eq!(bytes, 8);
        assert_eq!(s2.get("ckpt/step").unwrap().into_u64().unwrap(), vec![10]);
        assert_eq!(s2.keys(), vec!["ckpt/step".to_string()]);
        assert_eq!(s2.total_bytes(), 8);
        s2.clear();
        assert!(s1.get("ckpt/step").is_none());
    }

    #[test]
    fn stable_store_remove() {
        let s = StableStore::new();
        s.put("a", Stored::Scalar(1.0));
        assert_eq!(s.remove("a"), Some(Stored::Scalar(1.0)));
        assert_eq!(s.remove("a"), None);
        assert!(!s.contains("a"));
    }
}
