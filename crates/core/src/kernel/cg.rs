//! The unified conjugate-gradient kernel: one solve shell (setup, policy
//! lifecycle, stop handling, outcome assembly) parameterized by a
//! [`CgStrategy`] that owns the recurrence and its reduction schedule.
//!
//! Three strategies reproduce the legacy silos:
//!
//! * [`PcgStep`] — the serial (preconditioned) recurrence with immediate
//!   dots, tracking `r·z`;
//! * [`FusedCgStep`] — the bulk-synchronous recurrence with **two blocking
//!   reductions** per iteration, tracking `r·r` (the distributed classic);
//! * [`PipelinedCgStep`] — the Ghysels–Vanroose recurrence with a **single
//!   nonblocking fused reduction** posted before the SpMV and completed
//!   after it.
//!
//! Policies hook each SpMV and iteration end. CG has no Arnoldi cycle to
//! discard, so on a detection whose response is `Restart` the kernel
//! rebuilds the recurrence from the current iterate (the residual recompute
//! plus whatever the strategy's `init` applies — one extra operator
//! application for the blocking recurrences, two for the pipelined one; a
//! corrupted-but-finite iterate is just a worse initial guess), capped like
//! the GMRES policy-restart backstop; `Abort` stops the solve with
//! `CorruptionDetected`; `RecordOnly` detections are counted and ignored.
//!
//! The distributed strategies carry policy check dots in the reductions
//! they already post (wants-dots negotiation): [`FusedCgStep`] appends them
//! to its `p·Ap` reduction, [`PipelinedCgStep`] to its single nonblocking
//! fused reduction — so skeptical SDC detection adds **zero** collectives
//! per iteration.

use resilient_runtime::Result;

use super::policy::{CheckVectors, DetectionResponse, PolicyStack, SolutionProbe, StackOutcome};
use super::space::{KrylovSpace, SerialSpace};
use super::{KernelOutcome, KernelReport, SolveProgress};
use crate::solvers::common::{Preconditioner, SolveOptions, StopReason};

/// What one CG iteration decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgOutcome {
    /// Iteration completed; keep going.
    Continue,
    /// Tolerance met (the strategy's own convergence point).
    Converged,
    /// `p·Ap ≤ 0` or a non-finite denominator: the recurrence broke down.
    Breakdown,
    /// The iteration produced NaN/Inf values.
    Diverged,
    /// A policy detected corruption and demands the given response
    /// (`Restart` or `Abort`; `RecordOnly` never surfaces here).
    Detected(DetectionResponse),
}

/// A CG iteration engine: owns the recurrence vectors and the reduction
/// schedule of one CG variant.
pub trait CgStrategy<S: KrylovSpace> {
    /// Set up the recurrence from the initial residual `r0 = b − A·x0`.
    fn init(
        &mut self,
        space: &mut S,
        b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()>;

    /// Perform one iteration (including its convergence test, iteration
    /// count and history updates, in the variant's legacy order).
    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome>;
}

/// A probe evaluating the true residual of the *current* iterate (CG
/// updates `x` every iteration, so no trial correction is needed).
struct CgProbe<'a, S: KrylovSpace> {
    b: &'a S::Vector,
    x: &'a S::Vector,
    /// ‖b‖ computed once at solve start (floored at `f64::MIN_POSITIVE`).
    bn: f64,
}

impl<'a, S: KrylovSpace> SolutionProbe<S> for CgProbe<'a, S> {
    fn local_len(&self, space: &S) -> usize {
        space.local_len(self.x)
    }

    fn trial_true_relres(&mut self, space: &mut S) -> Result<f64> {
        let ax = space.apply(self.x)?;
        let r = space.residual(self.b, &ax);
        let rn = space.norm(&r)?;
        Ok(rn / self.bn)
    }
}

/// Run the unified CG kernel.
pub fn run_cg<S: KrylovSpace, T: CgStrategy<S>>(
    space: &mut S,
    b: &S::Vector,
    x0: Option<S::Vector>,
    opts: &SolveOptions,
    strategy: &mut T,
    policies: &mut PolicyStack<'_, S>,
) -> Result<(KernelOutcome<S::Vector>, KernelReport)> {
    let mut x = x0.unwrap_or_else(|| space.zeros_like(b));
    let bn = space.norm(b)?.max(f64::MIN_POSITIVE);
    let mut st = SolveProgress::new(opts.tol, opts.max_iters, bn);
    let mut report = KernelReport::default();
    policies.on_solve_start(space, b)?;

    let ax = space.apply(&x)?;
    let r0 = space.residual(b, &ax);
    strategy.init(space, b, r0, &mut st)?;

    let mut reason = StopReason::MaxIterations;
    if st.relres <= opts.tol {
        reason = StopReason::Converged;
    } else {
        while st.iterations < opts.max_iters {
            match strategy.step(space, &mut x, policies, &mut st, b)? {
                CgOutcome::Continue => {}
                CgOutcome::Converged => {
                    reason = StopReason::Converged;
                    break;
                }
                CgOutcome::Breakdown => {
                    reason = StopReason::Breakdown;
                    break;
                }
                CgOutcome::Diverged => {
                    reason = StopReason::Diverged;
                    break;
                }
                CgOutcome::Detected(DetectionResponse::Restart) => {
                    report.policy_restarts += 1;
                    if report.policy_restarts > opts.max_iters.max(1) {
                        // A detection firing on every retry would rebuild the
                        // recurrence forever without consuming iterations;
                        // treat persistent corruption as terminal (the GMRES
                        // backstop).
                        reason = StopReason::CorruptionDetected;
                        break;
                    }
                    // CG has no Arnoldi cycle to discard: rebuild the
                    // recurrence from the current iterate instead. A
                    // corrupted-but-finite x is just a worse initial guess;
                    // a non-finite one surfaces as Diverged/Breakdown on the
                    // next step. Like the GMRES cycle-boundary residual,
                    // these rebuild applications run outside the SpMV hooks
                    // (and advance the space's application count), so only
                    // the next iteration's checks guard them.
                    let ax = space.apply(&x)?;
                    let r0 = space.residual(b, &ax);
                    strategy.init(space, b, r0, &mut st)?;
                    if st.relres <= opts.tol {
                        reason = StopReason::Converged;
                        break;
                    }
                }
                CgOutcome::Detected(_) => {
                    reason = StopReason::CorruptionDetected;
                    break;
                }
            }
        }
    }

    report.policy_overhead = policies.overhead_report();
    Ok((
        KernelOutcome {
            x,
            iterations: st.iterations,
            relative_residual: st.relres,
            reason,
            history: st.history,
            flops: space.accumulated_flops(),
        },
        report,
    ))
}

// ---------------------------------------------------------------------------
// Serial preconditioned CG
// ---------------------------------------------------------------------------

/// The serial (preconditioned) CG recurrence with immediate dots, tracking
/// `r·z`. Matches the legacy `solvers::cg::pcg` operation for operation,
/// including its cost model (`A` + `10n` FLOPs per iteration, charged before
/// the breakdown test).
pub struct PcgStep<'m, M: Preconditioner + ?Sized> {
    m: &'m M,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    rz: f64,
}

impl<'m, M: Preconditioner + ?Sized> PcgStep<'m, M> {
    /// Bind the preconditioner.
    pub fn new(m: &'m M) -> Self {
        Self {
            m,
            r: Vec::new(),
            z: Vec::new(),
            p: Vec::new(),
            rz: 0.0,
        }
    }
}

impl<'a, 'm, O, M> CgStrategy<SerialSpace<'a, O>> for PcgStep<'m, M>
where
    O: crate::solvers::common::Operator + ?Sized,
    M: Preconditioner + ?Sized,
{
    fn init(
        &mut self,
        _space: &mut SerialSpace<'a, O>,
        _b: &Vec<f64>,
        r0: Vec<f64>,
        st: &mut SolveProgress,
    ) -> Result<()> {
        self.r = r0;
        self.z = self.m.apply(&self.r);
        self.p = self.z.clone();
        self.rz = resilient_linalg::vector::dot(&self.r, &self.z);
        st.relres = resilient_linalg::vector::nrm2(&self.r) / st.bn;
        st.history.push(st.relres);
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut SerialSpace<'a, O>,
        x: &mut Vec<f64>,
        policies: &mut PolicyStack<'_, SerialSpace<'a, O>>,
        st: &mut SolveProgress,
        b: &Vec<f64>,
    ) -> Result<CgOutcome> {
        let n = self.p.len();
        match policies.before_spmv(space, &st.ctx(), &self.p)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let ap = space.apply(&self.p)?;
        space.charge_flops(10 * n);
        match policies.after_spmv(space, &st.ctx(), &self.p, &ap)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let pap = resilient_linalg::vector::dot(&self.p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return Ok(if pap.is_finite() {
                CgOutcome::Breakdown
            } else {
                CgOutcome::Diverged
            });
        }
        let alpha = self.rz / pap;
        resilient_linalg::vector::axpy(alpha, &self.p, x);
        resilient_linalg::vector::axpy(-alpha, &ap, &mut self.r);
        st.relres = resilient_linalg::vector::nrm2(&self.r) / st.bn;
        st.iterations += 1;
        st.history.push(st.relres);
        if resilient_linalg::vector::has_non_finite(&self.r) {
            return Ok(CgOutcome::Diverged);
        }
        if st.relres <= st.tol {
            return Ok(CgOutcome::Converged);
        }
        self.z = self.m.apply(&self.r);
        let rz_new = resilient_linalg::vector::dot(&self.r, &self.z);
        let beta = rz_new / self.rz;
        self.rz = rz_new;
        space.xpby(&self.z, beta, &mut self.p);
        let mut probe = CgProbe::<SerialSpace<'a, O>> { b, x, bn: st.bn };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}

// ---------------------------------------------------------------------------
// Bulk-synchronous CG (two blocking reductions per iteration)
// ---------------------------------------------------------------------------

/// The unpreconditioned CG recurrence tracking `r·r` with two blocking
/// global reductions per iteration — the structure whose latency
/// sensitivity §II-B of the paper describes. Matches the legacy
/// `rbsp::cg::dist_cg` operation for operation; also runs over serial
/// spaces (where the reductions are free).
#[derive(Debug, Default)]
pub struct FusedCgStep<V> {
    r: Option<V>,
    p: Option<V>,
    rr: f64,
}

impl<V> FusedCgStep<V> {
    /// New strategy.
    pub fn new() -> Self {
        Self {
            r: None,
            p: None,
            rr: 0.0,
        }
    }
}

impl<S: KrylovSpace> CgStrategy<S> for FusedCgStep<S::Vector> {
    fn init(
        &mut self,
        space: &mut S,
        _b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()> {
        self.rr = space.dot(&r0, &r0)?;
        self.p = Some(r0.clone());
        self.r = Some(r0);
        st.relres = self.rr.sqrt() / st.bn;
        st.history.push(st.relres);
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome> {
        // Convergence is evaluated at the top of the loop (from the previous
        // iteration's reduction), as in the legacy distributed solver.
        st.relres = self.rr.sqrt() / st.bn;
        if st.relres <= st.tol {
            return Ok(CgOutcome::Converged);
        }
        space.advance_extra_work()?;
        let p = self.p.as_mut().expect("initialized");
        let r = self.r.as_mut().expect("initialized");
        match policies.before_spmv(space, &st.ctx(), p)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let ap = space.apply(p)?;
        // Blocking reduction #1, carrying any policy check dots (wants-dots
        // negotiation). When checks are fused the after-SpMV hook runs
        // after it so the policies decide from already-global scalars; with
        // no requests the legacy hook-first order is kept, so a detection
        // still skips the reduction.
        let pap = {
            let avail = CheckVectors {
                spmv_input: Some(&*p),
                spmv_product: Some(&ap),
                basis_pair: None,
            };
            let mut check_pairs: Vec<(&S::Vector, &S::Vector)> = Vec::new();
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut check_pairs);
            if batch.is_empty() {
                // Legacy path, order and cost model untouched.
                match policies.after_spmv(space, &st.ctx(), p, &ap)? {
                    StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
                    StackOutcome::Recorded | StackOutcome::Continue => {}
                }
                space.dot(p, &ap)?
            } else {
                let mut pairs: Vec<(&S::Vector, &S::Vector)> = vec![(&*p, &ap)];
                pairs.extend(check_pairs);
                let all = space.fused_pairs(&pairs, batch.len())?;
                policies.consume_check_dots(&st.ctx(), &batch, &all[1..]);
                match policies.after_spmv(space, &st.ctx(), p, &ap)? {
                    StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
                    StackOutcome::Recorded | StackOutcome::Continue => {}
                }
                all[0]
            }
        };
        if pap <= 0.0 || !pap.is_finite() {
            return Ok(CgOutcome::Breakdown);
        }
        let alpha = self.rr / pap;
        space.axpy(alpha, p, x);
        space.axpy(-alpha, &ap, r);
        space.charge_flops(4 * space.local_len(r));
        // Blocking reduction #2.
        let rr_new = space.dot(r, r)?;
        let beta = rr_new / self.rr;
        self.rr = rr_new;
        space.xpby(r, beta, p);
        space.charge_flops(2 * space.local_len(p));
        st.iterations += 1;
        st.relres = self.rr.sqrt() / st.bn;
        st.history.push(st.relres);
        let mut probe = CgProbe::<S> { b, x, bn: st.bn };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}

// ---------------------------------------------------------------------------
// Pipelined CG (one nonblocking fused reduction per iteration)
// ---------------------------------------------------------------------------

/// Pipelined CG (Ghysels & Vanroose): algebraically equivalent to CG but
/// with a single nonblocking fused reduction per iteration, posted before
/// the SpMV and completed after it, so the reduction's latency hides behind
/// the matrix-vector product. Matches the legacy `rbsp::cg::pipelined_cg`.
#[derive(Debug, Default)]
pub struct PipelinedCgStep<V> {
    r: Option<V>,
    w: Option<V>,
    z: Option<V>,
    s: Option<V>,
    p: Option<V>,
    gamma_old: f64,
    alpha_old: f64,
    /// True until the first step after (re-)initialization: the recurrence
    /// must take the iteration-0 branch (β = 0) again after a policy
    /// restart rebuilt it from the current iterate.
    fresh: bool,
}

impl<V> PipelinedCgStep<V> {
    /// New strategy.
    pub fn new() -> Self {
        Self {
            r: None,
            w: None,
            z: None,
            s: None,
            p: None,
            gamma_old: 0.0,
            alpha_old: 0.0,
            fresh: true,
        }
    }
}

impl<S: KrylovSpace> CgStrategy<S> for PipelinedCgStep<S::Vector> {
    fn init(
        &mut self,
        space: &mut S,
        b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()> {
        self.w = Some(space.apply(&r0)?);
        self.z = Some(space.zeros_like(b)); // tracks A s
        self.s = Some(space.zeros_like(b)); // tracks A p
        self.p = Some(space.zeros_like(b));
        self.r = Some(r0);
        self.gamma_old = 0.0;
        self.alpha_old = 0.0;
        self.fresh = true;
        st.relres = f64::INFINITY;
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome> {
        let r = self.r.as_mut().expect("initialized");
        let w = self.w.as_mut().expect("initialized");
        // Fused local partial reductions γ = (r, r), δ = (w, r), posted as a
        // single nonblocking reduction that also carries any policy check
        // dots (wants-dots negotiation; the recurrence maintains w = A·r,
        // so (r, w) is the resolved input/product pair — fused check
        // decisions lag the overlapped SpMV by one step) ...
        let (pending, batch) = {
            let mut pairs: Vec<(&S::Vector, &S::Vector)> = vec![(&*r, &*r), (&*w, &*r)];
            let avail = CheckVectors {
                spmv_input: Some(&*r),
                spmv_product: Some(&*w),
                basis_pair: None,
            };
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut pairs);
            (space.start_dots_tagged(&pairs, batch.len())?, batch)
        };
        // ... and overlapped with the SpMV q = A·w and any extra work.
        space.advance_extra_work()?;
        match policies.before_spmv(space, &st.ctx(), w)? {
            StackOutcome::Act(resp) => {
                // Complete the posted reduction before abandoning the step
                // (detections are rank-symmetric, so every rank drains it):
                // an in-flight collective must be waited on, and the solve
                // may continue after a Restart-response detection.
                space.finish_dots(pending)?;
                return Ok(CgOutcome::Detected(resp));
            }
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let q = space.apply(w)?;
        let reduced = space.finish_dots(pending)?;
        policies.consume_check_dots(&st.ctx(), &batch, &reduced[2..]);
        match policies.after_spmv(space, &st.ctx(), w, &q)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let (gamma, delta) = (reduced[0], reduced[1]);

        st.relres = gamma.max(0.0).sqrt() / st.bn;
        if st.history.is_empty() {
            st.history.push(st.relres);
        }
        if st.relres <= st.tol || !st.relres.is_finite() {
            return Ok(if st.relres <= st.tol {
                CgOutcome::Converged
            } else {
                CgOutcome::Diverged
            });
        }

        let (alpha, beta);
        if !self.fresh {
            beta = gamma / self.gamma_old;
            alpha = gamma / (delta - beta * gamma / self.alpha_old);
        } else {
            beta = 0.0;
            alpha = gamma / delta;
        }
        if !alpha.is_finite() || alpha == 0.0 {
            return Ok(CgOutcome::Breakdown);
        }

        // Recurrence updates (all local): z ← q + βz, s ← w + βs,
        // p ← r + βp, x ← x + αp, r ← r − αs, w ← w − αz.
        let z = self.z.as_mut().expect("initialized");
        let s = self.s.as_mut().expect("initialized");
        let p = self.p.as_mut().expect("initialized");
        space.xpby(&q, beta, z);
        space.xpby(w, beta, s);
        space.xpby(r, beta, p);
        space.axpy(alpha, p, x);
        space.axpy(-alpha, s, r);
        space.axpy(-alpha, z, w);
        space.charge_flops(12 * space.local_len(p));

        self.gamma_old = gamma;
        self.alpha_old = alpha;
        self.fresh = false;
        st.iterations += 1;
        st.history.push(st.relres);
        let mut probe = CgProbe::<S> { b, x, bn: st.bn };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(r) => return Ok(CgOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}
