//! Experiment E2 — ABFT checksum kernels (SkP, §III-A): detection, location
//! and correction coverage plus runtime overhead of Huang–Abraham checksums.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilience::skeptical::{
    abft_gemm_trial, abft_spmv_trial, encode_spmv, AbftOutcome, AbftStats,
};
use resilient_bench::{fmt_ratio, Table};
use resilient_linalg::{checksummed_gemm, poisson2d, DenseMatrix};
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "E2: ABFT checksum coverage (one random bit flip per trial)",
        &[
            "kernel",
            "bit class",
            "trials",
            "corrected%",
            "detected%",
            "missed-harmful%",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let a = DenseMatrix::random(48, 48, &mut rng);
    let b = DenseMatrix::random(48, 48, &mut rng);
    let spmv_matrix = poisson2d(24, 24);
    let encoded = encode_spmv(&spmv_matrix);
    let x: Vec<f64> = (0..spmv_matrix.nrows())
        .map(|i| 1.0 + (i % 7) as f64 * 0.3)
        .collect();

    let classes: Vec<(&str, Vec<u32>)> = vec![
        ("mantissa-low", vec![0, 8, 16, 24]),
        ("mantissa-high", vec![32, 40, 48]),
        ("exponent", vec![53, 57, 61]),
        ("sign", vec![63]),
    ];
    for (label, bits) in &classes {
        let mut gemm_stats = AbftStats::default();
        let mut spmv_stats = AbftStats::default();
        for &bit in bits {
            for s in 0..10u64 {
                gemm_stats.record(abft_gemm_trial(
                    &a,
                    &b,
                    true,
                    bit,
                    1e-10,
                    s * 64 + bit as u64,
                ));
                spmv_stats.record(abft_spmv_trial(
                    &encoded,
                    &x,
                    true,
                    bit,
                    1e-9,
                    s * 64 + bit as u64,
                ));
            }
        }
        for (kernel, stats) in [("GEMM", &gemm_stats), ("SpMV", &spmv_stats)] {
            let pct = |x: usize| format!("{:.0}%", 100.0 * x as f64 / stats.trials.max(1) as f64);
            table.row(vec![
                kernel.to_string(),
                label.to_string(),
                stats.trials.to_string(),
                pct(stats.corrected),
                pct(stats.corrected + stats.detected_only),
                pct(stats.missed),
            ]);
        }
    }
    table.emit("e2_abft_coverage");

    // Runtime overhead of the checksummed kernels versus plain ones.
    let mut overhead = Table::new(
        "E2b: ABFT runtime overhead (wall time, this machine)",
        &["kernel", "size", "plain", "checksummed", "overhead"],
    );
    for &sz in &[64usize, 128, 192] {
        let a = DenseMatrix::random(sz, sz, &mut rng);
        let b = DenseMatrix::random(sz, sz, &mut rng);
        let t0 = Instant::now();
        let reps = 3;
        for _ in 0..reps {
            std::hint::black_box(a.gemm(&b));
        }
        let plain = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(checksummed_gemm(&a, &b));
        }
        let protected = t1.elapsed().as_secs_f64() / reps as f64;
        overhead.row(vec![
            "GEMM".into(),
            format!("{sz}x{sz}"),
            format!("{:.2} ms", plain * 1e3),
            format!("{:.2} ms", protected * 1e3),
            fmt_ratio(protected / plain.max(1e-12)),
        ]);
    }
    for &grid in &[40usize, 80] {
        let m = poisson2d(grid, grid);
        let enc = encode_spmv(&m);
        let x = vec![1.0; m.nrows()];
        let reps = 50;
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(m.spmv(&x));
        }
        let plain = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(enc.spmv_checked(&x, 1e-12));
        }
        let protected = t1.elapsed().as_secs_f64() / reps as f64;
        overhead.row(vec![
            "SpMV".into(),
            format!("poisson2d {grid}x{grid}"),
            format!("{:.3} ms", plain * 1e3),
            format!("{:.3} ms", protected * 1e3),
            fmt_ratio(protected / plain.max(1e-12)),
        ]);
    }
    let _ = AbftOutcome::CleanPass; // silence unused-import lint paths in docs builds
    overhead.emit("e2_abft_overhead");
}
