//! # resilient-runtime
//!
//! A simulated SPMD message-passing runtime providing the system support the
//! four resilience-enabling programming models of Heroux, *"Toward Resilient
//! Algorithms and Applications"* (HPDC 2013), require:
//!
//! * **Relaxed bulk-synchronous programming (RBSP)** — blocking *and*
//!   nonblocking (MPI-3 style) collectives, neighborhood collectives, and a
//!   per-rank performance-variability (noise) model, all accounted in
//!   *virtual time* with an α–β latency model so that latency-hiding
//!   algorithms can be evaluated deterministically on a laptop.
//! * **Local-failure local-recovery (LFLR)** — fail-stop process-failure
//!   injection, ULFM-style failure notification (`ProcFailed` / `Revoked`
//!   errors instead of hangs), replacement-rank spawning, a recovery
//!   rendezvous, communicator shrinking, and a persistent per-rank store
//!   that survives rank death.
//! * **Checkpoint/restart (the baseline)** — a job-global stable store with
//!   a bandwidth cost model and an abort-the-whole-job failure policy, so
//!   CPR can be compared quantitatively against LFLR.
//!
//! Ranks are OS threads; messages travel over in-process mailboxes. The
//! performance model is *virtual*: computation is charged explicitly
//! ([`Comm::advance`], [`Comm::charge_flops`]) and communication costs come
//! from the configured [`LatencyModel`], so results do not depend on the
//! host machine's core count.
//!
//! ## Quick start
//!
//! ```
//! use resilient_runtime::{ReduceOp, Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig::fast());
//! let job = runtime.run(8, |comm| {
//!     // SPMD code: every rank executes this closure.
//!     let local = (comm.rank() + 1) as f64;
//!     let total = comm.allreduce_scalar(ReduceOp::Sum, local)?;
//!     Ok(total)
//! });
//! assert_eq!(job.unwrap_all(), vec![36.0; 8]);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod collective;
pub mod comm;
pub mod config;
pub mod engine;
pub mod error;
pub mod failure;
pub mod health;
pub mod launcher;
pub mod mailbox;
pub mod message;
pub mod neighborhood;
pub mod noise;
pub mod nonblocking;
pub mod persistent;
pub mod stats;
pub mod topology;
pub mod ulfm;
pub mod world;

pub use clock::VirtualClock;
pub use collective::ReduceOp;
pub use comm::{Comm, RankKilled};
pub use config::{
    FailureConfig, FailurePolicy, LatencyModel, NoiseConfig, NoiseDistribution, RuntimeConfig,
};
pub use error::{Result, RuntimeError};
pub use health::FailureEvent;
pub use launcher::{JobResult, Runtime};
pub use message::{ANY_SOURCE, ANY_TAG};
pub use nonblocking::{CollectiveOutcome, PendingCollective};
pub use persistent::{PersistentStore, StableStore, Stored};
pub use stats::{JobStats, RankStats};
pub use topology::{BlockDistribution, CartTopology};
pub use ulfm::{RecoveryInfo, ShrinkInfo};
