//! The unified Krylov kernel: one iteration core, composable execution
//! spaces, dot strategies and resilience policies.
//!
//! The paper's central claim is that resilient programming models are
//! *orthogonal strategies* an application composes. This module is the
//! architecture that makes that true in code. It decomposes every Krylov
//! solver in the suite into three independent axes:
//!
//! 1. **Space** ([`KrylovSpace`]) — where vectors live and what reductions
//!    cost: serial slices ([`SerialSpace`]) or block-distributed vectors over
//!    the simulated runtime ([`DistSpace`]).
//! 2. **Dot strategy** — how inner products are scheduled:
//!    modified Gram–Schmidt with immediate dots ([`MgsOrtho`]), classical
//!    Gram–Schmidt with one fused blocking reduction ([`CgsOrtho`]), or the
//!    p(1)-pipelined formulation that overlaps a single nonblocking
//!    reduction with the next SpMV ([`PipelinedOrtho`]); for CG the analogous
//!    [`PcgStep`], [`FusedCgStep`] and [`PipelinedCgStep`].
//! 3. **Resilience policies** ([`ResiliencePolicy`], [`PolicyStack`]) —
//!    skeptical invariant checks, ABFT checksum verification, iterate
//!    rollback — attached through hooks (`before_spmv`, `after_spmv`,
//!    `after_orthogonalization`, `on_iteration`, `on_failure`) that every
//!    iteration engine honours.
//! 4. **Preconditioner** ([`SpacePreconditioner`]) — applied through the
//!    space so its cost is charged like any other kernel arithmetic:
//!    [`IdentityPrecond`] (bit-identical to no preconditioning), serial
//!    adapters, and the collective-free distributed [`BlockJacobi`]. CG
//!    strategies hold it directly (`PcgStep`, and the preconditioned
//!    variants of `FusedCgStep`/`PipelinedCgStep`); GMRES strategies take
//!    it through the flexible right-preconditioning slot ([`RightPrecond`]).
//!
//! The five legacy entry points (`solvers::{cg,gmres,fgmres}`,
//! `rbsp::{cg,gmres}`, `srp::ft_gmres`, `skeptical::sdc_gmres`) are thin
//! presets over this kernel and preserve their public signatures, numerical
//! behaviour and cost accounting. Combinations that were previously
//! impossible — pipelined GMRES *with* SDC detection, FT-GMRES *with*
//! ABFT-checked products — are presets too; see [`compose`]. The [`lflr`]
//! module layers the paper's local-failure-local-recovery protocol over
//! the same axes: [`IterateRollbackPolicy`] persists per-rank snapshots
//! through `Comm::persist`, and the [`lflr`] presets resume a distributed
//! preconditioned solve mid-stream after a rank is killed and replaced.
//!
//! One intentional accounting deviation from the legacy silos: when a solve
//! aborts on a detected corruption, the final verification residual is now
//! charged to the solver (the legacy skeptical solver computed it for free).

pub mod block;
pub mod cache;
pub mod cg;
pub mod compose;
pub mod gmres;
pub mod guard;
pub mod lflr;
pub mod policy;
pub mod precond;
pub mod skeptic;
pub mod space;

pub use block::{run_block_cg, BlockCgMode, BlockOutcome};
pub use cache::SetupCache;
pub use cg::{run_cg, CgOutcome, CgStrategy, FusedCgStep, PcgStep, PipelinedCgStep};
pub use compose::{
    ft_gmres_abft, pipelined_skeptical_cg, pipelined_skeptical_gmres, pipelined_skeptical_pcg,
    pipelined_skeptical_pgmres, AbftSpmvPolicy, ComposedDistReport, FtGmresAbftReport,
};
pub use gmres::{
    run_gmres, CgsOrtho, FlexibleRight, GmresCycle, GmresFlavor, MgsOrtho, OrthoStrategy,
    PipelinedOrtho, StepOutcome,
};
pub use guard::PrecondGuardPolicy;
pub use lflr::{
    lflr_dist_pcg, lflr_dist_pgmres, lflr_pipelined_pcg, lflr_pipelined_pgmres, KrylovLflrConfig,
    KrylovLflrReport,
};
pub use policy::{
    snapshot_key, CheckDot, CheckDotBatch, CheckOperand, CheckVectors, DetectionResponse,
    FailureEvent, IterCtx, IterateRollbackPolicy, NoopPolicy, PolicyAction, PolicyOverhead,
    PolicyStack, RecoveryAction, ResiliencePolicy, SolutionProbe, StackOutcome, SNAPSHOT_META_KEY,
};
pub use precond::{BlockJacobi, IdentityPrecond, RightPrecond, SerialPrecond, SpacePreconditioner};
pub use skeptic::SkepticalPolicy;
pub use space::{DistSpace, KrylovSpace, PendingDots, SerialSpace, SpmvFault, ThreadSpace};

use crate::solvers::common::{SolveOutcome, StopReason};
use policy::IterCtx as Ctx;

/// Result of a kernel-level solve, generic over the vector type of the
/// space it ran in.
#[derive(Debug, Clone)]
pub struct KernelOutcome<V> {
    /// Final iterate.
    pub x: V,
    /// Iterations performed (total, across restarts).
    pub iterations: usize,
    /// Final relative residual (true or recurrence estimate, matching the
    /// preset's legacy semantics).
    pub relative_residual: f64,
    /// Why the solve stopped.
    pub reason: StopReason,
    /// Relative residual after each iteration.
    pub history: Vec<f64>,
    /// Solver FLOPs (serial spaces; distributed spaces account in virtual
    /// time and report 0).
    pub flops: usize,
}

impl KernelOutcome<Vec<f64>> {
    /// Convert into the serial solvers' public outcome type.
    pub fn into_solve_outcome(self) -> SolveOutcome {
        SolveOutcome {
            x: self.x,
            iterations: self.iterations,
            relative_residual: self.relative_residual,
            reason: self.reason,
            history: self.history,
            flops: self.flops,
        }
    }
}

impl KernelOutcome<crate::distributed::DistVector> {
    /// Convert into the distributed solvers' public outcome type.
    pub fn into_dist_outcome(self, tol: f64) -> crate::rbsp::DistSolveOutcome {
        crate::rbsp::DistSolveOutcome {
            converged: self.relative_residual <= tol,
            x: self.x,
            iterations: self.iterations,
            relative_residual: self.relative_residual,
            history: self.history,
        }
    }
}

/// Mutable solve-progress state shared between the kernel and its iteration
/// strategies.
#[derive(Debug, Clone)]
pub struct SolveProgress {
    /// Iterations performed so far.
    pub iterations: usize,
    /// Steps completed in the current restart cycle.
    pub cycle_step: usize,
    /// Restart-cycle index.
    pub cycle: usize,
    /// Current relative residual.
    pub relres: f64,
    /// Solve tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// ‖b‖ (floored at `f64::MIN_POSITIVE`).
    pub bn: f64,
    /// Relative residual history.
    pub history: Vec<f64>,
}

impl SolveProgress {
    fn new(tol: f64, max_iters: usize, bn: f64) -> Self {
        Self {
            iterations: 0,
            cycle_step: 0,
            cycle: 0,
            relres: f64::INFINITY,
            tol,
            max_iters,
            bn,
            history: Vec::new(),
        }
    }

    /// The read-only hook context for the current state.
    pub fn ctx(&self) -> Ctx {
        Ctx {
            iteration: self.iterations,
            cycle_step: self.cycle_step,
            cycle: self.cycle,
            relres: self.relres,
            tol: self.tol,
        }
    }
}

/// Aggregate report of one kernel solve beyond the outcome: flexible
/// preconditioning statistics and per-policy overhead.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Flexible (inner) preconditioner applications.
    pub inner_applications: usize,
    /// Inner results rejected by the outer skeptical validity check.
    pub rejected_inner_results: usize,
    /// Cycle restarts caused by policy detections.
    pub policy_restarts: usize,
    /// Rollbacks performed by `on_failure` recovery policies.
    pub failure_recoveries: usize,
    /// Per-policy overhead, in stack order (filled when the solve returns).
    pub policy_overhead: Vec<PolicyOverhead>,
}
