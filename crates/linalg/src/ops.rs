//! The device-op layer: node-local kernels behind a pluggable backend.
//!
//! Every piece of node-local arithmetic a Krylov iteration performs — dots
//! (single and fused), axpy-family updates, scaling, local SpMV, the
//! triangular-solve primitives of a block-Jacobi apply — is expressed
//! against the [`LocalOps`] trait. The execution spaces of the core crate
//! hold a `&'static dyn LocalOps` and route all hot-loop arithmetic
//! through it, which gives the codebase one seam where a faster (or
//! offloaded) implementation can be swapped in without touching solver
//! logic — the same boundary cubecl draws between linalg kernels and its
//! CUDA/HIP/wgpu runtimes.
//!
//! Two backends ship today:
//!
//! * [`scalar_ops`] — the original portable kernels of [`crate::vector`],
//!   [`crate::sparse`] and [`crate::sell`]; the bit-compat reference.
//! * [`simd_ops`] — explicit AVX/AVX2 kernels (x86-64 with runtime feature
//!   detection; any other machine silently gets the scalar backend).
//!
//! # The lane width is part of the algorithm, not the backend
//!
//! [`crate::vector::dot`] reduces through **four independent accumulator
//! chains** (`acc[j] += x[4k+j]·y[4k+j]`, combined as
//! `(acc0+acc1)+(acc2+acc3)` plus a sequential tail). That reassociation
//! is the published spec of every global reduction in the suite: rank
//! symmetry, the parity tests, and the rollback/SDC experiments all pin
//! their results to it. A backend is therefore **required** to reproduce
//! it bit-for-bit — which is why the SIMD backend uses exactly one 4-lane
//! `f64` register as its accumulator (lane *j* is chain *j*), performs no
//! FMA contraction (fused rounding differs from mul-then-add), and why an
//! 8-lane AVX-512 variant would be a *different algorithm*, not a faster
//! backend. Order-sensitive primitives ([`LocalOps::msub_seq`], the CSR
//! row accumulation) are specified sequential and must stay sequential in
//! every backend.
//!
//! Backend selection: [`auto_ops`] picks the SIMD backend when the CPU
//! supports it, unless the `RESILIENT_FORCE_SCALAR` environment variable
//! is set to `1`/`true` (the scalar-fallback CI job sets it).

use std::sync::OnceLock;

use crate::sell::{SellMatrix, SELL_C};
use crate::sparse::CsrMatrix;
use crate::vector;

/// Node-local compute backend: the device-op surface the execution spaces
/// call through. All methods are **bit-exact across backends** (see the
/// module docs for the reassociation spec that makes this possible).
///
/// Implementations must be stateless (`Sync`, shared as `&'static`): any
/// device handles or scratch live behind interior mechanisms of the
/// backend, not in the solver.
pub trait LocalOps: Sync {
    /// Backend identifier for reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Dot product `x·y` through the 4-chain reassociation spec.
    fn dot(&self, x: &[f64], y: &[f64]) -> f64;

    /// Fused multi-dot: `out[i] = pairs[i].0 · pairs[i].1`, each pair
    /// reduced through its own 4-chain spec (bit-identical to calling
    /// [`LocalOps::dot`] per pair). Backends may — and the SIMD backend
    /// does — walk all pairs in one pass so shared vectors are read from
    /// memory once: the fused reductions of the pipelined strategies
    /// (`(r,u),(w,u),(r,r)`) and the CGS orthogonalization (`(v_i, w)` for
    /// the whole basis) share operands heavily, which is where large-`n`
    /// bandwidth is actually saved.
    ///
    /// # Panics
    /// Panics if `out.len() != pairs.len()` or any pair's slices differ in
    /// length.
    fn dot_pairs(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]);

    /// Euclidean norm `‖x‖₂ = √(x·x)`.
    fn nrm2(&self, x: &[f64]) -> f64 {
        self.dot(x, x).sqrt()
    }

    /// `y ← y + a·x`.
    fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]);

    /// `x ← a·x`.
    fn scale(&self, a: f64, x: &mut [f64]);

    /// `y ← x + b·y` (the CG direction update).
    fn xpby(&self, x: &[f64], b: f64, y: &mut [f64]);

    /// `w ← a·x + b·y`, writing into a caller-owned buffer.
    fn waxpby_into(&self, a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]);

    /// Strictly sequential multiply-subtract fold:
    /// `s − u[0]·x[0] − u[1]·x[1] − …`, returning the final value.
    ///
    /// This is the inner recurrence of triangular back-substitution, whose
    /// per-element update order is observable in the last bit — so unlike
    /// the reductions above it is **specified sequential** and no backend
    /// may reassociate it.
    fn msub_seq(&self, s: f64, u: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), x.len());
        let mut s = s;
        for (uk, xk) in u.iter().zip(x) {
            s -= uk * xk;
        }
        s
    }

    /// Local CSR SpMV `y = A·x`. Per-row accumulation is sequential in
    /// entry order (part of the spec); CSR's serial data dependences leave
    /// SIMD backends nothing to vectorize without reassociating, which is
    /// exactly what the SELL-C-σ layout exists to fix.
    fn spmv_csr(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]);

    /// Local SELL-C-σ SpMV `y = A·x`, bit-identical to
    /// [`LocalOps::spmv_csr`] on the equivalent matrix: rows keep their
    /// CSR-order sequential accumulation, and padding slots are masked
    /// out of the accumulator rather than added as zeros.
    fn spmv_sell(&self, a: &SellMatrix, x: &[f64], y: &mut [f64]);

    // -- blocked (multi-RHS) kernels ---------------------------------------
    //
    // Multi-vectors are packed column-major: `k` columns of equal length,
    // column `c` occupying `v[c*n..(c+1)*n]`. Every blocked kernel is
    // **specified** as k independent single-RHS runs — column `c` of the
    // output must be bit-identical to calling the single-RHS kernel on
    // column `c` alone — so backends may only amortize *memory traffic*
    // (one matrix sweep, one pass over shared operands), never reassociate
    // across columns. The default implementations below are that spec,
    // literally: they loop the single-RHS methods, so parity holds by
    // construction for any backend that does not override them.

    /// Blocked CSR SpMM: `y[c] = A·x[c]` for each of the `k` column-major
    /// columns (`x.len() == k·ncols`, `y.len() == k·nrows`). One matrix
    /// sweep feeds all `k` output columns; per-row accumulation stays
    /// sequential in entry order per column (the [`LocalOps::spmv_csr`]
    /// spec).
    fn spmm_csr(&self, a: &CsrMatrix, k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), k * a.ncols(), "spmm: input dimension mismatch");
        assert_eq!(y.len(), k * a.nrows(), "spmm: output dimension mismatch");
        let (nr, nc) = (a.nrows(), a.ncols());
        for c in 0..k {
            self.spmv_csr(a, &x[c * nc..(c + 1) * nc], &mut y[c * nr..(c + 1) * nr]);
        }
    }

    /// Blocked SELL-C-σ SpMM, bit-identical to [`LocalOps::spmm_csr`] on
    /// the equivalent matrix (column `c` is exactly one
    /// [`LocalOps::spmv_sell`] run).
    fn spmm_sell(&self, a: &SellMatrix, k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), k * a.ncols(), "spmm: input dimension mismatch");
        assert_eq!(y.len(), k * a.nrows(), "spmm: output dimension mismatch");
        let (nr, nc) = (a.nrows(), a.ncols());
        for c in 0..k {
            self.spmv_sell(a, &x[c * nc..(c + 1) * nc], &mut y[c * nr..(c + 1) * nr]);
        }
    }

    /// Blocked fused multi-dot: for each of the `m = pairs.len()`
    /// multi-vector pairs and each of the `k` columns,
    /// `out[i*k + c] = pairs[i].0[col c] · pairs[i].1[col c]` — k×m dot
    /// partials in one call, each reduced through its own 4-chain spec
    /// (bit-identical to [`LocalOps::dot`] per column). This is the local
    /// half of the block-Krylov batched reduction: one call produces every
    /// recurrence scalar of a k-RHS iteration.
    fn dot_blocks(&self, k: usize, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            k * pairs.len(),
            "dot_blocks: output length mismatch"
        );
        if k == 0 {
            return;
        }
        for ((x, y), o) in pairs.iter().zip(out.chunks_exact_mut(k)) {
            assert_eq!(x.len(), y.len(), "dot_blocks: length mismatch");
            assert_eq!(x.len() % k, 0, "dot_blocks: ragged multi-vector");
            let n = x.len() / k;
            for (c, oc) in o.iter_mut().enumerate() {
                *oc = self.dot(&x[c * n..(c + 1) * n], &y[c * n..(c + 1) * n]);
            }
        }
    }

    /// Blocked axpy with per-column coefficients:
    /// `y[c] ← y[c] + alphas[c]·x[c]` for each of the `k = alphas.len()`
    /// columns.
    fn axpy_blocks(&self, alphas: &[f64], x: &[f64], y: &mut [f64]) {
        let k = alphas.len();
        assert_eq!(x.len(), y.len(), "axpy_blocks: length mismatch");
        if k == 0 {
            return;
        }
        assert_eq!(x.len() % k, 0, "axpy_blocks: ragged multi-vector");
        let n = x.len() / k;
        for (c, &a) in alphas.iter().enumerate() {
            self.axpy(a, &x[c * n..(c + 1) * n], &mut y[c * n..(c + 1) * n]);
        }
    }

    /// Blocked xpby with per-column coefficients:
    /// `y[c] ← x[c] + betas[c]·y[c]` (the block-CG direction update).
    fn xpby_blocks(&self, x: &[f64], betas: &[f64], y: &mut [f64]) {
        let k = betas.len();
        assert_eq!(x.len(), y.len(), "xpby_blocks: length mismatch");
        if k == 0 {
            return;
        }
        assert_eq!(x.len() % k, 0, "xpby_blocks: ragged multi-vector");
        let n = x.len() / k;
        for (c, &b) in betas.iter().enumerate() {
            self.xpby(&x[c * n..(c + 1) * n], b, &mut y[c * n..(c + 1) * n]);
        }
    }

    /// Blocked waxpby with per-column coefficients:
    /// `w[c] ← a[c]·x[c] + b[c]·y[c]`, into a caller-owned multi-vector.
    fn waxpby_blocks(&self, a: &[f64], x: &[f64], b: &[f64], y: &[f64], w: &mut [f64]) {
        let k = a.len();
        assert_eq!(b.len(), k, "waxpby_blocks: coefficient length mismatch");
        assert_eq!(x.len(), y.len(), "waxpby_blocks: length mismatch");
        assert_eq!(x.len(), w.len(), "waxpby_blocks: output length mismatch");
        if k == 0 {
            return;
        }
        assert_eq!(x.len() % k, 0, "waxpby_blocks: ragged multi-vector");
        let n = x.len() / k;
        for c in 0..k {
            self.waxpby_into(
                a[c],
                &x[c * n..(c + 1) * n],
                b[c],
                &y[c * n..(c + 1) * n],
                &mut w[c * n..(c + 1) * n],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked one-sweep kernels (sequential spec, shared by both backends)
// ---------------------------------------------------------------------------

/// One-sweep blocked CSR SpMM: each matrix row is read once and feeds all
/// `k` output columns (the row's entries stay in L1 across the column
/// loop), so matrix memory traffic is paid once instead of `k` times. Per
/// column the accumulation is the sequential entry-order sum of the
/// single-RHS spec — column `c` is bit-identical to `spmv_into` on column
/// `c` alone.
fn spmm_csr_sweep(a: &CsrMatrix, k: usize, x: &[f64], y: &mut [f64]) {
    let (nr, nc) = (a.nrows(), a.ncols());
    for i in 0..nr {
        let (cols, vals) = a.row(i);
        for c in 0..k {
            let xc = &x[c * nc..(c + 1) * nc];
            let mut sum = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                sum += v * xc[j];
            }
            y[c * nr + i] = sum;
        }
    }
}

/// One-sweep blocked SELL-C-σ SpMM: each chunk's packed values and column
/// indices are read once per chunk and feed all `k` columns; per column
/// and lane the accumulation is exactly the scalar single-RHS SELL kernel.
fn spmm_sell_sweep(a: &SellMatrix, k: usize, x: &[f64], y: &mut [f64]) {
    let chunk_ptr = a.chunk_ptr();
    let cols = a.cols();
    let vals = a.vals();
    let perm = a.perm();
    let lens = a.lens();
    let (nr, nc) = (a.nrows(), a.ncols());
    for (ch, &base) in chunk_ptr[..chunk_ptr.len() - 1].iter().enumerate() {
        for c in 0..k {
            let xc = &x[c * nc..(c + 1) * nc];
            for lane in 0..SELL_C {
                let p = ch * SELL_C + lane;
                if p >= nr {
                    break;
                }
                let mut sum = 0.0;
                for step in 0..lens[p] as usize {
                    let slot = base + step * SELL_C + lane;
                    sum += vals[slot] * xc[cols[slot] as usize];
                }
                y[c * nr + perm[p] as usize] = sum;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar backend
// ---------------------------------------------------------------------------

/// The portable reference backend: delegates to the original kernels in
/// [`crate::vector`] / [`crate::sparse`] / [`crate::sell`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarOps;

impl LocalOps for ScalarOps {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        vector::dot(x, y)
    }

    fn dot_pairs(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        assert_eq!(pairs.len(), out.len(), "dot_pairs: output length mismatch");
        for (o, (x, y)) in out.iter_mut().zip(pairs) {
            *o = vector::dot(x, y);
        }
    }

    fn nrm2(&self, x: &[f64]) -> f64 {
        vector::nrm2(x)
    }

    fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        vector::axpy(a, x, y);
    }

    fn scale(&self, a: f64, x: &mut [f64]) {
        vector::scale(a, x);
    }

    fn xpby(&self, x: &[f64], b: f64, y: &mut [f64]) {
        vector::xpby(x, b, y);
    }

    fn waxpby_into(&self, a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
        vector::waxpby_into(a, x, b, y, w);
    }

    fn spmv_csr(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        a.spmv_into(x, y);
    }

    fn spmv_sell(&self, a: &SellMatrix, x: &[f64], y: &mut [f64]) {
        a.spmv_into(x, y);
    }

    fn spmm_csr(&self, a: &CsrMatrix, k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), k * a.ncols(), "spmm: input dimension mismatch");
        assert_eq!(y.len(), k * a.nrows(), "spmm: output dimension mismatch");
        spmm_csr_sweep(a, k, x, y);
    }

    fn spmm_sell(&self, a: &SellMatrix, k: usize, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), k * a.ncols(), "spmm: input dimension mismatch");
        assert_eq!(y.len(), k * a.nrows(), "spmm: output dimension mismatch");
        spmm_sell_sweep(a, k, x, y);
    }
}

// ---------------------------------------------------------------------------
// SIMD backend (x86-64 AVX/AVX2)
// ---------------------------------------------------------------------------

// Miri has no AVX support; under it the suite runs the scalar backend only.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    //! Explicit AVX/AVX2 kernels. Every kernel mirrors the scalar spec
    //! lane for lane: one 4-lane accumulator register *is* the 4 chains of
    //! `vector::dot`, element-wise ops are trivially lane-exact, and no
    //! kernel uses FMA (contracted rounding would break bit parity).

    use std::arch::x86_64::*;

    use super::{LocalOps, ScalarOps};
    use crate::sell::{SellMatrix, SELL_C};
    use crate::sparse::CsrMatrix;

    /// How far ahead (in elements) the streaming kernels prefetch. 64
    /// elements = 512 B = 8 cache lines: far enough to cover DRAM latency
    /// at one 32-B step per cycle, near enough not to thrash L1.
    const PF: usize = 64;

    /// The AVX/AVX2 backend. Constructed only behind a runtime
    /// `is_x86_feature_detected!` check (see [`super::simd_ops`]), which is
    /// what makes the `unsafe` target-feature calls inside sound.
    #[derive(Debug, Clone, Copy, Default)]
    pub(super) struct SimdOps;

    pub(super) fn available() -> bool {
        is_x86_feature_detected!("avx") && is_x86_feature_detected!("avx2")
    }

    // SAFETY: contract — AVX must be available (the `LocalOps` impl below
    // is only reachable through `simd_ops`' runtime detection) and `x`/`y`
    // must have equal length.
    #[target_feature(enable = "avx")]
    unsafe fn dot_avx(x: &[f64], y: &[f64]) -> f64 {
        // SAFETY: `split <= n`, so every 4-wide load at `i < split` is in
        // bounds of both slices; the prefetch pointers are formed with
        // `wrapping_add` and never dereferenced.
        unsafe {
            let n = x.len();
            let split = n - n % 4;
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            let mut acc = _mm256_setzero_pd();
            let mut i = 0;
            while i < split {
                // Prefetch may point past the end: that is fine for the
                // hardware (prefetch never faults) and the pointers are formed
                // with `wrapping_add`, which has no in-bounds requirement.
                _mm_prefetch::<_MM_HINT_T0>(xp.wrapping_add(i + PF) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(yp.wrapping_add(i + PF) as *const i8);
                let prod = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
                acc = _mm256_add_pd(acc, prod);
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            let tail: f64 = x[split..].iter().zip(&y[split..]).map(|(a, b)| a * b).sum();
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
        }
    }

    /// Fused multi-dot over up to `GROUP` pairs per memory pass: one
    /// accumulator register per pair, all pairs advanced together so a
    /// vector shared between pairs is loaded once per 4 elements instead
    /// of once per pair.
    const GROUP: usize = 8;

    /// One group of at most [`GROUP`] pairs, all sharing one slice length:
    /// the fixed-width inner kernel both [`dot_pairs_avx`] and the blocked
    /// `dot_blocks` drive. Arithmetic per pair is exactly [`dot_avx`]'s
    /// 4-chain accumulator, so grouping changes memory traffic only.
    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`), `group` is non-empty with at most `GROUP` entries, and
    // every slice in it shares one common length.
    #[target_feature(enable = "avx")]
    unsafe fn dot_group_avx(group: &[(&[f64], &[f64])], outs: &mut [f64]) {
        // SAFETY: all slices have length `n` (caller-checked), so the
        // 4-wide loads at `i < split <= n` are in bounds for every pair.
        unsafe {
            let n = group[0].0.len();
            let split = n - n % 4;
            let mut acc = [_mm256_setzero_pd(); GROUP];
            let mut i = 0;
            while i < split {
                for (t, (x, y)) in group.iter().enumerate() {
                    let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                    let yv = _mm256_loadu_pd(y.as_ptr().add(i));
                    acc[t] = _mm256_add_pd(acc[t], _mm256_mul_pd(xv, yv));
                }
                i += 4;
            }
            for (t, o) in outs.iter_mut().enumerate().take(group.len()) {
                let mut lanes = [0.0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc[t]);
                let (x, y) = group[t];
                let tail: f64 = x[split..].iter().zip(&y[split..]).map(|(a, b)| a * b).sum();
                *o = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
            }
        }
    }

    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`) and every pair's slices must share one common length.
    #[target_feature(enable = "avx")]
    unsafe fn dot_pairs_avx(pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
        // Grouping math hoisted out of the walk: the count of full
        // GROUP-wide groups is computed once per call, full groups run the
        // inner kernel at its fixed width, and the remainder is handled
        // once at the end — no per-group chunk-length re-derivation.
        // SAFETY: sub-slices are bounded by `pairs.len() == out.len()`
        // (caller-checked); the inner kernel's preconditions are inherited.
        unsafe {
            let full = pairs.len() / GROUP;
            for g in 0..full {
                let lo = g * GROUP;
                dot_group_avx(&pairs[lo..lo + GROUP], &mut out[lo..lo + GROUP]);
            }
            let rem = full * GROUP;
            if rem < pairs.len() {
                dot_group_avx(&pairs[rem..], &mut out[rem..]);
            }
        }
    }

    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`) and `x`/`y` must have equal length.
    #[target_feature(enable = "avx")]
    unsafe fn axpy_avx(a: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: loads/stores at `i < split <= n` are in bounds of both
        // equal-length slices; the scalar tail uses checked indexing.
        unsafe {
            let n = x.len();
            let split = n - n % 4;
            let av = _mm256_set1_pd(a);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i < split {
                let sum = _mm256_add_pd(
                    _mm256_loadu_pd(yp.add(i)),
                    _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
                );
                _mm256_storeu_pd(yp.add(i), sum);
                i += 4;
            }
            for k in split..n {
                y[k] += a * x[k];
            }
        }
    }

    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`); works on a single slice, so no length precondition.
    #[target_feature(enable = "avx")]
    unsafe fn scale_avx(a: f64, x: &mut [f64]) {
        // SAFETY: loads/stores at `i < split <= n` are in bounds of `x`.
        unsafe {
            let n = x.len();
            let split = n - n % 4;
            let av = _mm256_set1_pd(a);
            let xp = x.as_mut_ptr();
            let mut i = 0;
            while i < split {
                _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), av));
                i += 4;
            }
            for xk in &mut x[split..n] {
                *xk *= a;
            }
        }
    }

    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`) and `x`/`y` must have equal length.
    #[target_feature(enable = "avx")]
    unsafe fn xpby_avx(x: &[f64], b: f64, y: &mut [f64]) {
        // SAFETY: loads/stores at `i < split <= n` are in bounds of both
        // equal-length slices.
        unsafe {
            let n = x.len();
            let split = n - n % 4;
            let bv = _mm256_set1_pd(b);
            let xp = x.as_ptr();
            let yp = y.as_mut_ptr();
            let mut i = 0;
            while i < split {
                let sum = _mm256_add_pd(
                    _mm256_loadu_pd(xp.add(i)),
                    _mm256_mul_pd(bv, _mm256_loadu_pd(yp.add(i))),
                );
                _mm256_storeu_pd(yp.add(i), sum);
                i += 4;
            }
            for k in split..n {
                y[k] = x[k] + b * y[k];
            }
        }
    }

    // SAFETY: contract — AVX must be available (runtime-detected by
    // `simd_ops`) and `x`/`y`/`w` must all have equal length.
    #[target_feature(enable = "avx")]
    unsafe fn waxpby_avx(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
        // SAFETY: loads/stores at `i < split <= n` are in bounds of all
        // three equal-length slices.
        unsafe {
            let n = x.len();
            let split = n - n % 4;
            let av = _mm256_set1_pd(a);
            let bv = _mm256_set1_pd(b);
            let xp = x.as_ptr();
            let yp = y.as_ptr();
            let wp = w.as_mut_ptr();
            let mut i = 0;
            while i < split {
                let sum = _mm256_add_pd(
                    _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(i))),
                    _mm256_mul_pd(bv, _mm256_loadu_pd(yp.add(i))),
                );
                _mm256_storeu_pd(wp.add(i), sum);
                i += 4;
            }
            for k in split..n {
                w[k] = a * x[k] + b * y[k];
            }
        }
    }

    /// SELL-C-4 SpMV: per chunk, one gather + one contiguous value load
    /// per step feeds a 4-lane accumulator; lanes whose row has ended are
    /// kept out of the accumulator with a blend — computing the padding
    /// (0.0 · gathered `x[0]`) would already NaN-poison short rows
    /// whenever `x[0]` is non-finite — so each lane performs exactly the
    /// scalar kernel's sequential sum.
    // SAFETY: contract — AVX2 must be available (runtime-detected by
    // `simd_ops`); `x.len() == a.ncols()` and `y.len() == a.nrows()`.
    #[target_feature(enable = "avx2")]
    unsafe fn spmv_sell_avx2(a: &SellMatrix, x: &[f64], y: &mut [f64]) {
        // SAFETY: `chunk_ptr` brackets the padded `cols`/`vals` arrays, so
        // every `slot` access is in bounds; the masked gather only reads
        // `x[idx]` for active lanes whose column indices were validated
        // `< ncols` at construction.
        unsafe {
            let chunk_ptr = a.chunk_ptr();
            let cols = a.cols();
            let vals = a.vals();
            let perm = a.perm();
            let lens = a.lens();
            let nrows = a.nrows();
            for k in 0..chunk_ptr.len() - 1 {
                let base = chunk_ptr[k];
                let width = (chunk_ptr[k + 1] - base) / SELL_C;
                let p0 = k * SELL_C;
                let len4 = _mm256_set_epi64x(
                    lens[p0 + 3] as i64,
                    lens[p0 + 2] as i64,
                    lens[p0 + 1] as i64,
                    lens[p0] as i64,
                );
                let mut acc = _mm256_setzero_pd();
                for step in 0..width {
                    let slot = base + step * SELL_C;
                    let active = _mm256_castsi256_pd(_mm256_cmpgt_epi64(
                        len4,
                        _mm256_set1_epi64x(step as i64),
                    ));
                    let idx = _mm_loadu_si128(cols.as_ptr().add(slot) as *const __m128i);
                    // Masked gather: inactive lanes never touch memory, so the
                    // padding column 0 is never even read.
                    let xg =
                        _mm256_mask_i32gather_pd::<8>(_mm256_setzero_pd(), x.as_ptr(), idx, active);
                    let prod = _mm256_mul_pd(_mm256_loadu_pd(vals.as_ptr().add(slot)), xg);
                    acc = _mm256_blendv_pd(acc, _mm256_add_pd(acc, prod), active);
                }
                let mut lanes = [0.0f64; 4];
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                for (lane, &sum) in lanes.iter().enumerate() {
                    let p = p0 + lane;
                    if p < nrows {
                        y[perm[p] as usize] = sum;
                    }
                }
            }
        }
    }

    /// How many output columns one blocked SELL sweep carries per chunk
    /// visit: enough to amortize the per-step index/value loads without
    /// spilling the 4 accumulator registers the group needs.
    const SPMM_COLS: usize = 4;

    /// Blocked SELL-C-4 SpMM: one true matrix sweep (chunks outermost)
    /// amortizes the `cols`/`vals` loads over up to [`SPMM_COLS`] output
    /// columns at a time; each column's accumulator runs exactly
    /// [`spmv_sell_avx2`]'s masked lane arithmetic, so every column is
    /// bit-identical to a standalone single-RHS sweep.
    // SAFETY: contract — AVX2 must be available (runtime-detected by
    // `simd_ops`); `x.len() == k * a.ncols()` and `y.len() == k * a.nrows()`.
    #[target_feature(enable = "avx2")]
    unsafe fn spmm_sell_avx2(a: &SellMatrix, k: usize, x: &[f64], y: &mut [f64]) {
        // SAFETY: `chunk_ptr` brackets the padded `cols`/`vals` arrays, so
        // every `slot` access is in bounds; the masked gather reads
        // `xc[idx]` only for active lanes whose column indices were
        // validated `< ncols` at construction, and each column's base
        // pointer `x.as_ptr().add(c * ncols)` stays inside the
        // `k * ncols`-long input (caller-checked).
        unsafe {
            let chunk_ptr = a.chunk_ptr();
            let cols = a.cols();
            let vals = a.vals();
            let perm = a.perm();
            let lens = a.lens();
            let nrows = a.nrows();
            let ncols = a.ncols();
            for ch in 0..chunk_ptr.len() - 1 {
                let base = chunk_ptr[ch];
                let width = (chunk_ptr[ch + 1] - base) / SELL_C;
                let p0 = ch * SELL_C;
                let len4 = _mm256_set_epi64x(
                    lens[p0 + 3] as i64,
                    lens[p0 + 2] as i64,
                    lens[p0 + 1] as i64,
                    lens[p0] as i64,
                );
                let mut c0 = 0;
                while c0 < k {
                    let g = SPMM_COLS.min(k - c0);
                    let mut acc = [_mm256_setzero_pd(); SPMM_COLS];
                    for step in 0..width {
                        let slot = base + step * SELL_C;
                        let active = _mm256_castsi256_pd(_mm256_cmpgt_epi64(
                            len4,
                            _mm256_set1_epi64x(step as i64),
                        ));
                        let idx = _mm_loadu_si128(cols.as_ptr().add(slot) as *const __m128i);
                        let av = _mm256_loadu_pd(vals.as_ptr().add(slot));
                        for (t, a_t) in acc.iter_mut().enumerate().take(g) {
                            // Masked gather: inactive lanes never touch
                            // memory, so padding column 0 is never read.
                            let xg = _mm256_mask_i32gather_pd::<8>(
                                _mm256_setzero_pd(),
                                x.as_ptr().add((c0 + t) * ncols),
                                idx,
                                active,
                            );
                            let prod = _mm256_mul_pd(av, xg);
                            *a_t = _mm256_blendv_pd(*a_t, _mm256_add_pd(*a_t, prod), active);
                        }
                    }
                    for (t, a_t) in acc.iter().enumerate().take(g) {
                        let mut lanes = [0.0f64; 4];
                        _mm256_storeu_pd(lanes.as_mut_ptr(), *a_t);
                        for (lane, &sum) in lanes.iter().enumerate() {
                            let p = p0 + lane;
                            if p < nrows {
                                y[(c0 + t) * nrows + perm[p] as usize] = sum;
                            }
                        }
                    }
                    c0 += g;
                }
            }
        }
    }

    impl LocalOps for SimdOps {
        fn name(&self) -> &'static str {
            "simd"
        }

        fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
            assert_eq!(x.len(), y.len(), "dot: length mismatch");
            // SAFETY: `simd_ops` hands this type out only when AVX+AVX2
            // were detected at runtime; pointer accesses stay in bounds of
            // the equal-length slices.
            unsafe { dot_avx(x, y) }
        }

        fn dot_pairs(&self, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            assert_eq!(pairs.len(), out.len(), "dot_pairs: output length mismatch");
            if pairs.is_empty() {
                return;
            }
            let n = pairs[0].0.len();
            assert!(
                pairs.iter().all(|(x, y)| x.len() == n && y.len() == n),
                "dot_pairs: length mismatch"
            );
            // SAFETY: feature-gated as above; all slices verified equal
            // length just above.
            unsafe { dot_pairs_avx(pairs, out) }
        }

        fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
            assert_eq!(x.len(), y.len(), "axpy: length mismatch");
            // SAFETY: feature-gated; equal lengths checked.
            unsafe { axpy_avx(a, x, y) }
        }

        fn scale(&self, a: f64, x: &mut [f64]) {
            // SAFETY: feature-gated; single-slice bounds.
            unsafe { scale_avx(a, x) }
        }

        fn xpby(&self, x: &[f64], b: f64, y: &mut [f64]) {
            assert_eq!(x.len(), y.len(), "xpby: length mismatch");
            // SAFETY: feature-gated; equal lengths checked.
            unsafe { xpby_avx(x, b, y) }
        }

        fn waxpby_into(&self, a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
            assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
            assert_eq!(x.len(), w.len(), "waxpby: output length mismatch");
            // SAFETY: feature-gated; equal lengths checked.
            unsafe { waxpby_avx(a, x, b, y, w) }
        }

        fn spmv_csr(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
            // Sequential by spec — same code as the scalar backend.
            ScalarOps.spmv_csr(a, x, y);
        }

        fn spmv_sell(&self, a: &SellMatrix, x: &[f64], y: &mut [f64]) {
            assert_eq!(x.len(), a.ncols(), "spmv: dimension mismatch");
            assert_eq!(y.len(), a.nrows(), "spmv: output dimension mismatch");
            // SAFETY: feature-gated; slot accesses are bounded by the
            // layout invariants (`chunk_ptr` brackets the padded arrays,
            // column indices were validated < ncols at construction).
            unsafe { spmv_sell_avx2(a, x, y) }
        }

        fn spmm_csr(&self, a: &CsrMatrix, k: usize, x: &[f64], y: &mut [f64]) {
            // Sequential by spec — same one-sweep code as the scalar
            // backend (CSR row accumulation has no SIMD reassociation
            // budget under the bit-parity contract).
            ScalarOps.spmm_csr(a, k, x, y);
        }

        fn spmm_sell(&self, a: &SellMatrix, k: usize, x: &[f64], y: &mut [f64]) {
            assert_eq!(x.len(), k * a.ncols(), "spmm: input dimension mismatch");
            assert_eq!(y.len(), k * a.nrows(), "spmm: output dimension mismatch");
            // SAFETY: feature-gated; dimensions checked just above, and
            // slot accesses are bounded by the layout invariants.
            unsafe { spmm_sell_avx2(a, k, x, y) }
        }

        fn dot_blocks(&self, k: usize, pairs: &[(&[f64], &[f64])], out: &mut [f64]) {
            assert_eq!(
                out.len(),
                k * pairs.len(),
                "dot_blocks: output length mismatch"
            );
            if k == 0 {
                return;
            }
            for ((x, y), outs) in pairs.iter().zip(out.chunks_exact_mut(k)) {
                assert_eq!(x.len(), y.len(), "dot_blocks: length mismatch");
                assert_eq!(x.len() % k, 0, "dot_blocks: ragged multi-vector");
                let n = x.len() / k;
                // Feed the column sub-slices through the same fixed-width
                // group kernel `dot_pairs` uses, GROUP columns at a time.
                let mut buf: [(&[f64], &[f64]); GROUP] = [(&[][..], &[][..]); GROUP];
                let mut c = 0;
                while c < k {
                    let g = GROUP.min(k - c);
                    for (t, slot) in buf.iter_mut().enumerate().take(g) {
                        let lo = (c + t) * n;
                        *slot = (&x[lo..lo + n], &y[lo..lo + n]);
                    }
                    // SAFETY: feature-gated; every slice in `buf[..g]` has
                    // length `n` by construction and `g <= GROUP`.
                    unsafe { dot_group_avx(&buf[..g], &mut outs[c..c + g]) }
                    c += g;
                }
            }
        }

        fn axpy_blocks(&self, alphas: &[f64], x: &[f64], y: &mut [f64]) {
            let k = alphas.len();
            assert_eq!(x.len(), y.len(), "axpy_blocks: length mismatch");
            if k == 0 {
                return;
            }
            assert_eq!(x.len() % k, 0, "axpy_blocks: ragged multi-vector");
            let n = x.len() / k;
            for (c, &a) in alphas.iter().enumerate() {
                // SAFETY: feature-gated; the column sub-slices have equal
                // length `n` by construction.
                unsafe { axpy_avx(a, &x[c * n..(c + 1) * n], &mut y[c * n..(c + 1) * n]) }
            }
        }

        fn xpby_blocks(&self, x: &[f64], betas: &[f64], y: &mut [f64]) {
            let k = betas.len();
            assert_eq!(x.len(), y.len(), "xpby_blocks: length mismatch");
            if k == 0 {
                return;
            }
            assert_eq!(x.len() % k, 0, "xpby_blocks: ragged multi-vector");
            let n = x.len() / k;
            for (c, &b) in betas.iter().enumerate() {
                // SAFETY: feature-gated; equal-length column sub-slices.
                unsafe { xpby_avx(&x[c * n..(c + 1) * n], b, &mut y[c * n..(c + 1) * n]) }
            }
        }

        fn waxpby_blocks(&self, a: &[f64], x: &[f64], b: &[f64], y: &[f64], w: &mut [f64]) {
            let k = a.len();
            assert_eq!(b.len(), k, "waxpby_blocks: coefficient length mismatch");
            assert_eq!(x.len(), y.len(), "waxpby_blocks: length mismatch");
            assert_eq!(x.len(), w.len(), "waxpby_blocks: output length mismatch");
            if k == 0 {
                return;
            }
            assert_eq!(x.len() % k, 0, "waxpby_blocks: ragged multi-vector");
            let n = x.len() / k;
            for c in 0..k {
                let lo = c * n;
                // SAFETY: feature-gated; equal-length column sub-slices.
                unsafe {
                    waxpby_avx(
                        a[c],
                        &x[lo..lo + n],
                        b[c],
                        &y[lo..lo + n],
                        &mut w[lo..lo + n],
                    )
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// The portable scalar backend (always available; the bit-compat
/// reference).
pub fn scalar_ops() -> &'static dyn LocalOps {
    &ScalarOps
}

/// The SIMD backend if this machine supports it (x86-64 with AVX and
/// AVX2), otherwise the scalar backend — callers never need to care.
pub fn simd_ops() -> &'static dyn LocalOps {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if x86::available() {
            return &x86::SimdOps;
        }
    }
    scalar_ops()
}

/// The default backend: [`simd_ops`] unless the `RESILIENT_FORCE_SCALAR`
/// environment variable is set to `1`/`true` (checked once per process).
pub fn auto_ops() -> &'static dyn LocalOps {
    static CHOICE: OnceLock<&'static dyn LocalOps> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let forced = std::env::var("RESILIENT_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if forced {
            scalar_ops()
        } else {
            simd_ops()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let f = |i: usize, s: u64| ((i as f64 + s as f64 * 0.13) * 0.71).sin() * 3.0;
        (
            (0..n).map(|i| f(i, seed)).collect(),
            (0..n).map(|i| f(i, seed + 7)).collect(),
        )
    }

    #[test]
    fn backends_agree_bitwise_on_level1() {
        let simd = simd_ops();
        let scalar = scalar_ops();
        for n in [0usize, 1, 3, 4, 5, 16, 37, 1023] {
            let (x, y) = vecs(n, n as u64);
            assert_eq!(
                scalar.dot(&x, &y).to_bits(),
                simd.dot(&x, &y).to_bits(),
                "dot n={n}"
            );
            assert_eq!(scalar.nrm2(&x).to_bits(), simd.nrm2(&x).to_bits());

            let (mut ys, mut yv) = (y.clone(), y.clone());
            scalar.axpy(1.7, &x, &mut ys);
            simd.axpy(1.7, &x, &mut yv);
            assert_eq!(ys, yv, "axpy n={n}");

            let (mut ys, mut yv) = (y.clone(), y.clone());
            scalar.xpby(&x, -0.3, &mut ys);
            simd.xpby(&x, -0.3, &mut yv);
            assert_eq!(ys, yv, "xpby n={n}");

            let (mut ws, mut wv) = (vec![0.0; n], vec![0.0; n]);
            scalar.waxpby_into(2.5, &x, -1.0, &y, &mut ws);
            simd.waxpby_into(2.5, &x, -1.0, &y, &mut wv);
            assert_eq!(ws, wv, "waxpby n={n}");

            let (mut xs, mut xv) = (x.clone(), x.clone());
            scalar.scale(-0.125, &mut xs);
            simd.scale(-0.125, &mut xv);
            assert_eq!(xs, xv, "scale n={n}");
        }
    }

    #[test]
    fn dot_pairs_matches_separate_dots_across_backends() {
        for backend in [scalar_ops(), simd_ops()] {
            for k in [0usize, 1, 2, 3, 7, 8, 9, 19] {
                let n = 101;
                let data: Vec<(Vec<f64>, Vec<f64>)> = (0..k).map(|t| vecs(n, t as u64)).collect();
                let pairs: Vec<(&[f64], &[f64])> = data
                    .iter()
                    .map(|(x, y)| (x.as_slice(), y.as_slice()))
                    .collect();
                let mut out = vec![0.0; k];
                backend.dot_pairs(&pairs, &mut out);
                for (t, (x, y)) in data.iter().enumerate() {
                    assert_eq!(
                        out[t].to_bits(),
                        vector::dot(x, y).to_bits(),
                        "{} k={k} t={t}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sell_spmv_matches_csr_on_both_backends() {
        let a = crate::generators::poisson2d(13, 11);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let want = a.spmv(&x);
        let s = SellMatrix::from_csr(&a, 32);
        for backend in [scalar_ops(), simd_ops()] {
            let mut y = vec![0.0; n];
            backend.spmv_sell(&s, &x, &mut y);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}",
                backend.name()
            );
            let mut yc = vec![0.0; n];
            backend.spmv_csr(&a, &x, &mut yc);
            assert_eq!(yc, want);
        }
    }

    /// Build a packed column-major multi-vector: k columns of length n,
    /// column c at `v[c*n..(c+1)*n]`, seeded per column.
    fn multivec(n: usize, k: usize, seed: u64) -> Vec<f64> {
        (0..k).flat_map(|c| vecs(n, seed + c as u64).0).collect()
    }

    #[test]
    fn spmm_columns_match_independent_spmv_runs() {
        let a = crate::generators::poisson2d(9, 7);
        let n = a.nrows();
        let s = SellMatrix::from_csr(&a, 32);
        for backend in [scalar_ops(), simd_ops()] {
            for k in [0usize, 1, 2, 3, 4, 5, 8, 9] {
                let x = multivec(n, k, 11);
                let mut yc = vec![0.0; k * n];
                let mut ys = vec![0.0; k * n];
                backend.spmm_csr(&a, k, &x, &mut yc);
                backend.spmm_sell(&s, k, &x, &mut ys);
                for c in 0..k {
                    let mut want = vec![0.0; n];
                    backend.spmv_csr(&a, &x[c * n..(c + 1) * n], &mut want);
                    let bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(&yc[c * n..(c + 1) * n]),
                        bits(&want),
                        "{} spmm_csr k={k} c={c}",
                        backend.name()
                    );
                    let mut want_sell = vec![0.0; n];
                    backend.spmv_sell(&s, &x[c * n..(c + 1) * n], &mut want_sell);
                    assert_eq!(
                        bits(&ys[c * n..(c + 1) * n]),
                        bits(&want_sell),
                        "{} spmm_sell k={k} c={c}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn spmm_agrees_bitwise_across_backends() {
        let a = crate::generators::poisson2d(11, 5);
        let n = a.nrows();
        let s = SellMatrix::from_csr(&a, 16);
        for k in [1usize, 2, 4, 7, 8] {
            let x = multivec(n, k, 5);
            let (mut ys, mut yv) = (vec![0.0; k * n], vec![0.0; k * n]);
            scalar_ops().spmm_csr(&a, k, &x, &mut ys);
            simd_ops().spmm_csr(&a, k, &x, &mut yv);
            assert_eq!(ys, yv, "spmm_csr k={k}");
            let (mut ys, mut yv) = (vec![0.0; k * n], vec![0.0; k * n]);
            scalar_ops().spmm_sell(&s, k, &x, &mut ys);
            simd_ops().spmm_sell(&s, k, &x, &mut yv);
            let bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ys), bits(&yv), "spmm_sell k={k}");
        }
    }

    #[test]
    fn dot_blocks_matches_per_column_dots() {
        for backend in [scalar_ops(), simd_ops()] {
            for k in [0usize, 1, 2, 3, 4, 5, 8, 9] {
                for m in [0usize, 1, 2, 3] {
                    let n = 37;
                    let data: Vec<(Vec<f64>, Vec<f64>)> = (0..m)
                        .map(|t| (multivec(n, k, t as u64), multivec(n, k, 40 + t as u64)))
                        .collect();
                    let pairs: Vec<(&[f64], &[f64])> = data
                        .iter()
                        .map(|(x, y)| (x.as_slice(), y.as_slice()))
                        .collect();
                    let mut out = vec![0.0; k * m];
                    backend.dot_blocks(k, &pairs, &mut out);
                    for (t, (x, y)) in data.iter().enumerate() {
                        for c in 0..k {
                            let want = vector::dot(&x[c * n..(c + 1) * n], &y[c * n..(c + 1) * n]);
                            assert_eq!(
                                out[t * k + c].to_bits(),
                                want.to_bits(),
                                "{} k={k} m={m} t={t} c={c}",
                                backend.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_updates_match_per_column_single_rhs() {
        for backend in [scalar_ops(), simd_ops()] {
            for k in [0usize, 1, 2, 3, 5, 8] {
                let n = 29;
                let x = multivec(n, k, 7);
                let y = multivec(n, k, 19);
                let alphas: Vec<f64> = (0..k).map(|c| 0.3 * c as f64 - 1.1).collect();
                let betas: Vec<f64> = (0..k).map(|c| -0.7 + 0.2 * c as f64).collect();

                let mut got = y.clone();
                backend.axpy_blocks(&alphas, &x, &mut got);
                let mut want = y.clone();
                for c in 0..k {
                    backend.axpy(
                        alphas[c],
                        &x[c * n..(c + 1) * n],
                        &mut want[c * n..(c + 1) * n],
                    );
                }
                assert_eq!(got, want, "{} axpy_blocks k={k}", backend.name());

                let mut got = y.clone();
                backend.xpby_blocks(&x, &betas, &mut got);
                let mut want = y.clone();
                for c in 0..k {
                    backend.xpby(
                        &x[c * n..(c + 1) * n],
                        betas[c],
                        &mut want[c * n..(c + 1) * n],
                    );
                }
                assert_eq!(got, want, "{} xpby_blocks k={k}", backend.name());

                let mut got = vec![0.0; k * n];
                backend.waxpby_blocks(&alphas, &x, &betas, &y, &mut got);
                let mut want = vec![0.0; k * n];
                for c in 0..k {
                    backend.waxpby_into(
                        alphas[c],
                        &x[c * n..(c + 1) * n],
                        betas[c],
                        &y[c * n..(c + 1) * n],
                        &mut want[c * n..(c + 1) * n],
                    );
                }
                assert_eq!(got, want, "{} waxpby_blocks k={k}", backend.name());
            }
        }
    }

    #[test]
    fn msub_seq_matches_open_coded_fold() {
        let (u, x) = vecs(17, 3);
        let mut want = 2.5f64;
        for (uk, xk) in u.iter().zip(&x) {
            want -= uk * xk;
        }
        for backend in [scalar_ops(), simd_ops()] {
            assert_eq!(backend.msub_seq(2.5, &u, &x).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn auto_ops_is_stable_and_named() {
        let a = auto_ops();
        let b = auto_ops();
        assert!(std::ptr::eq(a, b));
        assert!(a.name() == "simd" || a.name() == "scalar");
    }

    #[test]
    fn special_values_propagate_identically() {
        // ±0, infinities and NaN flow through both backends the same way
        // (same ops in the same order ⇒ same IEEE results).
        let x = vec![1.0, -0.0, f64::INFINITY, 2.0, -3.0, 0.0, 5.0];
        let y = vec![0.0, -0.0, 2.0, f64::NEG_INFINITY, 1.0, -0.0, 0.5];
        let scalar = scalar_ops();
        let simd = simd_ops();
        assert_eq!(scalar.dot(&x, &y).to_bits(), simd.dot(&x, &y).to_bits());
        let xn = vec![f64::NAN, 1.0, 2.0, 3.0, 4.0];
        let yn = vec![1.0; 5];
        let (a, b) = (scalar.dot(&xn, &yn), simd.dot(&xn, &yn));
        assert!(a.is_nan() && b.is_nan());
    }
}
