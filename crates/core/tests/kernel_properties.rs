//! Property tests for the unified Krylov kernel.
//!
//! Two families of properties:
//!
//! 1. **Correctness against a dense reference**: the unified GMRES/CG
//!    presets (serial and distributed, 1–8 ranks, blocking and pipelined
//!    dot strategies) must agree with a partial-pivot Gaussian-elimination
//!    solve to 1e-8 on random SPD and nonsymmetric diagonally dominant
//!    systems.
//! 2. **Zero-cost hooks**: a solve with a [`NoopPolicy`] stack must be
//!    *bit-identical* (solution, iteration count, history) to one with an
//!    empty stack — the policy plumbing may not perturb the arithmetic.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilience::kernel::{
    run_cg, run_gmres, FusedCgStep, GmresFlavor, MgsOrtho, NoopPolicy, PcgStep, PipelinedOrtho,
    PolicyStack, SerialPrecond, SerialSpace,
};
use resilience::prelude::*;
use resilient_linalg::{diag_dominant_random, random_vector, spd_random, CsrMatrix};
use resilient_runtime::{Runtime, RuntimeConfig};

/// Dense reference solve: Gaussian elimination with partial pivoting on the
/// densified matrix.
fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let d = a.to_dense();
    let mut m = vec![vec![0.0f64; n + 1]; n];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, mij) in row.iter_mut().take(n).enumerate() {
            *mij = d.get(i, j);
        }
        row[n] = b[i];
    }
    for k in 0..n {
        let piv = (k..n)
            .max_by(|&i, &j| m[i][k].abs().partial_cmp(&m[j][k].abs()).unwrap())
            .unwrap();
        m.swap(k, piv);
        let pivot = m[k][k];
        assert!(pivot.abs() > 0.0, "reference solve: singular matrix");
        let pivot_row = m[k].clone();
        for row in m.iter_mut().skip(k + 1) {
            let f = row[k] / pivot;
            for (rj, pj) in row[k..].iter_mut().zip(&pivot_row[k..]) {
                *rj -= f * pj;
            }
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = m[i][n];
        for j in i + 1..n {
            s -= m[i][j] * x[j];
        }
        x[i] = s / m[i][i];
    }
    x
}

fn rel_err(x: &[f64], reference: &[f64]) -> f64 {
    let num: f64 = x
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let den: f64 = reference.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(f64::EPSILON)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unified CG agrees with the dense reference on random SPD systems.
    #[test]
    fn cg_matches_dense_reference_on_spd(seed in 0u64..1000, n in 5usize..24) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = spd_random(n, &mut rng);
        let b = random_vector(n, &mut rng);
        let reference = dense_solve(&a, &b);
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-12).with_max_iters(20 * n),
        );
        prop_assert!(out.converged(), "CG failed: {:?}", out.reason);
        prop_assert!(rel_err(&out.x, &reference) < 1e-8);
    }

    /// Unified GMRES agrees with the dense reference on nonsymmetric
    /// diagonally dominant systems.
    #[test]
    fn gmres_matches_dense_reference_nonsymmetric(seed in 0u64..1000, n in 5usize..30) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = diag_dominant_random(n, 4.min(n), &mut rng);
        let b = random_vector(n, &mut rng);
        let reference = dense_solve(&a, &b);
        let out = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-12).with_max_iters(20 * n),
        );
        prop_assert!(out.converged(), "GMRES failed: {:?}", out.reason);
        prop_assert!(rel_err(&out.x, &reference) < 1e-8);
    }

    /// The distributed presets agree with the dense reference on every rank
    /// count from 1 to 8: both CG variants on random SPD systems and
    /// blocking GMRES on random nonsymmetric systems to 1e-8. Pipelined
    /// GMRES is checked in its stable regime with a looser bound: the p(1)
    /// recurrence derives the normalization from `(z,z) − Σh²`, whose
    /// cancellation makes residual estimates below ~√ε unreliable (a known
    /// property of the algorithm, preserved bit-for-bit from the legacy
    /// implementation).
    #[test]
    fn distributed_solvers_match_dense_reference(seed in 0u64..500, ranks in 1usize..=8) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 30;
        let spd = spd_random(n, &mut rng);
        let spd_b = random_vector(n, &mut rng);
        let gen = diag_dominant_random(n, 4, &mut rng);
        let gen_b = random_vector(n, &mut rng);
        let spd_ref = dense_solve(&spd, &spd_b);
        let gen_ref = dense_solve(&gen, &gen_b);
        let (spd2, spd_b2) = (spd.clone(), spd_b.clone());
        let (gen2, gen_b2) = (gen.clone(), gen_b.clone());
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(ranks, move |comm| {
                let da = DistCsr::from_global(comm, &spd2)?;
                let db = DistVector::from_global(comm, &spd_b2);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-11)
                    .with_max_iters(60 * n)
                    .with_restart(30);
                let classic_cg = dist_cg(comm, &da, &db, &opts)?;
                let pipe_cg = pipelined_cg(comm, &da, &db, &opts)?;
                let dg = DistCsr::from_global(comm, &gen2)?;
                let dgb = DistVector::from_global(comm, &gen_b2);
                let classic_gm = dist_gmres(comm, &dg, &dgb, &opts)?;
                let pipe_opts = opts.with_tol(1e-7);
                let pipe_gm = pipelined_gmres(comm, &dg, &dgb, &pipe_opts)?;
                Ok((
                    (classic_cg.converged, classic_cg.x.gather_global(comm)?),
                    (pipe_cg.converged, pipe_cg.x.gather_global(comm)?),
                    (classic_gm.converged, classic_gm.x.gather_global(comm)?),
                    (pipe_gm.converged, pipe_gm.x.gather_global(comm)?),
                ))
            })
            .unwrap_all();
        for (ccg, pcg_r, cgm, pgm) in results {
            for (name, reference, bound, (conv, x)) in [
                ("cg", &spd_ref, 1e-8, ccg),
                ("pipelined-cg", &spd_ref, 1e-8, pcg_r),
                ("gmres", &gen_ref, 1e-8, cgm),
                ("pipelined-gmres", &gen_ref, 1e-5, pgm),
            ] {
                prop_assert!(conv, "{} did not converge on {} ranks", name, ranks);
                let err = rel_err(&x, reference);
                prop_assert!(err < bound, "{} error {} on {} ranks", name, err, ranks);
            }
        }
    }

    /// A no-op policy stack is semantically zero-cost: bit-identical
    /// solution, iterations and history for the serial GMRES and CG kernels.
    #[test]
    fn noop_policy_stack_is_bitwise_zero_cost_serial(seed in 0u64..1000, n in 5usize..24) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = diag_dominant_random(n, 4.min(n), &mut rng);
        let b = random_vector(n, &mut rng);
        let opts = SolveOptions::default().with_tol(1e-10).with_max_iters(20 * n);

        // GMRES: empty stack vs. no-op stack.
        let bare = {
            let mut space = SerialSpace::new(&a);
            run_gmres(
                &mut space, &b, None, &opts,
                &mut MgsOrtho::new(), &mut PolicyStack::empty(), None,
                &GmresFlavor::serial(),
            ).unwrap().0
        };
        let hooked = {
            let mut space = SerialSpace::new(&a);
            let mut noop = NoopPolicy::new();
            let mut stack = PolicyStack::new(vec![&mut noop]);
            run_gmres(
                &mut space, &b, None, &opts,
                &mut MgsOrtho::new(), &mut stack, None,
                &GmresFlavor::serial(),
            ).unwrap().0
        };
        prop_assert_eq!(bare.iterations, hooked.iterations);
        prop_assert_eq!(&bare.history, &hooked.history);
        for (p, q) in bare.x.iter().zip(&hooked.x) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "GMRES iterate must be bit-identical");
        }

        // CG (SPD system): empty stack vs. no-op stack.
        let a = spd_random(n, &mut rng);
        let b = random_vector(n, &mut rng);
        let m = IdentityPreconditioner;
        let bare = {
            let mut space = SerialSpace::new(&a);
            let mut sm = SerialPrecond(&m);
            run_cg(&mut space, &b, None, &opts, &mut PcgStep::new(&mut sm), &mut PolicyStack::empty())
                .unwrap().0
        };
        let hooked = {
            let mut space = SerialSpace::new(&a);
            let mut noop = NoopPolicy::new();
            let mut stack = PolicyStack::new(vec![&mut noop]);
            let mut sm = SerialPrecond(&m);
            run_cg(&mut space, &b, None, &opts, &mut PcgStep::new(&mut sm), &mut stack)
                .unwrap().0
        };
        prop_assert_eq!(bare.iterations, hooked.iterations);
        for (p, q) in bare.x.iter().zip(&hooked.x) {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "CG iterate must be bit-identical");
        }
    }

    /// Zero-cost hooks also hold for the distributed pipelined strategies.
    #[test]
    fn noop_policy_stack_is_bitwise_zero_cost_distributed(seed in 0u64..500, ranks in 1usize..=6) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 24;
        let a = spd_random(n, &mut rng);
        let b = random_vector(n, &mut rng);
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(ranks, move |comm| {
                let da = DistCsr::from_global(comm, &a)?;
                let db = DistVector::from_global(comm, &b);
                let opts = SolveOptions::default().with_tol(1e-10).with_max_iters(40 * n).with_restart(30);
                let bare = {
                    let mut space = resilience::kernel::DistSpace::new(comm, &da);
                    run_gmres(
                        &mut space, &db, None, &opts,
                        &mut PipelinedOrtho::new(), &mut PolicyStack::empty(), None,
                        &GmresFlavor::distributed(),
                    )?.0
                };
                let hooked = {
                    let mut space = resilience::kernel::DistSpace::new(comm, &da);
                    let mut noop = NoopPolicy::new();
                    let mut stack = PolicyStack::new(vec![&mut noop]);
                    run_gmres(
                        &mut space, &db, None, &opts,
                        &mut PipelinedOrtho::new(), &mut stack, None,
                        &GmresFlavor::distributed(),
                    )?.0
                };
                let bare_cg = {
                    let mut space = resilience::kernel::DistSpace::new(comm, &da);
                    run_cg(&mut space, &db, None, &opts, &mut FusedCgStep::new(), &mut PolicyStack::empty())?.0
                };
                let hooked_cg = {
                    let mut space = resilience::kernel::DistSpace::new(comm, &da);
                    let mut noop = NoopPolicy::new();
                    let mut stack = PolicyStack::new(vec![&mut noop]);
                    run_cg(&mut space, &db, None, &opts, &mut FusedCgStep::new(), &mut stack)?.0
                };
                Ok((
                    bare.iterations, hooked.iterations,
                    bare.x.gather_global(comm)?, hooked.x.gather_global(comm)?,
                    bare_cg.iterations, hooked_cg.iterations,
                    bare_cg.x.gather_global(comm)?, hooked_cg.x.gather_global(comm)?,
                ))
            })
            .unwrap_all();
        for (gi, gi2, gx, gx2, ci, ci2, cx, cx2) in results {
            prop_assert_eq!(gi, gi2, "pipelined GMRES iterations must match");
            prop_assert_eq!(ci, ci2, "CG iterations must match");
            for (p, q) in gx.iter().zip(&gx2) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
            for (p, q) in cx.iter().zip(&cx2) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }
}
