//! Offline vendored ChaCha random number generators.
//!
//! Implements the genuine ChaCha block function (D. J. Bernstein) over the
//! `RngCore`/`SeedableRng` traits of the vendored `rand` crate, providing
//! the `ChaCha8Rng`/`ChaCha12Rng`/`ChaCha20Rng` names this workspace uses.
//! Output streams are deterministic per seed but are not guaranteed
//! bit-identical to the upstream `rand_chacha` crate.

pub use rand::{RngCore, SeedableRng};

/// Re-export mirroring `rand_chacha::rand_core` from the real crate.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha sigma constant: "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Key (8 words) + counter (2 words) + nonce (2 words).
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means "buffer exhausted".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&SIGMA);
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                state[14] = 0;
                state[15] = 0;
                let input = state;
                for _ in 0..($rounds / 2) {
                    // Column rounds.
                    quarter_round(&mut state, 0, 4, 8, 12);
                    quarter_round(&mut state, 1, 5, 9, 13);
                    quarter_round(&mut state, 2, 6, 10, 14);
                    quarter_round(&mut state, 3, 7, 11, 15);
                    // Diagonal rounds.
                    quarter_round(&mut state, 0, 5, 10, 15);
                    quarter_round(&mut state, 1, 6, 11, 12);
                    quarter_round(&mut state, 2, 7, 8, 13);
                    quarter_round(&mut state, 3, 4, 9, 14);
                }
                for (out, inp) in state.iter_mut().zip(input.iter()) {
                    *out = out.wrapping_add(*inp);
                }
                self.buf = state;
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buf[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                Self { key, counter: 0, buf: [0; 16], index: 16 }
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast statistical generator.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds: the full-strength generator.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_block_matches_rfc7539_vector() {
        // RFC 7539 §2.3.2 test vector, adapted: zero nonce variant not in the
        // RFC, so instead check the zero-key/zero-nonce ChaCha20 first block
        // against the well-known reference value.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(
            first, 0xade0b876,
            "first word of ChaCha20 keystream for all-zero key"
        );
    }

    #[test]
    fn stream_is_statistically_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let expected = (n * 32) as f64;
        assert!((ones as f64 - expected).abs() < 4.0 * (expected / 2.0).sqrt());
    }
}
