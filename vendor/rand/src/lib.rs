//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `rand` items the workspace actually uses are implemented
//! here: [`RngCore`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`), and
//! [`SeedableRng`] (with the same SplitMix64-based `seed_from_u64` expansion
//! as upstream, so seeds remain stable if the real crate is ever swapped in).

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform distribution over a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`; `low < high` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`; `low <= high` must hold.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Widen to 64 bits *before* subtracting: for narrow signed
                // types the span can overflow the type itself (e.g.
                // `-100i8..100`), and a type-width wrapping_sub would then
                // sign-extend garbage. `as i64 as u64` is value-preserving
                // for signed types and bit-preserving for u64/usize.
                let span = (high as i64 as u64).wrapping_sub(low as i64 as u64) as u128;
                // Lemire-style widening multiply: unbiased enough for
                // simulation workloads, exactly uniform when span divides 2^64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                low.wrapping_add(hi as Self)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                if low == Self::MIN && high == Self::MAX {
                    return rng.next_u64() as Self;
                }
                let span = ((high as i64 as u64).wrapping_sub(low as i64 as u64) as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                low.wrapping_add(hi as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * unit;
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from the full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it with SplitMix64 exactly
    /// as `rand` 0.8 does, so seeded streams stay stable across swaps with
    /// the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e3779b97f4a7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(v >= f64::EPSILON && v < 1.0);
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let b = rng.gen_range(0..64u32);
            assert!(b < 64);
            let inc = rng.gen_range(3usize..=3);
            assert_eq!(inc, 3);
        }
    }

    #[test]
    fn gen_range_signed_spans_wider_than_the_type() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v));
            let w: i32 = rng.gen_range(-1_500_000_000i32..1_500_000_000);
            assert!((-1_500_000_000..1_500_000_000).contains(&w));
            let x: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = x; // full range: any value is valid
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
