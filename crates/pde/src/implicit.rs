//! Implicit (backward-Euler) heat stepping via distributed CG, with
//! coarse-model recovery of lost state (§III-C "Implicit methods" /
//! "Redundant storage of coarse model", experiment E5).

use resilience::distributed::{DistCsr, DistVector};
use resilience::rbsp::cg::dist_cg;
use resilience::rbsp::DistSolveOptions;
use resilient_linalg::{CooMatrix, CsrMatrix};
use resilient_runtime::{Comm, Result};

use crate::coarse::{prolongate, restrict};
use crate::heat1d::HeatProblem;

/// Build the backward-Euler system matrix `I + κ·dt/dx²·L` for the 1-D heat
/// equation, where `L` is the (positive-definite) discrete Laplacian.
pub fn backward_euler_matrix(problem: &HeatProblem) -> CsrMatrix {
    let n = problem.n;
    let r = problem.kappa * problem.dt / (problem.dx() * problem.dx());
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + 2.0 * r);
        if i > 0 {
            coo.push(i, i - 1, -r);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -r);
        }
    }
    coo.to_csr()
}

/// How a rank's state is reconstructed after it is lost mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplicitRecovery {
    /// Prolongate a persisted coarse copy (factor given) back to the fine grid.
    CoarseModel {
        /// Coarsening factor of the redundant copy.
        factor: usize,
    },
    /// Re-initialise the lost part to zero (the "do nothing" strawman).
    ZeroReset,
    /// Keep the full fine copy persisted (maximum storage, exact recovery).
    FullCopy,
}

/// Distributed implicit heat solver with pluggable lost-state recovery.
#[derive(Debug, Clone)]
pub struct ImplicitHeat {
    /// Problem description (uses a larger `dt` than explicit stepping —
    /// implicit stepping is unconditionally stable).
    pub problem: HeatProblem,
    /// Recovery strategy for lost ranks.
    pub recovery: ImplicitRecovery,
    /// CG tolerance per step.
    pub cg_tol: f64,
}

impl ImplicitHeat {
    /// Advance `u` (distributed) by one backward-Euler step: solve
    /// `(I + r·L)·u_{k+1} = u_k` with distributed CG. Returns the CG
    /// iteration count.
    pub fn step(&self, comm: &mut Comm, a: &DistCsr, u: &mut DistVector) -> Result<usize> {
        let opts = DistSolveOptions::default()
            .with_tol(self.cg_tol)
            .with_max_iters(400);
        let out = dist_cg(comm, a, u, &opts)?;
        *u = out.x;
        Ok(out.iterations)
    }

    /// Persist this rank's redundant copy according to the recovery strategy.
    pub fn persist_redundant(&self, comm: &mut Comm, u_local: &[f64]) -> Result<()> {
        match self.recovery {
            ImplicitRecovery::CoarseModel { factor } => {
                comm.persist("implicit/coarse", restrict(u_local, factor))?;
            }
            ImplicitRecovery::FullCopy => {
                comm.persist("implicit/full", u_local.to_vec())?;
            }
            ImplicitRecovery::ZeroReset => {}
        }
        Ok(())
    }

    /// Reconstruct this rank's local field after its state was lost.
    pub fn recover_local(&self, comm: &mut Comm, n_local: usize) -> Result<Vec<f64>> {
        match self.recovery {
            ImplicitRecovery::CoarseModel { factor } => {
                let me = comm.rank();
                if comm.persisted(me, "implicit/coarse") {
                    let coarse = comm.restore(me, "implicit/coarse")?.into_f64()?;
                    Ok(prolongate(&coarse, factor, n_local))
                } else {
                    Ok(vec![0.0; n_local])
                }
            }
            ImplicitRecovery::FullCopy => {
                let me = comm.rank();
                if comm.persisted(me, "implicit/full") {
                    comm.restore(me, "implicit/full")?.into_f64()
                } else {
                    Ok(vec![0.0; n_local])
                }
            }
            ImplicitRecovery::ZeroReset => Ok(vec![0.0; n_local]),
        }
    }

    /// Bytes persisted per redundant copy (storage-cost accounting for E5).
    pub fn redundant_bytes(&self, n_local: usize) -> usize {
        match self.recovery {
            ImplicitRecovery::CoarseModel { factor } => n_local.div_ceil(factor) * 8,
            ImplicitRecovery::FullCopy => n_local * 8,
            ImplicitRecovery::ZeroReset => 0,
        }
    }
}

/// One simulated "lose a rank's field and recover it" round, run inside an
/// SPMD closure: steps the implicit solver, drops rank `victim`'s field,
/// recovers it with the configured strategy, and reports the relative L2
/// error of the recovered global field against the never-lost one.
pub fn lost_state_recovery_error(
    comm: &mut Comm,
    solver: &ImplicitHeat,
    steps_before_loss: usize,
    victim: usize,
) -> Result<f64> {
    let a_global = backward_euler_matrix(&solver.problem);
    let a = DistCsr::from_global(comm, &a_global)?;
    let n = solver.problem.n;
    let init = solver.problem.initial();
    let mut u = DistVector::from_fn(comm, n, |i| init[i]);
    for _ in 0..steps_before_loss {
        solver.step(comm, &a, &mut u)?;
        solver.persist_redundant(comm, &u.local)?;
    }
    let reference = u.gather_global(comm)?;
    // Simulate the loss of the victim rank's field and its recovery.
    if comm.rank() == victim {
        u.local = solver.recover_local(comm, u.local.len())?;
    }
    let recovered = u.gather_global(comm)?;
    let num: f64 = reference
        .iter()
        .zip(&recovered)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = reference.iter().map(|a| a * a).sum();
    Ok((num / den.max(f64::MIN_POSITIVE)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_runtime::{Runtime, RuntimeConfig};

    fn problem() -> HeatProblem {
        // Implicit stepping: use a dt 20x beyond the explicit limit.
        let mut p = HeatProblem::stable(96, 1.0);
        p.dt *= 20.0;
        p
    }

    #[test]
    fn backward_euler_matrix_is_spd_and_diagonally_dominant() {
        let a = backward_euler_matrix(&problem());
        assert_eq!(a.nrows(), 96);
        let d = a.diagonal();
        for (i, &di) in d.iter().enumerate() {
            let (cols, vals) = a.row(i);
            let off: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(&j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(di > off, "row {i} must be diagonally dominant");
        }
    }

    #[test]
    fn implicit_stepping_tracks_exact_solution() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let errs = rt
            .run(3, move |comm| {
                let p = problem();
                let solver = ImplicitHeat {
                    problem: p,
                    recovery: ImplicitRecovery::FullCopy,
                    cg_tol: 1e-10,
                };
                let a_global = backward_euler_matrix(&p);
                let a = DistCsr::from_global(comm, &a_global)?;
                let init = p.initial();
                let mut u = DistVector::from_fn(comm, p.n, |i| init[i]);
                let steps = 30;
                for _ in 0..steps {
                    solver.step(comm, &a, &mut u)?;
                }
                let global = u.gather_global(comm)?;
                Ok(p.l2_error(&global, steps as f64 * p.dt))
            })
            .unwrap_all();
        for e in errs {
            assert!(e < 5e-3, "implicit solution error {e}");
        }
    }

    #[test]
    fn coarse_recovery_beats_zero_reset_and_loses_to_full_copy() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let p = problem();
                let run = |comm: &mut Comm, recovery| {
                    let solver = ImplicitHeat {
                        problem: p,
                        recovery,
                        cg_tol: 1e-10,
                    };
                    lost_state_recovery_error(comm, &solver, 10, 2)
                };
                let full = run(comm, ImplicitRecovery::FullCopy)?;
                let coarse = run(comm, ImplicitRecovery::CoarseModel { factor: 4 })?;
                let zero = run(comm, ImplicitRecovery::ZeroReset)?;
                Ok((full, coarse, zero))
            })
            .unwrap_all();
        for (full, coarse, zero) in results {
            assert!(full < 1e-12, "full copy recovers exactly: {full}");
            assert!(
                coarse < zero,
                "coarse model must beat zero reset: {coarse} vs {zero}"
            );
            assert!(
                coarse < 0.05,
                "coarse recovery error should be at truncation level: {coarse}"
            );
            assert!(
                zero > 0.1,
                "losing a quarter of the field is a big error: {zero}"
            );
        }
    }

    #[test]
    fn redundant_storage_cost_ordering() {
        let p = problem();
        let full = ImplicitHeat {
            problem: p,
            recovery: ImplicitRecovery::FullCopy,
            cg_tol: 1e-8,
        };
        let coarse = ImplicitHeat {
            problem: p,
            recovery: ImplicitRecovery::CoarseModel { factor: 4 },
            cg_tol: 1e-8,
        };
        let zero = ImplicitHeat {
            problem: p,
            recovery: ImplicitRecovery::ZeroReset,
            cg_tol: 1e-8,
        };
        assert!(coarse.redundant_bytes(100) < full.redundant_bytes(100));
        assert_eq!(zero.redundant_bytes(100), 0);
        assert_eq!(coarse.redundant_bytes(100), 25 * 8);
    }
}
