//! Dense vector kernels (level-1 BLAS style), written over plain slices so
//! they compose with the distributed vectors of the core crate and with the
//! unreliable-memory regions of the faults crate.

/// Dot product of two equally sized slices.
///
/// Accumulates in four independent partial sums so the compiler can keep
/// the reduction in vector registers (a sequential dependent-add chain
/// cannot be auto-vectorized without breaking IEEE semantics; the explicit
/// 4-way split makes the reassociation part of the algorithm).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let split = x.len() - x.len() % 4;
    let (xh, xt) = x.split_at(split);
    let (yh, yt) = y.split_at(split);
    let mut acc = [0.0f64; 4];
    for (xc, yc) in xh.chunks_exact(4).zip(yh.chunks_exact(4)) {
        acc[0] += xc[0] * yc[0];
        acc[1] += xc[1] * yc[1];
        acc[2] += xc[2] * yc[2];
        acc[3] += xc[3] * yc[3];
    }
    let tail: f64 = xt.iter().zip(yt).map(|(a, b)| a * b).sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean norm ‖x‖₂.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm ‖x‖∞.
///
/// NaN-propagating: any NaN entry makes the result NaN. (IEEE `max`
/// silently prefers the non-NaN operand, so a `fold(0.0, f64::max)` would
/// report a finite norm for a corrupted vector — exactly the wrong
/// behavior under the skeptical finiteness checks that sit downstream.)
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| {
        let a = v.abs();
        if a.is_nan() || m.is_nan() {
            f64::NAN
        } else {
            m.max(a)
        }
    })
}

/// One norm ‖x‖₁.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// y ← a·x + y.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// w ← a·x + b·y, writing into a caller-owned buffer (the hot-loop form;
/// one residual per iteration adds up).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn waxpby_into(a: f64, x: &[f64], b: f64, y: &[f64], w: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "waxpby: length mismatch");
    assert_eq!(x.len(), w.len(), "waxpby: output length mismatch");
    for (wi, (xi, yi)) in w.iter_mut().zip(x.iter().zip(y)) {
        *wi = a * xi + b * yi;
    }
}

/// w ← a·x + b·y (thin allocating wrapper around [`waxpby_into`]).
#[inline]
pub fn waxpby(a: f64, x: &[f64], b: f64, y: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; x.len()];
    waxpby_into(a, x, b, y, &mut w);
    w
}

/// y ← x + b·y (the CG direction update `p ← z + β·p`).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// x ← a·x.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Copy `src` into `dst`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Sum of all elements.
#[inline]
pub fn asum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Element-wise subtraction `x - y` into a fresh vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Relative difference ‖x − y‖₂ / max(‖y‖₂, ε): a scale-free error measure
/// used throughout the experiment harness.
pub fn rel_diff(x: &[f64], y: &[f64]) -> f64 {
    let denom = nrm2(y).max(f64::EPSILON);
    nrm2(&sub(x, y)) / denom
}

/// Does the vector contain any NaN or infinite entry?
#[inline]
pub fn has_non_finite(x: &[f64]) -> bool {
    x.iter().any(|v| !v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [1.0, 2.0, 2.0];
        assert_eq!(dot(&x, &x), 9.0);
        assert_eq!(nrm2(&x), 3.0);
        assert_eq!(norm_inf(&[-5.0, 3.0]), 5.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(asum(&[1.0, -1.0, 4.0]), 4.0);
    }

    #[test]
    fn axpy_waxpby_scale() {
        let x = [1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
        let w = waxpby(1.0, &x, -1.0, &[1.0, 1.0]);
        assert_eq!(w, vec![0.0, 1.0]);
        let mut w2 = vec![9.0, 9.0];
        waxpby_into(1.0, &x, -1.0, &[1.0, 1.0], &mut w2);
        assert_eq!(w2, w);
        let mut z = vec![3.0, -6.0];
        scale(0.5, &mut z);
        assert_eq!(z, vec![1.5, -3.0]);
        let mut p = vec![2.0, 4.0];
        xpby(&[1.0, 1.0], 0.5, &mut p);
        assert_eq!(p, vec![2.0, 3.0]);
    }

    #[test]
    fn norm_inf_propagates_nan() {
        assert!(norm_inf(&[1.0, f64::NAN, 3.0]).is_nan());
        // NaN anywhere — including positions after larger finite entries,
        // where a max-fold would have already locked in the finite value.
        assert!(norm_inf(&[5.0, 1.0, f64::NAN]).is_nan());
        assert!(norm_inf(&[f64::NAN]).is_nan());
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm_inf(&[-2.0, 1.0]), 2.0);
        assert_eq!(norm_inf(&[f64::NEG_INFINITY]), f64::INFINITY);
    }

    #[test]
    fn copy_and_sub() {
        let mut dst = vec![0.0; 3];
        copy(&[1.0, 2.0, 3.0], &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 3.0]);
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    #[test]
    fn rel_diff_scale_free() {
        let x = [1.0, 1.0];
        let y = [1.0, 1.0];
        assert_eq!(rel_diff(&x, &y), 0.0);
        let x2 = [1.0e6, 0.0];
        let y2 = [1.0e6 * (1.0 + 1e-8), 0.0];
        assert!(rel_diff(&x2, &y2) < 1e-7);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!has_non_finite(&[1.0, -2.0]));
        assert!(has_non_finite(&[1.0, f64::NAN]));
        assert!(has_non_finite(&[f64::INFINITY]));
        assert!(!has_non_finite(&[]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
