//! Neighborhood (sparse) collectives: halo exchange.
//!
//! MPI-3 added neighborhood collectives precisely so that stencil-type
//! applications do not have to express nearest-neighbour communication as a
//! global operation. The PDE applications (§III-C) and the distributed
//! sparse matrix-vector product use these.

use std::collections::HashMap;

use crate::comm::Comm;
use crate::error::Result;
use crate::topology::CartTopology;

/// Tag space reserved for halo exchange so it never collides with
/// application point-to-point tags.
const HALO_TAG_BASE: i32 = 1 << 20;

// The halo tag must not collide with small application tags, and
// `HALO_TAG_BASE + rank` must not overflow, for any plausible rank count.
const _: () = assert!(HALO_TAG_BASE > 1_000_000 / 2);
const _: () = assert!(HALO_TAG_BASE.checked_add(1_000_000).is_some());

/// `(from_left, from_right)` halo values returned by
/// [`Comm::exchange_boundaries_1d`]; `None` at a non-periodic boundary.
pub type BoundaryPair = (Option<Vec<f64>>, Option<Vec<f64>>);

impl Comm {
    /// Exchange one `f64` vector with each neighbour: sends `sends[i]` to
    /// `neighbors[i]` and returns the vector received from each neighbour,
    /// in the same order.
    ///
    /// Every rank must call this with consistent neighbour lists (if `a`
    /// lists `b`, then `b` lists `a`); that is the same contract MPI's
    /// neighborhood collectives impose via the process topology.
    pub fn neighbor_exchange(
        &mut self,
        neighbors: &[usize],
        sends: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>> {
        assert_eq!(
            neighbors.len(),
            sends.len(),
            "one send buffer per neighbour is required"
        );
        self.failure_point()?;
        // Post all sends first (eager), then receive from each neighbour.
        // Tag with the *sender's* rank so receives can be matched per source.
        let my_rank = self.rank();
        for (&nbr, data) in neighbors.iter().zip(sends) {
            self.send_f64(nbr, HALO_TAG_BASE + my_rank as i32, data)?;
        }
        let mut received: HashMap<usize, Vec<f64>> = HashMap::with_capacity(neighbors.len());
        for &nbr in neighbors {
            let (_, data) = self.recv_f64(nbr, HALO_TAG_BASE + nbr as i32)?;
            received.insert(nbr, data);
        }
        Ok(neighbors
            .iter()
            .map(|n| received.remove(n).unwrap_or_default())
            .collect())
    }

    /// Halo exchange on a Cartesian topology: sends `sends[i]` to the `i`-th
    /// neighbour returned by [`CartTopology::neighbors`] for this rank, and
    /// returns the received vectors in the same order.
    pub fn halo_exchange(
        &mut self,
        topology: &CartTopology,
        sends: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>> {
        let neighbors = topology.neighbors(self.rank());
        self.neighbor_exchange(&neighbors, sends)
    }

    /// Convenience wrapper for 1-D domain decompositions: exchange the left
    /// and right boundary values with the left and right neighbours (if
    /// they exist). Returns `(from_left, from_right)`.
    pub fn exchange_boundaries_1d(
        &mut self,
        topology: &CartTopology,
        left_value: &[f64],
        right_value: &[f64],
    ) -> Result<BoundaryPair> {
        let rank = self.rank();
        let left = topology.shift(rank, 0, -1);
        let right = topology.shift(rank, 0, 1);
        let mut neighbors = Vec::new();
        let mut sends = Vec::new();
        if let Some(l) = left {
            neighbors.push(l);
            sends.push(left_value.to_vec());
        }
        if let Some(r) = right {
            neighbors.push(r);
            sends.push(right_value.to_vec());
        }
        let received = self.neighbor_exchange(&neighbors, &sends)?;
        let mut from_left = None;
        let mut from_right = None;
        for (&nbr, data) in neighbors.iter().zip(received) {
            if Some(nbr) == left {
                from_left = Some(data);
            } else if Some(nbr) == right {
                from_right = Some(data);
            }
        }
        Ok((from_left, from_right))
    }
}
