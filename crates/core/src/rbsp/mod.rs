//! Relaxed bulk-synchronous programming (RBSP): latency-tolerant Krylov
//! solvers built on the runtime's asynchronous collectives (§II-B, §III-B).
//!
//! Two families are provided, each in a classical (blocking-collective) and
//! a pipelined (latency-hiding) variant:
//!
//! * conjugate gradients — [`dist_cg`](cg::dist_cg) vs.
//!   [`pipelined_cg`](cg::pipelined_cg) (Ghysels–Vanroose single-reduction
//!   formulation);
//! * GMRES — [`dist_gmres`](gmres::dist_gmres) vs.
//!   [`pipelined_gmres`](gmres::pipelined_gmres) (the p(1) pipelining of
//!   Ghysels, Ashby, Meerbergen & Vanroose cited by the paper).
//!
//! The pipelined variants do *the same arithmetic* (up to roundoff and the
//! usual stability caveats) but post their global reductions as nonblocking
//! collectives and overlap them with the next sparse matrix-vector product,
//! so per-rank noise and collective latency are hidden rather than
//! amplified.

pub mod cg;
pub mod gmres;

use crate::distributed::{DistMultiVector, DistVector};

/// Outcome of a distributed solve (per rank; the solution is distributed).
#[derive(Debug, Clone)]
pub struct DistSolveOutcome {
    /// This rank's part of the solution.
    pub x: DistVector,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual (recurrence estimate).
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Relative residual history.
    pub history: Vec<f64>,
}

/// Outcome of a batched multi-RHS solve ([`cg::dist_block_pcg`],
/// [`cg::pipelined_block_pcg`]): the block iterate plus per-column
/// convergence data. Columns converge independently (masking), so each has
/// its own iteration count, residual and history.
#[derive(Debug, Clone)]
pub struct BlockSolveOutcome {
    /// This rank's part of the block solution (all `k` columns).
    pub x: DistMultiVector,
    /// Iterations the batch performed (columns advance in lockstep).
    pub iterations: usize,
    /// Iteration at which each column converged (or froze on breakdown);
    /// columns that never froze report the total count.
    pub column_iterations: Vec<usize>,
    /// Final relative residual of each column (recurrence estimate).
    pub relative_residuals: Vec<f64>,
    /// Whether each column met the tolerance.
    pub converged: Vec<bool>,
    /// Per-column relative-residual history.
    pub histories: Vec<Vec<f64>>,
}

impl BlockSolveOutcome {
    /// Did every column meet the tolerance?
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|&c| c)
    }

    /// Split into `k` single-RHS outcomes (consuming the block).
    pub fn into_columns(self) -> Vec<DistSolveOutcome> {
        let x = self.x;
        self.column_iterations
            .into_iter()
            .zip(self.relative_residuals)
            .zip(self.converged)
            .zip(self.histories)
            .enumerate()
            .map(
                |(c, (((iterations, relative_residual), converged), history))| DistSolveOutcome {
                    x: x.column(c),
                    iterations,
                    relative_residual,
                    converged,
                    history,
                },
            )
            .collect()
    }
}

/// Options shared by the distributed solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSolveOptions {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Restart length (GMRES only).
    pub restart: usize,
    /// Virtual seconds of local work charged per iteration *in addition to*
    /// the solver's own arithmetic; models the application work (e.g. a
    /// nonlinear residual evaluation) that latency hiding can overlap.
    pub extra_work_per_iter: f64,
    /// Run node-local arithmetic on the portable scalar backend instead of
    /// the default [`resilient_linalg::auto_ops`] selection. Results are
    /// bit-identical either way; this is a speed/debugging knob (the
    /// scalar-fallback CI job forces it process-wide via
    /// `RESILIENT_FORCE_SCALAR`).
    pub force_scalar_ops: bool,
}

impl Default for DistSolveOptions {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 500,
            restart: 30,
            extra_work_per_iter: 0.0,
            force_scalar_ops: false,
        }
    }
}

impl DistSolveOptions {
    /// Builder-style tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }
    /// Builder-style iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }
    /// Builder-style restart length.
    pub fn with_restart(mut self, restart: usize) -> Self {
        self.restart = restart;
        self
    }

    /// Builder-style scalar-backend selection (see
    /// [`DistSolveOptions::force_scalar_ops`]).
    pub fn with_scalar_ops(mut self) -> Self {
        self.force_scalar_ops = true;
        self
    }

    /// The node-local compute backend the presets hand their spaces.
    pub fn local_ops(&self) -> &'static dyn resilient_linalg::LocalOps {
        if self.force_scalar_ops {
            resilient_linalg::scalar_ops()
        } else {
            resilient_linalg::auto_ops()
        }
    }

    /// The kernel-level options this carries (`extra_work_per_iter` travels
    /// separately, via
    /// [`DistSpace::with_extra_work`](crate::kernel::DistSpace::with_extra_work)).
    pub fn solve_options(&self) -> crate::solvers::SolveOptions {
        crate::solvers::SolveOptions::default()
            .with_tol(self.tol)
            .with_max_iters(self.max_iters)
            .with_restart(self.restart)
    }
}
