//! Serial Krylov solvers: CG, GMRES, flexible GMRES and the shared operator
//! and preconditioner abstractions.

pub mod cg;
pub mod common;
pub mod fgmres;
pub mod gmres;

pub use cg::{cg, pcg};
pub use common::{
    true_relative_residual, IdentityPreconditioner, JacobiPreconditioner, Operator, Preconditioner,
    SolveOptions, SolveOutcome, StopReason,
};
pub use fgmres::{fgmres, FgmresReport, FlexiblePreconditioner, IdentityFlexible};
pub use gmres::{gmres, ArnoldiProcess};
