//! The (preconditioned) conjugate gradient method for SPD systems.
//!
//! The solver entry point is a preset of the unified kernel
//! ([`crate::kernel`]): serial space, [`PcgStep`] recurrence, empty policy
//! stack.

use crate::kernel::{run_cg, PcgStep, PolicyStack, SerialPrecond, SerialSpace};

use super::common::{IdentityPreconditioner, Operator, Preconditioner, SolveOptions, SolveOutcome};

/// Solve `A·x = b` with CG starting from `x0` (zero vector if `None`).
pub fn cg<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveOutcome {
    pcg(a, &IdentityPreconditioner, b, x0, opts)
}

/// Preconditioned conjugate gradients.
///
/// Preset: unified kernel × [`PcgStep`] × empty policy stack over a
/// [`SerialSpace`].
pub fn pcg<O: Operator + ?Sized, M: Preconditioner + ?Sized>(
    a: &O,
    m: &M,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveOutcome {
    assert_eq!(b.len(), a.dim(), "rhs dimension mismatch");
    let mut space = SerialSpace::new(a);
    let b = b.to_vec();
    let mut sm = SerialPrecond(m);
    let (outcome, _report) = run_cg(
        &mut space,
        &b,
        x0.map(|v| v.to_vec()),
        opts,
        &mut PcgStep::new(&mut sm),
        &mut PolicyStack::empty(),
    )
    .expect("serial spaces are infallible");
    outcome.into_solve_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::{true_relative_residual, JacobiPreconditioner, StopReason};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resilient_linalg::{poisson1d, poisson2d, random_vector, spd_random};

    #[test]
    fn solves_poisson1d_exactly_in_n_iterations() {
        let a = poisson1d(10);
        let x_true = vec![1.0; 10];
        let b = a.spmv(&x_true);
        let out = cg(&a, &b, None, &SolveOptions::default().with_tol(1e-12));
        assert!(out.converged());
        assert!(
            out.iterations <= 10,
            "CG must converge within n steps, took {}",
            out.iterations
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-10);
    }

    #[test]
    fn solves_poisson2d() {
        let a = poisson2d(12, 12);
        let n = a.nrows();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x_true = random_vector(n, &mut rng);
        let b = a.spmv(&x_true);
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        assert!(out.converged(), "reason {:?}", out.reason);
        let err: f64 = out
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "solution error {err}");
        assert!(out.flops > 0);
    }

    #[test]
    fn jacobi_preconditioning_does_not_hurt_poisson() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let plain = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        let m = JacobiPreconditioner::from_matrix(&a);
        let pre = pcg(
            &a,
            &m,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        assert!(plain.converged() && pre.converged());
        // Constant-diagonal matrix: Jacobi is a scalar scaling, same iteration count.
        assert_eq!(plain.iterations, pre.iterations);
    }

    #[test]
    fn respects_initial_guess() {
        let a = poisson1d(8);
        let x_true = vec![2.0; 8];
        let b = a.spmv(&x_true);
        let out = cg(&a, &b, Some(&x_true), &SolveOptions::default());
        assert_eq!(
            out.iterations, 0,
            "exact initial guess converges immediately"
        );
        assert!(out.converged());
    }

    #[test]
    fn random_spd_system() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = spd_random(20, &mut rng);
        let b = random_vector(20, &mut rng);
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(200),
        );
        assert!(out.converged());
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = poisson2d(16, 16);
        let b = vec![1.0; a.nrows()];
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-14).with_max_iters(3),
        );
        assert_eq!(out.reason, StopReason::MaxIterations);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.history.len(), 4);
    }

    #[test]
    fn residual_history_is_monotone_enough() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let out = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(300),
        );
        // CG residuals are not strictly monotone, but the last is far below the first.
        assert!(out.history.last().unwrap() < &(out.history[0] * 1e-8));
    }
}
